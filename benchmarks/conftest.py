"""Benchmark-suite configuration.

Benchmarks regenerate the paper's evaluation artifacts; most verify a
whole program per round, so rounds are kept minimal via the
``pedantic`` API in the individual files.  Results that belong in
EXPERIMENTS.md are also appended to ``benchmarks/out/``.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def artifact_path(name):
    """Where a benchmark writes its regenerated artifact."""
    os.makedirs(OUT_DIR, exist_ok=True)
    return os.path.join(OUT_DIR, name)
