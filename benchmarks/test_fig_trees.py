"""F7 — the §7 tree experiment.

Paper: "Our preliminary experiments with a decision procedure for
monadic second-order [logic] on trees show that it is much more
computationally intensive than the string version."

We rebuild that experiment: decide *analogous* formulas with the
string engine and the tree engine and compare the reduction costs.
The analogue pairs replace the string successor with the two child
relations and the linear order with the ancestor order:

* second-order reachability (the routing-star idiom);
* the induction principle (first/root in X, X closed under
  successor/children => last/every node in X);
* order transitivity.
"""

import time

import pytest

from repro.mso import ast as s
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.treemso import ast as t
from repro.treemso.compile import TreeCompiler

from conftest import artifact_path


def _string_reachability():
    x, y = s.Var.first("x"), s.Var.first("y")
    a, b = s.Var.first("a"), s.Var.first("b")
    S = s.Var.second("S")
    closed = F.all1([a, b], F.implies(
        F.and_(F.mem(a, S), F.succ(a, b)), F.mem(b, S)))
    return F.all2([S], F.implies(F.and_(F.mem(x, S), closed),
                                 F.mem(y, S)))


def _tree_reachability():
    x, y = t.ast_vars = (s.Var.first("x"), s.Var.first("y"))
    a, b = s.Var.first("a"), s.Var.first("b")
    S = s.Var.second("S")
    step = t.TOr(t.Child0(a, b), t.Child1(a, b))
    closed = t.TAll1(a, t.TAll1(b, t.TImplies(
        t.TAnd(t.TMem(a, S), step), t.TMem(b, S))))
    return t.TAll2(S, t.TImplies(t.TAnd(t.TMem(x, S), closed),
                                 t.TMem(y, S)))


def _string_induction():
    a, b, first, last = (s.Var.first(n) for n in ("a", "b", "f", "l"))
    X = s.Var.second("X")
    closed = F.all1([a, b], F.implies(
        F.and_(F.mem(a, X), F.succ(a, b)), F.mem(b, X)))
    zero = F.ex1([first], F.and_(F.first(first), F.mem(first, X)))
    final = F.ex1([last], F.and_(F.last(last), F.mem(last, X)))
    return F.implies(F.and_(zero, closed), final)


def _tree_induction():
    a, b, r, c = (s.Var.first(n) for n in ("a", "b", "r", "c"))
    X = s.Var.second("X")
    step = t.TOr(t.Child0(a, b), t.Child1(a, b))
    closed = t.TAll1(a, t.TAll1(b, t.TImplies(
        t.TAnd(t.TMem(a, X), step), t.TMem(b, X))))
    root = t.TEx1(r, t.TAnd(t.Root(r), t.TMem(r, X)))
    everything = t.TAll1(c, t.TMem(c, X))
    return t.TImplies(t.TAnd(root, closed), everything)


def _string_transitivity():
    x, y, z = (s.Var.first(n) for n in ("x", "y", "z"))
    return F.implies(F.and_(F.less(x, y), F.less(y, z)), F.less(x, z))


def _tree_transitivity():
    x, y, z = (s.Var.first(n) for n in ("x", "y", "z"))
    return t.TImplies(t.TAnd(t.Anc(x, y), t.Anc(y, z)), t.Anc(x, z))


PAIRS = {
    "reachability": (_string_reachability, _tree_reachability, False),
    "induction": (_string_induction, _tree_induction, True),
    "transitivity": (_string_transitivity, _tree_transitivity, True),
}

_MEASURED = {}


def _measure(kind, make_string, make_tree, expect_valid):
    started = time.perf_counter()
    string_compiler = Compiler()
    string_dfa = string_compiler.compile(make_string())
    string_seconds = time.perf_counter() - started
    started = time.perf_counter()
    tree_compiler = TreeCompiler()
    tree_dfa = tree_compiler.compile(make_tree())
    tree_seconds = time.perf_counter() - started
    if expect_valid:
        assert Compiler().is_valid(make_string())
        assert TreeCompiler().is_valid(make_tree())
    return {
        "string_states": string_compiler.stats.max_states,
        "tree_states": tree_compiler.stats.max_states,
        "string_nodes": string_compiler.stats.max_nodes,
        "tree_nodes": tree_compiler.stats.max_nodes,
        "string_seconds": string_seconds,
        "tree_seconds": tree_seconds,
    }


@pytest.mark.parametrize("kind", list(PAIRS))
def test_fig_tree_vs_string(benchmark, kind):
    make_string, make_tree, expect_valid = PAIRS[kind]
    row = benchmark.pedantic(
        lambda: _measure(kind, make_string, make_tree, expect_valid),
        rounds=1, iterations=1)
    _MEASURED[kind] = row
    for key, value in row.items():
        if key.endswith("seconds"):
            value = round(value, 4)
        benchmark.extra_info[key] = value


def test_fig_trees_are_heavier():
    """The paper's qualitative finding: the tree reduction is more
    computationally intensive.  Automaton *sizes* stay comparable —
    the cost multiplies in the transition tables, which take two
    predecessor states (quadratically many entries) instead of one —
    so we assert the aggregate time over all three formula pairs (the
    individual compilations are milliseconds and too noisy) plus the
    structural quadratic factor itself."""
    for kind, (make_string, make_tree, expect_valid) in PAIRS.items():
        if kind not in _MEASURED:
            _MEASURED[kind] = _measure(kind, make_string, make_tree,
                                       expect_valid)
    tree_total = sum(row["tree_seconds"] for row in _MEASURED.values())
    string_total = sum(row["string_seconds"]
                       for row in _MEASURED.values())
    assert tree_total > string_total
    # the structural factor: a tree automaton with n states stores n^2
    # transition diagrams where the string automaton stores n
    from repro.treemso.compile import TreeCompiler
    tree_dfa = TreeCompiler().compile(_tree_transitivity())
    assert len(tree_dfa.delta) == tree_dfa.num_states ** 2


def test_fig_trees_emit_artifact():
    lines = ["Paper section 7 tree experiment, regenerated "
             "(string engine vs tree engine on analogous formulas):",
             ""]
    for kind, (make_string, make_tree, expect_valid) in PAIRS.items():
        row = _MEASURED.get(kind)
        if row is None:
            row = _measure(kind, make_string, make_tree, expect_valid)
            _MEASURED[kind] = row
        lines.append(
            f"{kind:13} string: {row['string_seconds']:6.3f}s "
            f"{row['string_states']:5} states {row['string_nodes']:6} "
            f"nodes | tree: {row['tree_seconds']:6.3f}s "
            f"{row['tree_states']:5} states {row['tree_nodes']:6} nodes")
    with open(artifact_path("fig_trees.txt"), "w",
              encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
