"""F1 — the §3 store-encoding examples.

Regenerates the two encoded strings the paper draws in §3: the
6-symbol single-list store and the 9-symbol three-list store, and
benchmarks encode/decode round-trips.
"""

from repro.stores.encode import decode_store, encode_store
from repro.stores.render import render_symbols

from conftest import artifact_path
from util import list_schema, store_with_lists


def _store_one():
    schema = list_schema(data_vars=("x",), pointer_vars=("p",))
    return store_with_lists(schema,
                            {"x": ["red", "red", "blue", "red"]},
                            {"p": ("x", 2)})


def _store_two():
    schema = list_schema(data_vars=("x", "y", "z"),
                         pointer_vars=("p", "q"))
    return store_with_lists(
        schema,
        {"x": ["red", "red", "red"], "y": [], "z": ["blue", "blue"]},
        {"p": ("x", 0), "q": ("x", 1)})


def test_fig_encoding_six_symbols(benchmark):
    store = _store_one()
    symbols = benchmark(lambda: encode_store(store))
    text = render_symbols(symbols)
    # paper: [nil,0] [(List:red),{x}] [(List:red),0] [(List:blue),{p}]
    #        [(List:red),0] [lim,0]
    assert text == ("[nil,{}] [(Item:red),{x}] [(Item:red),{}] "
                    "[(Item:blue),{p}] [(Item:red),{}] [lim,{}]")
    benchmark.extra_info["symbols"] = len(symbols)


def test_fig_encoding_nine_symbols(benchmark):
    store = _store_two()
    symbols = benchmark(lambda: encode_store(store))
    assert len(symbols) == 9
    # paper: [nil,{y}] [(List:red),{x,p}] [(List:red),{q}]
    #        [(List:red),0] [lim,0] [lim,0] [(List:blue),{z}]
    #        [(List:blue),0] [lim,0]
    assert symbols[0].bitmap == frozenset({"y"})
    assert symbols[1].bitmap == frozenset({"x", "p"})
    assert symbols[2].bitmap == frozenset({"q"})
    assert [s.label[0] for s in symbols] == \
        ["nil", "rec", "rec", "rec", "lim", "lim", "rec", "rec", "lim"]


def test_fig_decode_roundtrip(benchmark):
    store = _store_two()
    symbols = encode_store(store)
    schema = store.schema

    def roundtrip():
        return encode_store(decode_store(schema, symbols))

    assert benchmark(roundtrip) == symbols


def test_fig_emit_artifact():
    lines = [
        "Paper section 3 store encodings, regenerated:",
        "",
        "store 1: " + render_symbols(encode_store(_store_one())),
        "store 2: " + render_symbols(encode_store(_store_two())),
    ]
    with open(artifact_path("fig_encodings.txt"), "w",
              encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
