"""F2 — the automata of §3/§4.

The paper draws the deterministic automaton for ``x<next*>p`` and the
three automata of the worked triple (precondition, alloc, weakest
precondition).  We regenerate them: compile each formula (conjoined
with the canonical-encoding constraint) to a minimal automaton and
record its size, checking the semantic facts the figures illustrate.
"""

from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.storelogic import check_formula, parse_formula
from repro.storelogic.translate import translate_formula
from repro.stores.encode import encode_store
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_string

from conftest import artifact_path
from util import list_schema, store_with_lists

SCHEMA = list_schema(data_vars=("x",), pointer_vars=("p", "q"))


def _compile(text):
    compiler = Compiler()
    layout = TrackLayout(SCHEMA)
    layout.register(compiler)
    state = initial_store(SCHEMA, layout)
    formula = check_formula(parse_formula(text), SCHEMA)
    automaton = compiler.compile(
        F.and_(wf_string(layout), translate_formula(formula, state)))
    return automaton, compiler, layout


def test_fig_reachability_automaton(benchmark):
    """The §3 figure: the automaton of x<next*>p."""
    automaton, compiler, layout = benchmark.pedantic(
        lambda: _compile("x<next*>p"), rounds=1, iterations=1)
    benchmark.extra_info["states"] = automaton.num_states
    benchmark.extra_info["nodes"] = automaton.bdd_node_count()
    tracks = compiler.tracks()
    # the paper's two special cases: empty list (x and p on nil) and a
    # red singleton with p at the final nil
    empty = store_with_lists(SCHEMA, {"x": []})
    assert automaton.accepts(
        layout.symbols_to_word(encode_store(empty), tracks))
    singleton = store_with_lists(SCHEMA, {"x": ["red"]})
    assert automaton.accepts(
        layout.symbols_to_word(encode_store(singleton), tracks))
    # p strictly off the list is rejected
    two_lists_schema = SCHEMA  # p at nil counts as reachable via next*
    not_reached = store_with_lists(SCHEMA, {"x": ["red"]},
                                   garbage=0)
    assert automaton.accepts(
        layout.symbols_to_word(encode_store(not_reached), tracks))


def test_fig_precondition_automaton(benchmark):
    """A_pre of §4: x<next*>p & p^.next = nil."""
    automaton, _, _ = benchmark.pedantic(
        lambda: _compile("x<next*>p & p^.next = nil"),
        rounds=1, iterations=1)
    benchmark.extra_info["states"] = automaton.num_states
    assert not automaton.is_empty()


def test_fig_alloc_automaton(benchmark):
    """A_alloc of §4: at least one available garbage cell."""
    automaton, compiler, layout = benchmark.pedantic(
        lambda: _compile("ex g: <garb?>g"), rounds=1, iterations=1)
    tracks = compiler.tracks()
    with_room = store_with_lists(SCHEMA, {"x": ["red"]}, garbage=1)
    without = store_with_lists(SCHEMA, {"x": ["red"]})
    assert automaton.accepts(
        layout.symbols_to_word(encode_store(with_room), tracks))
    assert not automaton.accepts(
        layout.symbols_to_word(encode_store(without), tracks))


def test_fig_wp_equivalence():
    """§4 notes A_pre ∩ A_alloc equals A_wp for the worked triple:
    the weakest precondition of the three-line program w.r.t. its
    postcondition is pre & alloc."""
    pre, compiler_a, layout_a = _compile(
        "x<next*>p & p^.next = nil & (ex g: <garb?>g)")
    # the paper's computed wp: x<next*>p & (ex g: <garb?>g) & p^.next=nil
    wp, compiler_b, layout_b = _compile(
        "(ex g: <garb?>g) & p^.next = nil & x<next*>p")
    # same compiler tracks? compare via sampled stores instead
    samples = [
        store_with_lists(SCHEMA, {"x": ["red"]}, garbage=1),
        store_with_lists(SCHEMA, {"x": ["red", "blue"]},
                         {"p": ("x", 1)}, garbage=1),
        store_with_lists(SCHEMA, {"x": ["red", "blue"]},
                         {"p": ("x", 0)}, garbage=1),
        store_with_lists(SCHEMA, {"x": []}, garbage=2),
        store_with_lists(SCHEMA, {"x": ["red"]}),
    ]
    for store in samples:
        word_a = layout_a.symbols_to_word(encode_store(store),
                                          compiler_a.tracks())
        word_b = layout_b.symbols_to_word(encode_store(store),
                                          compiler_b.tracks())
        assert pre.accepts(word_a) == wp.accepts(word_b)


def test_fig_emit_artifact():
    from repro.automata.render import render_transitions, to_dot

    lines = ["Paper section 3/4 automata, regenerated "
             "(minimal DFA sizes over the store alphabet):", ""]
    for text in ("x<next*>p", "x<next*>p & p^.next = nil",
                 "ex g: <garb?>g"):
        automaton, _, _ = _compile(text)
        lines.append(f"{text:35} -> {automaton.num_states:3} states, "
                     f"{automaton.bdd_node_count():4} BDD nodes")
    automaton, compiler, _ = _compile("x<next*>p")
    lines += ["", "the x<next*>p automaton (the section-3 figure), "
              "as a transition table:", "",
              render_transitions(automaton, compiler.tracks())]
    with open(artifact_path("fig_automata.txt"), "w",
              encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
    with open(artifact_path("fig_automaton_reach.dot"), "w",
              encoding="utf-8") as out:
        out.write(to_dot(automaton, compiler.tracks(), "reach") + "\n")
