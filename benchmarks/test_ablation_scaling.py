"""A3 — scaling sweeps (our addition, quantifying §6's claims).

Two sweeps around the paper's complexity discussion:

* **alphabet size**: verifying ``reverse`` over an enum of k colours
  multiplies the store alphabet (k variants + 3 structural labels)
  while the shared-BDD representation grows gently — the reason Mona
  "may efficiently reduce automata with very large alphabets";
* **program length**: chains of k pointer moves grow the transduced
  formula linearly, while the intermediate automata grow much faster —
  a direct measurement of the §6 complexity discussion (the k-step
  definedness precondition nests k quantified dereferences).
"""

import pytest

from repro.verify import verify_source

from conftest import artifact_path


def _reverse_with_colors(k):
    colors = [f"c{i}" for i in range(k)]
    color_list = ", ".join(colors)
    return f"""
program reverse{k};
type
  Color = ({color_list});
  List = ^Item;
  Item = record case tag: Color of {color_list}: (next: List) end;
{{data}} var x, y: List;
{{pointer}} var p: List;
begin
  {{y = nil}}
  while x <> nil do begin
    p := x^.next;
    x^.next := y;
    y := x;
    x := p
  end
  {{x = nil}}
end.
"""


ALPHABET_SIZES = [1, 2, 4, 6]
_ALPHA_RESULTS = {}


@pytest.mark.parametrize("k", ALPHABET_SIZES)
def test_alphabet_sweep(benchmark, k):
    result = benchmark.pedantic(
        lambda: verify_source(_reverse_with_colors(k)),
        rounds=1, iterations=1)
    assert result.valid
    benchmark.extra_info["colors"] = k
    benchmark.extra_info["max_states"] = result.max_states
    benchmark.extra_info["max_nodes"] = result.max_nodes
    _ALPHA_RESULTS[k] = result


def test_alphabet_growth_is_gentle():
    """Doubling the number of variants does not double the automaton:
    the BDD shares the per-colour structure."""
    for k in ALPHABET_SIZES:
        _ALPHA_RESULTS.setdefault(
            k, verify_source(_reverse_with_colors(k)))
    small = _ALPHA_RESULTS[2]
    large = _ALPHA_RESULTS[6]
    # alphabet grows 2^4 = 16x (4 extra label tracks); nodes must grow
    # far less than that.
    assert large.max_nodes < small.max_nodes * 16
    assert large.valid and small.valid


CHAIN_LENGTHS = [1, 2, 3, 4]
_CHAIN_RESULTS = {}


def _chain_program(k):
    """k pointer moves along x.  The precondition asserts the k-step
    path is *defined* via an equality with a quantified cell (a bare
    ``<> nil`` would be vacuously true when the path is undefined —
    the partial-term semantics)."""
    moves = ";\n".join(["  p := x"] + ["  p := p^.next"] * k)
    path = "x" + "^.next" * k
    return f"""
program chain{k};
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{{data}} var x: List;
{{pointer}} var p: List;
begin
  {{ex c: {path} = c}}
{moves}
  {{x<next+>p}}
end.
"""


@pytest.mark.parametrize("k", CHAIN_LENGTHS)
def test_chain_sweep(benchmark, k):
    result = benchmark.pedantic(
        lambda: verify_source(_chain_program(k)),
        rounds=1, iterations=1)
    assert result.valid, f"chain of {k} moves must verify"
    benchmark.extra_info["moves"] = k
    benchmark.extra_info["formula_size"] = result.formula_size
    _CHAIN_RESULTS[k] = result


def test_chain_formula_growth_is_linear():
    """The transduced formula grows linearly in program length; the
    intermediate *automata* grow much faster (the §6 complexity), which
    is why the sweep stops at k=4."""
    for k in CHAIN_LENGTHS:
        _CHAIN_RESULTS.setdefault(k, verify_source(_chain_program(k)))
    sizes = [_CHAIN_RESULTS[k].formula_size for k in CHAIN_LENGTHS]
    assert sizes == sorted(sizes)
    steps = [b - a for a, b in zip(sizes, sizes[1:])]
    # linear growth: per-move increments stay within a small factor
    assert max(steps) <= 3 * min(steps)


def test_scaling_emit_artifact():
    for k in ALPHABET_SIZES:
        _ALPHA_RESULTS.setdefault(
            k, verify_source(_reverse_with_colors(k)))
    for k in CHAIN_LENGTHS:
        _CHAIN_RESULTS.setdefault(k, verify_source(_chain_program(k)))
    lines = ["Ablation A3 — scaling sweeps:", "",
             "reverse with k colours (alphabet growth):"]
    for k in ALPHABET_SIZES:
        result = _ALPHA_RESULTS[k]
        lines.append(f"  k={k}: {result.seconds:5.2f}s  "
                     f"states={result.max_states:6}  "
                     f"nodes={result.max_nodes:6}")
    lines += ["", "pointer chain of k moves (program growth):"]
    for k in CHAIN_LENGTHS:
        result = _CHAIN_RESULTS[k]
        lines.append(f"  k={k}: {result.seconds:5.2f}s  "
                     f"formula={result.formula_size:6}  "
                     f"states={result.max_states:6}")
    with open(artifact_path("ablation_scaling.txt"), "w",
              encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
