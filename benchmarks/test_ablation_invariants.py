"""A1 — ablation: rich invariants vs the default well-formedness
invariant (paper §5, "Using Invariants").

``search`` with its rich invariant proves the full behavioural
specification; with no invariant the system falls back to
well-formedness only — cheaper, still verifying memory safety, but
the behavioural postcondition is no longer provable.
"""

from repro.programs import SEARCH, SEARCH_DEFAULT_INVARIANT
from repro.verify import verify_source


def test_rich_invariant_proves_behaviour(benchmark):
    result = benchmark.pedantic(lambda: verify_source(SEARCH),
                                rounds=1, iterations=1)
    assert result.valid
    benchmark.extra_info["max_states"] = result.max_states
    benchmark.extra_info["formula_size"] = result.formula_size


def test_default_invariant_proves_safety(benchmark):
    result = benchmark.pedantic(
        lambda: verify_source(SEARCH_DEFAULT_INVARIANT),
        rounds=1, iterations=1)
    assert result.valid
    benchmark.extra_info["max_states"] = result.max_states
    benchmark.extra_info["formula_size"] = result.formula_size


def test_default_invariant_cannot_prove_behaviour():
    """Attaching search's full behavioural postcondition without the
    rich invariant fails: well-formedness alone says nothing about the
    colours already passed.  (Interestingly, ``x<next*>p`` *is*
    implied by the default invariant here: with a single data
    variable, the no-unclaimed-cells rule forces every valid pointer
    onto x's list.)"""
    source = SEARCH_DEFAULT_INVARIANT.replace(
        "    p := p^.next\nend.",
        "    p := p^.next\n"
        "  {all q: (x<next*>q & q<next+>p) => <(List:red)?>q}\nend.")
    assert "all q:" in source
    result = verify_source(source)
    assert not result.valid


def test_default_invariant_implies_reachability():
    """The flip side: with one data variable, wf alone proves
    x<next*>p after the loop."""
    source = SEARCH_DEFAULT_INVARIANT.replace(
        "    p := p^.next\nend.",
        "    p := p^.next\n"
        "  {x<next*>p & (p = nil | <(List:blue)?>p)}\nend.")
    result = verify_source(source)
    assert result.valid


def test_rich_invariant_costs_more():
    rich = verify_source(SEARCH)
    default = verify_source(SEARCH_DEFAULT_INVARIANT)
    assert rich.formula_size > default.formula_size
