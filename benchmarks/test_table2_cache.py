"""T2b — slicing ratios and verdict-cache speedup over the §6 corpus.

Measures the statement slices the engine computes per program, then
times the whole table cold (empty verdict cache) and warm (every
subgoal replayed from disk), asserting the warm run hits on >= 90% of
subgoals and finishes faster.  The measurements are amended into
``benchmarks/out/table1.json`` as the ``slicing`` and ``cache``
blocks (this file sorts after ``test_table1_statistics.py``, which
writes the envelope first).
"""

import json
import time

from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS, TABLE_PROGRAMS
from repro.verify import verify_source
from repro.verify.engine import Verifier

from conftest import artifact_path


def _amend(key, block):
    path = artifact_path("table1.json")
    try:
        with open(path, encoding="utf-8") as src:
            document = json.load(src)
    except FileNotFoundError:
        # Standalone run: record into a minimal envelope.
        document = {"schema_version": 2}
    document[key] = block
    with open(path, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2)
        out.write("\n")


def test_slice_ratios_recorded():
    """Per-program slice sizes across the whole bundled corpus.

    The §6 programs thread every statement into their obligations, so
    their ratio is 1.0; the ``scan`` example exists to exercise the
    other regime (dead scratch copies)."""
    ratios = {}
    for name in sorted(ALL_PROGRAMS):
        program = check_program(parse_program(ALL_PROGRAMS[name]))
        verifier = Verifier(program)
        before = after = 0
        for subgoal in verifier.collect_subgoals():
            plan = verifier._plan_subgoal(subgoal, verifier.reduce,
                                          True, False)
            before += plan.sliced.before
            after += plan.sliced.after
        ratios[name] = {
            "statements_before": before,
            "statements_after": after,
            "ratio": round(after / before, 3) if before else 1.0,
        }
    _amend("slicing", ratios)
    print()
    for name, entry in ratios.items():
        print(f"slice {name}: {entry['statements_before']} -> "
              f"{entry['statements_after']} ({entry['ratio']})")
    assert all(entry["statements_after"] <= entry["statements_before"]
               for entry in ratios.values())
    assert ratios["scan"]["ratio"] < 1.0


def _run_table(cache_dir):
    start = time.perf_counter()
    results = [verify_source(TABLE_PROGRAMS[name],
                             cache_dir=cache_dir)
               for name in TABLE_PROGRAMS]
    return results, time.perf_counter() - start


def test_cache_cold_warm_recorded(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold_results, cold_seconds = _run_table(cache_dir)
    warm_results, warm_seconds = _run_table(cache_dir)

    # Verdict identity first: a fast wrong answer is no speedup.
    assert [r.valid for r in warm_results] == \
        [r.valid for r in cold_results]
    assert all(result.valid for result in warm_results)

    subgoals = sum(len(result.results) for result in warm_results)
    hits = sum(result.cache_hits for result in warm_results)
    hit_rate = hits / subgoals if subgoals else 0.0
    speedup = cold_seconds / warm_seconds \
        if warm_seconds else float("inf")
    block = {
        "programs": len(TABLE_PROGRAMS),
        "subgoals": subgoals,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup": round(speedup, 3),
        "warm_hits": hits,
        "warm_hit_rate": round(hit_rate, 3),
    }
    _amend("cache", block)
    print()
    print(f"table cache: cold {cold_seconds:.2f}s -> warm "
          f"{warm_seconds:.2f}s ({speedup:.2f}x, "
          f"{hits}/{subgoals} hits)")

    assert sum(r.cache_hits for r in cold_results) == 0
    assert hit_rate >= 0.9, (
        f"warm table run must replay >= 90% of subgoals from the "
        f"cache, measured {hit_rate:.2f}")
    assert warm_seconds < cold_seconds, (
        f"warm run must be faster: cold {cold_seconds:.2f}s, warm "
        f"{warm_seconds:.2f}s")
