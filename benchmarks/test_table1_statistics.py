"""T1 — the paper's §6 statistics table.

One row per example program: Time / Formula (size of the generated
logic input) / States / Nodes (largest automaton encountered during
the reduction), plus the verification verdict, which the paper reports
as successful for all six programs.

The paper's absolute numbers come from an ML implementation of Mona on
a 1995 SparcServer; ours come from a Python re-implementation, so only
the *shape* is expected to match: all six verify, `reverse` is the
cheapest, and the allocation/deallocation-heavy programs (`insert`,
`delete`, `zip`, `rotate`) dominate states and nodes.
"""

import json

import pytest

from repro.programs import TABLE_PROGRAMS
from repro.verify import verify_source
from repro.verify.report import TABLE_HEADER, format_table_row

from conftest import artifact_path

_RESULTS = {}


@pytest.mark.parametrize("name", list(TABLE_PROGRAMS))
def test_table1_row(benchmark, name):
    """Verify one table program and record its statistics row."""
    result = benchmark.pedantic(
        lambda: verify_source(TABLE_PROGRAMS[name]),
        rounds=1, iterations=1)
    assert result.valid, f"{name} must verify (paper §5)"
    benchmark.extra_info["formula_size"] = result.formula_size
    benchmark.extra_info["max_states"] = result.max_states
    benchmark.extra_info["max_nodes"] = result.max_nodes
    benchmark.extra_info["subgoals"] = len(result.results)
    _RESULTS[name] = result


def test_table1_emit_artifact():
    """Write the regenerated table (the row tests above run first in
    file order, which pytest guarantees)."""
    assert len(_RESULTS) == len(TABLE_PROGRAMS)
    lines = [TABLE_HEADER, "-" * len(TABLE_HEADER)]
    lines += [format_table_row(_RESULTS[name]) for name in TABLE_PROGRAMS]
    table = "\n".join(lines)
    with open(artifact_path("table1.txt"), "w", encoding="utf-8") as out:
        out.write(table + "\n")
    print()
    print(table)


def test_table1_emit_json():
    """The machine-readable companion of table1.txt: the full run
    report of every table program (per-subgoal stats included), the
    seed of the benchmark trajectory."""
    assert len(_RESULTS) == len(TABLE_PROGRAMS)
    document = {
        # Envelope version 2: the program documents are schema-v2 run
        # reports (outcome/budget keys) and the envelope carries an
        # outcome summary for dashboards.
        "schema_version": 2,
        "outcomes": {name: _RESULTS[name].outcome.value
                     for name in TABLE_PROGRAMS},
        "programs": [_RESULTS[name].to_dict()
                     for name in TABLE_PROGRAMS],
    }
    with open(artifact_path("table1.json"), "w",
              encoding="utf-8") as out:
        json.dump(document, out, indent=2)
        out.write("\n")
    # Round-trip sanity: the document is self-contained JSON with the
    # columns of the text table recoverable from it.
    with open(artifact_path("table1.json"), encoding="utf-8") as src:
        loaded = json.load(src)
    assert [entry["program"] for entry in loaded["programs"]] == \
        list(TABLE_PROGRAMS)
    assert all(outcome == "VERIFIED"
               for outcome in loaded["outcomes"].values())
    for entry in loaded["programs"]:
        assert entry["valid"]
        assert entry["outcome"] == "VERIFIED"
        assert entry["schema_version"] == 2
        assert entry["stats"]["bdd_apply_misses"] > 0
        assert entry["max_states"] > 0
        assert entry["tracks_before"] >= entry["tracks_after"] > 0


def test_table1_shape():
    """Qualitative shape of the table: every program verifies; the
    pure-traversal programs (reverse, search) are far cheaper than the
    allocation/splicing programs (rotate, insert, delete, zip) — the
    paper's "seemingly innocuous pointer manipulations are revealed to
    possess large state spaces"."""
    assert len(_RESULTS) == len(TABLE_PROGRAMS)
    assert all(result.valid for result in _RESULTS.values())
    traversal = max(_RESULTS[name].max_states
                    for name in ("reverse", "search"))
    heavy = min(_RESULTS[name].max_states
                for name in ("rotate", "insert", "delete", "zip"))
    assert traversal < heavy
    assert all(len(result.results) <= 4 for result in _RESULTS.values())
