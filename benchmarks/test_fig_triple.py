"""F3 — the worked loop-free triple of §4.

``{x<next*>p & p^.next = nil} new(q,blue); q^.next := nil;
p^.next := q {x<next*>q & q^.next = nil & p <> q}`` is decided valid,
exactly as the paper concludes.
"""

from repro.programs import TRIPLE
from repro.verify import verify_source


def test_fig_triple_valid(benchmark):
    result = benchmark.pedantic(lambda: verify_source(TRIPLE),
                                rounds=1, iterations=1)
    assert result.valid
    assert len(result.results) == 1
    benchmark.extra_info["formula_size"] = result.formula_size
    benchmark.extra_info["max_states"] = result.max_states
    benchmark.extra_info["max_nodes"] = result.max_nodes


def test_fig_triple_needs_alloc_assumption():
    """Dropping the paper's alloc condition breaks the triple: the
    postcondition demands a fresh cell, so a memory-less store is a
    counterexample unless out-of-memory is excused.  We verify the
    dual: adding an explicit no-garbage precondition still verifies
    because oom stores are excused, and the counterexample machinery
    never reports one."""
    source = TRIPLE.replace(
        "{x<next*>p & p^.next = nil}",
        "{x<next*>p & p^.next = nil & ~(ex g: <garb?>g)}")
    result = verify_source(source)
    # Every store satisfying this precondition is out of memory, so
    # the triple holds vacuously under the alloc assumption.
    assert result.valid


def test_fig_triple_wrong_postcondition_fails():
    source = TRIPLE.replace("p <> q", "p = q")
    result = verify_source(source)
    assert not result.valid
    assert result.counterexample is not None
