"""T2 — parallel speedup over the §6 table corpus.

Times the whole table sequentially and with a 4-worker pool, checks
the two runs agree verdict-for-verdict, and amends the ``parallel``
block into ``benchmarks/out/table1.json`` (this file sorts after
``test_table1_statistics.py``, which writes the envelope first).

The ≥1.8x speedup acceptance bar only binds on a machine with at
least 4 CPUs — on smaller runners the timing is still recorded, the
ratio assertion is skipped (a 1-CPU container cannot exhibit a
speedup, only scheduling overhead).
"""

import json
import os
import time

import pytest

from repro.parallel import EngineOptions, run_table
from repro.programs import TABLE_PROGRAMS
from repro.verify import verify_source

from conftest import artifact_path

JOBS = 4


def _sequential():
    start = time.perf_counter()
    results = [verify_source(TABLE_PROGRAMS[name])
               for name in TABLE_PROGRAMS]
    return results, time.perf_counter() - start


def _parallel():
    start = time.perf_counter()
    results, interrupted = run_table(list(TABLE_PROGRAMS),
                                     EngineOptions(), jobs=JOBS)
    assert not interrupted
    return results, time.perf_counter() - start


def test_parallel_speedup_recorded():
    sequential_results, sequential_seconds = _sequential()
    parallel_results, parallel_seconds = _parallel()

    # Verdict identity first: a fast wrong answer is no speedup.
    assert [r.valid for r in parallel_results] == \
        [r.valid for r in sequential_results]
    assert [r.outcome.value for r in parallel_results] == \
        [r.outcome.value for r in sequential_results]
    assert all(result.valid for result in parallel_results)

    speedup = sequential_seconds / parallel_seconds \
        if parallel_seconds else float("inf")
    block = {
        "jobs": JOBS,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": round(sequential_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": round(speedup, 3),
    }

    path = artifact_path("table1.json")
    try:
        with open(path, encoding="utf-8") as src:
            document = json.load(src)
    except FileNotFoundError:
        # Standalone run: record into a minimal envelope.
        document = {"schema_version": 2}
    document["parallel"] = block
    with open(path, "w", encoding="utf-8") as out:
        json.dump(document, out, indent=2)
        out.write("\n")
    print()
    print(f"table x{JOBS} workers: {sequential_seconds:.2f}s -> "
          f"{parallel_seconds:.2f}s ({speedup:.2f}x, "
          f"{os.cpu_count()} CPUs)")

    if (os.cpu_count() or 1) < JOBS:
        pytest.skip(f"speedup bar needs >= {JOBS} CPUs, have "
                    f"{os.cpu_count()}")
    assert speedup >= 1.8, (
        f"table --jobs {JOBS} must be >= 1.8x faster than sequential "
        f"on a {JOBS}-core runner, measured {speedup:.2f}x")
