"""A2 — ablations of the automaton engine design choices.

The paper credits two implementation ideas for feasibility (§6):
BDD-encoded transition functions and the minimise-everything
discipline of the Mona reduction.  We measure both on second-order
reachability — the formula pattern behind every routing star:

* with eager minimisation, the reduction's largest automaton stays
  around a dozen states; with minimisation off the same formula blows
  through tens of thousands of intermediate states (and the full
  verification formulas become infeasible altogether, which is why
  the off-mode workload is a *fragment*);
* the shared-BDD transition encoding stores orders of magnitude fewer
  edges than the explicit store-alphabet table it replaces.
"""

import pytest

from repro.mso import ast
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.storelogic import check_formula, parse_formula
from repro.storelogic.translate import translate_formula
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_string

from conftest import artifact_path
from util import list_schema


def _reachability_formula():
    """x reaches y through successor steps within any closed set — the
    second-order idiom behind routing stars."""
    x, y = ast.Var.first("x"), ast.Var.first("y")
    a, b = ast.Var.first("a"), ast.Var.first("b")
    closure = ast.Var.second("S")
    closed = F.all1([a, b], F.implies(
        F.and_(F.mem(a, closure), F.succ(a, b)), F.mem(b, closure)))
    return F.all2([closure], F.implies(
        F.and_(F.mem(x, closure), closed), F.mem(y, closure)))


def _compile_reach(minimize_during):
    compiler = Compiler(minimize_during=minimize_during)
    automaton = compiler.compile(_reachability_formula())
    return automaton, compiler


def test_minimization_on(benchmark):
    automaton, compiler = benchmark.pedantic(
        lambda: _compile_reach(True), rounds=3, iterations=1)
    benchmark.extra_info["final_states"] = automaton.num_states
    benchmark.extra_info["max_states"] = compiler.stats.max_states


def test_minimization_off(benchmark):
    automaton, compiler = benchmark.pedantic(
        lambda: _compile_reach(False), rounds=1, iterations=1)
    benchmark.extra_info["final_states"] = automaton.num_states
    benchmark.extra_info["max_states"] = compiler.stats.max_states


def test_minimization_collapses_intermediate_growth():
    _, with_min = _compile_reach(True)
    _, without = _compile_reach(False)
    assert with_min.stats.max_states <= 20
    assert without.stats.max_states > 1000 * with_min.stats.max_states


def test_both_modes_agree_on_the_language():
    a, _ = _compile_reach(True)
    b, _ = _compile_reach(False)
    assert a.num_states == b.minimize().num_states


def _compile_store_formula(text):
    schema = list_schema()
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state = initial_store(schema, layout)
    formula = check_formula(parse_formula(text), schema)
    automaton = compiler.compile(
        F.and_(wf_string(layout), translate_formula(formula, state)))
    return automaton, compiler, layout


def test_bdd_sharing_beats_explicit_alphabet(benchmark):
    """A full store-logic compilation: the shared-BDD transition
    representation is far smaller than an explicit table with one
    entry per (state, store-alphabet symbol) pair.  Only the store
    alphabet's own tracks count — quantified intermediates are
    projected away."""
    automaton, compiler, layout = benchmark.pedantic(
        lambda: _compile_store_formula("x<next*>p & p^.next = nil"),
        rounds=1, iterations=1)
    tracks = len(layout.free_vars())
    explicit_edges = automaton.num_states * (2 ** tracks)
    nodes = automaton.bdd_node_count()
    benchmark.extra_info["bdd_nodes"] = nodes
    benchmark.extra_info["explicit_edges"] = explicit_edges
    assert nodes * 10 < explicit_edges


def test_ablation_emit_artifact():
    _, with_min = _compile_reach(True)
    _, without = _compile_reach(False)
    automaton, compiler, layout = _compile_store_formula(
        "x<next*>p & p^.next = nil")
    tracks = len(layout.free_vars())
    lines = [
        "Ablation A2 — engine design choices:",
        "",
        "second-order reachability formula:",
        f"  minimise during reduction: largest automaton "
        f"{with_min.stats.max_states} states",
        f"  no minimisation:           largest automaton "
        f"{without.stats.max_states} states",
        "",
        "BDD sharing on x<next*>p & p^.next = nil over the store "
        "alphabet:",
        f"  shared-BDD nodes: {automaton.bdd_node_count()}",
        f"  explicit table:   {automaton.num_states} states x "
        f"2^{tracks} symbols = "
        f"{automaton.num_states * (2 ** tracks)} edges",
    ]
    with open(artifact_path("ablation_automata.txt"), "w",
              encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
