"""F4/F5 — the §5 counterexamples.

``fumble`` (reverse with two lines swapped) must fail with a 4-symbol
shortest counterexample — a one-cell list — and ``swap`` with the
3-symbol singleton-list store; ``swap`` verifies once the paper's
``x^.next <> nil`` precondition is added.
"""

from repro.programs import FUMBLE, SWAP, SWAP_FIXED
from repro.stores.encode import LABEL_LIM, LABEL_NIL
from repro.stores.render import render_symbols
from repro.verify import verify_source

from conftest import artifact_path


def test_fig_fumble_counterexample(benchmark):
    result = benchmark.pedantic(lambda: verify_source(FUMBLE),
                                rounds=1, iterations=1)
    assert not result.valid
    symbols = result.counterexample.symbols
    # paper: [nil,{p}] [(List:red),...] [lim,0] [lim,0]
    assert len(symbols) == 4
    assert symbols[0].label == LABEL_NIL
    assert symbols[1].label[0] == "rec"
    assert symbols[2].label == symbols[3].label == LABEL_LIM
    benchmark.extra_info["counterexample"] = render_symbols(symbols)


def test_fig_swap_counterexample(benchmark):
    result = benchmark.pedantic(lambda: verify_source(SWAP),
                                rounds=1, iterations=1)
    assert not result.valid
    symbols = result.counterexample.symbols
    # paper: [nil,{p}] [(List:red),...] [lim,0] — a list of length one
    assert len(symbols) == 3
    assert symbols[0].label == LABEL_NIL
    assert symbols[1].label[0] == "rec"
    assert symbols[2].label == LABEL_LIM
    assert "x" in symbols[1].bitmap
    benchmark.extra_info["counterexample"] = render_symbols(symbols)


def test_fig_swap_fixed_verifies(benchmark):
    """Adding {x^.next <> nil} confirms the singleton list was the
    only fatal case (§5)."""
    result = benchmark.pedantic(lambda: verify_source(SWAP_FIXED),
                                rounds=1, iterations=1)
    assert result.valid


def test_fig_emit_artifact():
    fumble = verify_source(FUMBLE).counterexample
    swap = verify_source(SWAP).counterexample
    lines = [
        "Paper section 5 counterexamples, regenerated:",
        "",
        "fumble:",
        fumble.render(),
        "",
        "swap:",
        swap.render(),
    ]
    with open(artifact_path("fig_counterexamples.txt"), "w",
              encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")
