"""Tests for the dependency-driven BDD track ordering pass."""

from repro.analysis import affinity_graph, choose_order
from repro.pascal import check_program, parse_program

HEADER = """\
program t;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
"""


def typed(body: str):
    return check_program(parse_program(HEADER + body + "\nend.\n"))


class TestAffinityGraph:
    def test_assignment_links_source_and_target(self):
        program = typed("  q := p")
        graph = affinity_graph(program.body, [])
        assert graph == {("p", "q"): 3}

    def test_heap_write_links_cell_and_value(self):
        program = typed("  p^.next := q")
        graph = affinity_graph(program.body, [])
        assert graph == {("p", "q"): 3}

    def test_guard_atoms_link_operands(self):
        program = typed("  if p = q then p := nil else q := nil")
        graph = affinity_graph(program.body, [])
        assert graph[("p", "q")] == 1

    def test_obligations_link_their_free_variables(self):
        program = typed("  p := nil")
        graph = affinity_graph(program.body,
                               [frozenset({"x", "q"})])
        assert graph[("q", "x")] == 2

    def test_weights_accumulate(self):
        program = typed("  q := p;\n  p := q")
        graph = affinity_graph(program.body, [])
        assert graph == {("p", "q"): 6}

    def test_self_edges_ignored(self):
        program = typed("  p := p")
        assert affinity_graph(program.body, []) == {}


class TestChooseOrder:
    def test_no_edges_is_declaration_order(self):
        program = typed("  p := nil")
        order = choose_order(program.body, [], program.schema,
                             ["x", "p", "q"])
        assert order == ("x", "p", "q")

    def test_affine_pair_becomes_adjacent(self):
        # p-q interact; x is unrelated and declared first.  The chain
        # starts from the strongest variable and keeps the pair
        # adjacent instead of leaving x wedged between them.
        program = typed("  q := p")
        order = choose_order(program.body, [], program.schema,
                             ["x", "p", "q"])
        assert order == ("p", "q", "x")

    def test_keep_set_filters(self):
        program = typed("  q := p")
        order = choose_order(program.body, [], program.schema,
                             ["q", "x"])
        assert set(order) == {"q", "x"}

    def test_deterministic(self):
        program = typed("  q := p;\n  if p = x then p := nil"
                        " else q := x")
        args = (program.body, [frozenset({"x", "p"})],
                program.schema, ["x", "p", "q"])
        assert choose_order(*args) == choose_order(*args)

    def test_order_is_a_permutation(self):
        program = typed("  q := p;\n  p := x;\n  x := q")
        order = choose_order(program.body, [], program.schema,
                             ["x", "p", "q"])
        assert sorted(order) == ["p", "q", "x"]
