"""Tests for the type checker and the typed IR it produces."""

import pytest

from repro.errors import TypeError_
from repro.pascal import check_program, parse_program
from repro.pascal import typed

from util import wrap_program

TYPES = """
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
"""


def check_body(body, pre="", post=""):
    return check_program(parse_program(wrap_program(body, pre=pre,
                                                    post=post)))


def check_source(source):
    return check_program(parse_program(source))


class TestSchemaConstruction:
    def test_schema_contents(self):
        program = check_body("  x := nil")
        schema = program.schema
        assert schema.enums == {"Color": ("red", "blue")}
        assert schema.data_vars == {"x": "Item", "y": "Item"}
        assert schema.pointer_vars == {"p": "Item", "q": "Item"}
        assert schema.pointer_aliases == {"List": "Item"}
        record = schema.records["Item"]
        assert record.variants["red"].name == "next"
        assert record.variants["red"].target == "Item"

    def test_terminator_variant(self):
        program = check_source("""
        program t;
        type
          Kind = (cons, leaf);
          P = ^Node;
          Node = record case tag: Kind of
            cons: (next: P); leaf: ()
          end;
        {data} var x: P;
        begin end.
        """)
        assert program.schema.records["Node"].variants["leaf"] is None


class TestDeclarationErrors:
    def test_unannotated_vars_rejected(self):
        with pytest.raises(TypeError_):
            check_source(f"program t; {TYPES} var x: List; begin end.")

    def test_non_pointer_var_rejected(self):
        with pytest.raises(TypeError_):
            check_source(f"program t; {TYPES} "
                         f"{{data}} var c: Color; begin end.")

    def test_duplicate_variable(self):
        with pytest.raises(TypeError_):
            check_source(f"program t; {TYPES} "
                         f"{{data}} var x, x: List; begin end.")

    def test_variable_shadowing_enum_constant(self):
        with pytest.raises(TypeError_):
            check_source(f"program t; {TYPES} "
                         f"{{data}} var red: List; begin end.")

    def test_two_pointer_fields_rejected(self):
        with pytest.raises(TypeError_) as exc:
            check_source("""
            program t;
            type
              K = (a);
              P = ^R;
              R = record case tag: K of a: (one: P; two: P) end;
            {data} var x: P;
            begin end.
            """)
        assert "linear lists" in str(exc.value)

    def test_unknown_variant_in_record(self):
        with pytest.raises(TypeError_):
            check_source("""
            program t;
            type
              K = (a);
              P = ^R;
              R = record case tag: K of b: (next: P) end;
            {data} var x: P;
            begin end.
            """)

    def test_non_pointer_field_rejected(self):
        with pytest.raises(TypeError_):
            check_source("""
            program t;
            type
              K = (a);
              P = ^R;
              R = record case tag: K of a: (c: K) end;
            {data} var x: P;
            begin end.
            """)

    def test_pointer_to_unknown_record(self):
        with pytest.raises(TypeError_):
            check_source("""
            program t;
            type
              K = (a);
              P = ^Nothing;
            {data} var x: P;
            begin end.
            """)


class TestStatements:
    def test_var_assign(self):
        program = check_body("  x := p")
        statement = program.body[0]
        assert isinstance(statement, typed.TAssign)
        assert statement.lhs == typed.VarLhs("x", "Item")
        assert statement.rhs.var == "p"

    def test_field_assign(self):
        program = check_body("  p^.next := q")
        lhs = program.body[0].lhs
        assert isinstance(lhs, typed.FieldLhs)
        assert lhs.field == "next"
        assert lhs.target_type == "Item"
        assert str(lhs) == "p^.next"

    def test_deep_path(self):
        program = check_body("  p := q^.next^.next")
        rhs = program.body[0].rhs
        assert rhs.steps == (("next", "Item"), ("next", "Item"))
        assert rhs.final_type == "Item"

    def test_new_variants(self):
        program = check_body("  new(p, red)")
        statement = program.body[0]
        assert isinstance(statement, typed.TNew)
        assert (statement.type_name, statement.variant) == ("Item", "red")

    def test_new_unknown_variant(self):
        with pytest.raises(TypeError_):
            check_body("  new(p, green)")

    def test_dispose_path(self):
        program = check_body("  dispose(p^.next, blue)")
        statement = program.body[0]
        assert isinstance(statement, typed.TDispose)
        assert statement.path.steps == (("next", "Item"),)

    def test_unknown_variable(self):
        with pytest.raises(TypeError_):
            check_body("  z := nil")

    def test_unknown_field(self):
        with pytest.raises(TypeError_):
            check_body("  p := q^.prev")

    def test_tag_not_a_pointer_field(self):
        with pytest.raises(TypeError_):
            check_body("  p := q^.tag")

    def test_enum_constant_as_pointer(self):
        with pytest.raises(TypeError_):
            check_body("  p := red")


class TestGuards:
    def test_ptr_compare(self):
        program = check_body("  if p = q then p := nil")
        guard = program.body[0].cond
        assert isinstance(guard, typed.TPtrCompare)
        assert not guard.negated

    def test_nil_compare(self):
        program = check_body("  if x <> nil then x := nil")
        guard = program.body[0].cond
        assert guard.left.var == "x"
        assert guard.right is None
        assert guard.negated

    def test_variant_test(self):
        program = check_body("  if p^.tag = red then p := nil")
        guard = program.body[0].cond
        assert isinstance(guard, typed.TVariantTest)
        assert guard.cell.var == "p"
        assert guard.variant == "red"

    def test_variant_test_reversed_operands(self):
        program = check_body("  if blue = p^.tag then p := nil")
        guard = program.body[0].cond
        assert isinstance(guard, typed.TVariantTest)
        assert guard.variant == "blue"

    def test_variant_test_through_path(self):
        program = check_body("  if p^.next^.tag <> blue then p := nil")
        guard = program.body[0].cond
        assert guard.cell.steps == (("next", "Item"),)
        assert guard.negated

    def test_variant_test_wrong_enum(self):
        with pytest.raises(TypeError_):
            check_body("  if p^.tag = purple then p := nil")

    def test_tag_vs_non_constant(self):
        with pytest.raises(TypeError_):
            check_body("  if p^.tag = q then p := nil")

    def test_boolean_connectives(self):
        program = check_body(
            "  if not p = nil and q = nil or x = y then p := nil")
        guard = program.body[0].cond
        assert isinstance(guard, typed.TOr)
        assert isinstance(guard.left, typed.TAnd)
        assert isinstance(guard.left.left, typed.TNot)

    def test_while_and_if_bodies_typed(self):
        program = check_body(
            "  while x <> nil do begin "
            "    if x^.tag = red then x := x^.next else x := nil "
            "  end")
        loop = program.body[0]
        assert isinstance(loop, typed.TWhile)
        branch = loop.body[0]
        assert isinstance(branch, typed.TIf)

    def test_assertions_preserved(self):
        program = check_body("  x := nil\n  {x = nil}\n  y := nil",
                             pre="true", post="true")
        assert program.pre.text == "true"
        assert isinstance(program.body[1], typed.TAssertStmt)
        assert program.statements() == program.body
