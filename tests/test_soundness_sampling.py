"""Soundness sampling: verified programs never fail concretely.

The headline guarantee of the system: if a program verifies, then from
*every* well-formed initial store satisfying its precondition (with
enough free memory), execution is error-free and ends well-formed with
the postcondition true.  We sample that universal statement: for each
verified bundled program, generate random stores, keep those whose
precondition holds, run the interpreter, and check everything the
verifier promised.

This closes the loop between the symbolic and concrete layers across
*loops*, which the per-statement differential tests cannot reach.
"""

import random

import pytest

from repro.errors import ExecutionError
from repro.exec.interpreter import Interpreter, OutOfMemory
from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS
from repro.storelogic import check_formula, parse_formula
from repro.storelogic.eval import eval_formula
from repro.stores.model import Store

from util import random_store

VERIFIED = ["reverse", "rotate", "insert", "delete", "search", "zip",
            "searchwf", "swapfix", "triple", "append", "split", "copy"]

#: How many candidate stores to draw per program.
CANDIDATES = 60


def _formula(program, annotation):
    if annotation is None:
        return None
    return check_formula(parse_formula(annotation.text), program.schema)


def _baseline_stores(schema):
    """Deterministic stores that satisfy most preconditions: every
    variable nil except the first data variable, in a few sizes."""
    first = next(iter(schema.data_vars))
    for variants, garbage in ([], 2), (["red"], 2), (["blue"], 1), \
            (["red", "blue", "red"], 3):
        store = Store(schema)
        store.make_list(first, list(variants))
        for _ in range(garbage):
            store.add_garbage()
        yield store


@pytest.mark.parametrize("name", VERIFIED)
def test_verified_program_never_fails_concretely(name):
    program = check_program(parse_program(ALL_PROGRAMS[name]))
    pre = _formula(program, program.pre)
    post = _formula(program, program.post)
    interpreter = Interpreter(program)
    rng = random.Random(hash(name) & 0xFFFF)
    admitted = 0
    candidates = list(_baseline_stores(program.schema))
    candidates += [random_store(program.schema, rng, max_len=4,
                                max_garbage=3)
                   for _ in range(CANDIDATES)]
    for store in candidates:
        if pre is not None and not eval_formula(pre, store):
            continue
        admitted += 1
        working = store.clone()
        try:
            interpreter.run(working)
        except OutOfMemory:
            continue  # excused by the alloc assumption
        except ExecutionError as exc:
            pytest.fail(f"{name}: runtime error from a store "
                        f"satisfying the precondition: {exc}")
        violations = working.violations()
        assert not violations, (name, violations)
        if post is not None:
            assert eval_formula(post, working), \
                f"{name}: postcondition failed concretely"
    assert admitted >= 3, \
        f"{name}: only {admitted} sampled stores satisfied the pre"


@pytest.mark.parametrize("name", ["fumble", "swap"])
def test_faulty_program_fails_on_its_counterexample_only(name):
    """The counterexample store fails; but plenty of other stores run
    fine (the bug is subtle, which is the paper's point)."""
    program = check_program(parse_program(ALL_PROGRAMS[name]))
    pre = _formula(program, program.pre)
    interpreter = Interpreter(program)
    rng = random.Random(4242)
    outcomes = {"ok": 0, "bad": 0}
    for _ in range(CANDIDATES):
        store = random_store(program.schema, rng, max_len=3)
        if pre is not None and not eval_formula(pre, store):
            continue
        working = store.clone()
        try:
            interpreter.run(working)
            if working.is_well_formed():
                outcomes["ok"] += 1
            else:
                outcomes["bad"] += 1
        except ExecutionError:
            outcomes["bad"] += 1
    assert outcomes["bad"] > 0, f"{name} never misbehaved in sampling"
