"""A catalog of micro-triples pinning down the verifier's semantics.

Each case is a tiny program with an expected verdict, covering the
fine structure: aliasing, leaks, dangling references, dispose/new
interactions and allocator determinism, guard short-circuiting,
partial-term logic, the out-of-memory excuse, and the invariant
method's (in)completeness.  Schema: data x, y; pointers p, q.
"""

import pytest

from repro.verify import verify_source

from util import wrap_program

# (name, body, pre, post, expected_valid)
CASES = [
    # --- assignment and aliasing -----------------------------------
    ("alias_chain",
     "  p := x;\n  q := p", "", "p = q & p = x", True),
    ("rebinding_data_var_leaks",
     "  x := y;\n  y := nil", "y = nil", "x = nil", False),
    ("second_cell_or_nil",
     "  q := x^.next", "x <> nil", "x<next+>q | q = nil", True),
    ("deep_read_stays_on_list",
     "  p := x^.next^.next", "ex c: x^.next^.next = c",
     "x<next*>p", True),
    ("self_loop_is_cyclic",
     "  x^.next := x", "x <> nil", "", False),
    ("terminator_write_nop",
     "  x^.next := nil", "x <> nil & x^.next = nil", "", True),
    ("truncation_leaks_tail",
     "  x^.next := nil", "x <> nil", "", False),
    ("deep_write_nop",
     "  p^.next^.next := nil", "p^.next^.next = nil", "", True),

    # --- new / dispose ----------------------------------------------
    ("fresh_cell_unclaimed",
     "  new(p, red)", "", "", False),
    ("fresh_cell_linked",
     "  new(p, red);\n  p^.next := x;\n  x := p", "",
     "<(List:red)?>x", True),
    ("dispose_needs_variant_knowledge",
     "  dispose(x, red);\n  x := nil", "x <> nil", "", False),
    ("pop_head",
     "  p := x^.next;\n  dispose(x, red);\n  x := p;\n"
     "  p := nil;\n  q := nil",
     "x <> nil & <(List:red)?>x", "", True),
    ("double_dispose",
     "  p := x;\n  dispose(x, red);\n  dispose(p, red)",
     "<(List:red)?>x", "", False),
    ("use_after_free",
     "  p := x;\n  dispose(x, red);\n  q := p^.next",
     "<(List:red)?>x", "", False),
    # With no garbage anywhere, every pre-store is out of memory, so
    # even `false` holds vacuously: the paper's alloc(S) assumption.
    ("oom_is_excused",
     "  new(p, red);\n  p^.next := x;\n  x := p",
     "~(ex g: <garb?>g)", "false", True),
    # The deterministic allocator hands dispose's cell straight back.
    ("allocator_recycles",
     "  new(p, red);\n  dispose(p, red);\n  new(q, blue);\n"
     "  q^.next := x;\n  x := q",
     "ex g: <garb?>g & (all r: <garb?>r => r = g)",
     "<(List:blue)?>x & p = q", True),

    # --- guards -------------------------------------------------------
    ("conditional_merge",
     "  if x = nil then p := nil else p := x", "",
     "(x = nil => p = nil) & (x <> nil => p = x)", True),
    ("and_short_circuits",
     "  if x <> nil and x^.tag = red then p := x else p := nil",
     "", "", True),
    ("and_is_not_commutative_for_safety",
     "  if x^.tag = red and x <> nil then p := x", "", "", False),
    ("or_short_circuits",
     "  if x = nil or x^.tag = red then p := nil", "", "", True),
    ("not_guard",
     "  if not x = nil then p := x else p := nil", "",
     "x = nil <=> p = nil", True),
    ("variant_dispatch_total",
     "  if x^.tag = red then p := x else p := x", "x <> nil",
     "p = x", True),

    # --- routing and logic --------------------------------------------
    ("plus_versus_star",
     "", "x<next*>p & p <> nil", "x<next+>p | p = x", True),
    ("two_steps_not_self",
     "", "x<next.next>p", "x<next+>p & ~(p = x)", True),
    ("edge_implies_nonempty_store",
     "", "ex c, d: c<next>d & <(List:red)?>c & <(List:blue)?>d",
     "~(x = nil & y = nil)", True),
    ("garb_quantification",
     "", "all c: <garb?>c => false", "~(ex g: <garb?>g)", True),
    # Partial-term semantics: `<> nil` is vacuously true on an
    # undefined path (see docs/TUTORIAL.md section 2).
    ("neq_nil_is_vacuous_on_undefined",
     "", "y = nil", "y^.next <> nil", True),
    ("nil_equals_nil", "", "", "nil = nil", True),
    ("undefined_atom_is_false", "", "", "nil^.next = nil", False),

    # --- loops and the invariant method --------------------------------
    # Sound but incomplete: preservation is checked from *every*
    # invariant state, so without an invariant the unreachable
    # x <> nil states leak the list and the proof fails...
    ("invariant_method_incomplete",
     "  while x <> nil do x := x^.next", "x = nil", "x = nil", False),
    # ...while the obvious invariant closes it.
    ("invariant_method_completed",
     "  while x <> nil do {x = nil} x := x^.next",
     "x = nil", "x = nil", True),
    ("walk_until_blue",
     "  p := x;\n"
     "  while p <> nil and p^.tag = red do p := p^.next",
     "", "p = nil | <(List:blue)?>p", True),
]


@pytest.mark.parametrize(
    "name,body,pre,post,expected",
    CASES, ids=[case[0] for case in CASES])
def test_catalog(name, body, pre, post, expected):
    source = wrap_program(body or "  x := x", pre=pre, post=post)
    result = verify_source(source, simulate=False)
    assert result.valid is expected, (
        name,
        result.counterexample.render() if result.counterexample
        else "verified unexpectedly")
