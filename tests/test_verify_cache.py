"""Tests for the content-addressed verdict cache: fingerprints,
round-trips, corruption tolerance, concurrent writers, the LRU size
cap, and invalidation."""

import os
import pickle
import threading
import time
from types import SimpleNamespace

from repro.analysis import (CACHE_SCHEMA_VERSION, code_fingerprint,
                            subgoal_fingerprint)
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS
from repro.verify.cache import (STALE_LOCK_SECONDS, VerdictCache,
                                open_cache)
from repro.verify.engine import Verifier


def wire_like(outcome="VERIFIED", padding=0):
    """The minimal shape the cache's sanity check accepts."""
    return SimpleNamespace(outcome=outcome, stats={"max_states": 3},
                           blob="x" * padding)


def typed(name):
    return check_program(parse_program(ALL_PROGRAMS[name]))


class TestVerdictCacheStore:
    def test_round_trip(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("abc123", wire_like())
        wire = cache.lookup("abc123")
        assert wire.outcome == "VERIFIED"
        assert wire.stats == {"max_states": 3}

    def test_absent_entry_is_a_miss(self, tmp_path):
        assert VerdictCache(str(tmp_path)).lookup("missing") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("abc123", wire_like())
        with open(cache._path("abc123"), "wb") as handle:
            handle.write(b"\x80\x04not a pickle")
        assert cache.lookup("abc123") is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("abc123", wire_like())
        path = cache._path("abc123")
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        assert cache.lookup("abc123") is None

    def test_foreign_object_is_a_miss(self, tmp_path):
        # A well-formed pickle of the wrong type must not surface
        # later as an attribute error inside the engine.
        cache = VerdictCache(str(tmp_path))
        os.makedirs(cache.directory)
        with open(cache._path("abc123"), "wb") as handle:
            pickle.dump({"outcome": "VERIFIED"}, handle)
        assert cache.lookup("abc123") is None

    def test_unwritable_root_fails_silently(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        cache = VerdictCache(str(blocker / "cache"))
        cache.store("abc123", wire_like())  # must not raise
        assert cache.lookup("abc123") is None

    def test_directory_is_versioned_by_schema_and_code(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        name = os.path.basename(cache.directory)
        assert name == (f"v{CACHE_SCHEMA_VERSION}-"
                        f"{code_fingerprint()}")

    def test_open_cache_none_disables(self):
        assert open_cache(None) is None
        assert open_cache("/tmp/somewhere") is not None


def _age(path, seconds):
    """Backdate a file's mtime by ``seconds``."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestConcurrentStores:
    """A serving daemon has many workers storing at once; two
    simultaneous stores of one fingerprint must never interleave into
    a corrupt entry."""

    def test_simultaneous_stores_never_corrupt(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        writers = 4
        rounds = 25
        barrier = threading.Barrier(writers)
        failures = []

        def hammer():
            try:
                for round_index in range(rounds):
                    barrier.wait(timeout=30)
                    cache.store(f"fp-{round_index}", wire_like())
            except Exception as exc:  # noqa: BLE001 — report, not die
                failures.append(exc)

        threads = [threading.Thread(target=hammer)
                   for _ in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not failures
        # Every fingerprint that made it to disk reads back intact —
        # a contended store may skip, but never corrupt.
        stored = 0
        for round_index in range(rounds):
            wire = cache.lookup(f"fp-{round_index}")
            if wire is not None:
                stored += 1
                assert wire.outcome == "VERIFIED"
                assert wire.stats == {"max_states": 3}
        assert stored == rounds  # at least one writer won each round
        # No lock or temporary survives the melee.
        leftovers = [name for name in os.listdir(cache.directory)
                     if not name.endswith(".pkl")]
        assert leftovers == []

    def test_live_lock_skips_store(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        os.makedirs(cache.directory)
        lock = cache._path("abc123") + ".lock"
        with open(lock, "w"):
            pass
        cache.store("abc123", wire_like())  # contended: skipped
        assert cache.lookup("abc123") is None
        assert os.path.exists(lock)  # the holder's lock is untouched

    def test_stale_lock_swept_and_store_proceeds(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        os.makedirs(cache.directory)
        lock = cache._path("abc123") + ".lock"
        with open(lock, "w"):
            pass
        _age(lock, STALE_LOCK_SECONDS + 10)
        cache.store("abc123", wire_like())
        assert cache.lookup("abc123") is not None
        assert not os.path.exists(lock)

    def test_abandoned_temporaries_swept_by_cap_pass(self, tmp_path):
        cache = VerdictCache(str(tmp_path), max_mb=10.0)
        os.makedirs(cache.directory)
        orphan = cache._path("dead") + ".tmp"
        with open(orphan, "w") as handle:
            handle.write("half-written entry from a crashed worker")
        _age(orphan, STALE_LOCK_SECONDS + 10)
        cache.store("abc123", wire_like())
        assert not os.path.exists(orphan)


class TestSizeCap:
    """``max_mb`` turns the store into an LRU: hits refresh, the
    oldest entries are evicted first, live writers are respected."""

    PAD = 50_000  # ~50 KB per entry; the cap below fits two

    def _capped(self, tmp_path):
        return VerdictCache(str(tmp_path), max_mb=0.11)

    def test_oldest_entries_evicted_first(self, tmp_path):
        metrics = MetricsRegistry()
        set_metrics(metrics)
        try:
            cache = self._capped(tmp_path)
            for index, name in enumerate(("old", "mid", "new")):
                cache.store(name, wire_like(padding=self.PAD))
                _age(cache._path(name), 100 - index * 10)
            cache.store("newest", wire_like(padding=self.PAD))
            assert cache.lookup("old") is None
            assert cache.lookup("mid") is None
            assert cache.lookup("new") is not None
            assert cache.lookup("newest") is not None
            evicted = metrics.counter("verify.cache.evictions")
            assert evicted.value >= 2
        finally:
            set_metrics(None)

    def test_hit_refreshes_recency(self, tmp_path):
        cache = self._capped(tmp_path)
        cache.store("a", wire_like(padding=self.PAD))
        cache.store("b", wire_like(padding=self.PAD))
        _age(cache._path("a"), 100)
        _age(cache._path("b"), 50)
        assert cache.lookup("a") is not None  # refreshes a's mtime
        cache.store("c", wire_like(padding=self.PAD))
        assert cache.lookup("b") is None      # now the coldest: gone
        assert cache.lookup("a") is not None  # kept by the hit

    def test_locked_entry_survives_eviction(self, tmp_path):
        cache = self._capped(tmp_path)
        for name in ("old", "new"):
            cache.store(name, wire_like(padding=self.PAD))
        _age(cache._path("old"), 100)
        with open(cache._path("old") + ".lock", "w"):
            pass
        cache.store("newest", wire_like(padding=self.PAD))
        # The locked entry was skipped; the next-oldest went instead.
        assert cache.lookup("old") is not None
        assert cache.lookup("new") is None

    def test_uncapped_cache_never_evicts(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        for index in range(10):
            cache.store(f"fp-{index}", wire_like(padding=self.PAD))
        for index in range(10):
            assert cache.lookup(f"fp-{index}") is not None

    def test_open_cache_passes_cap_through(self, tmp_path):
        cache = open_cache(str(tmp_path), max_mb=2.5)
        assert cache.max_mb == 2.5

    def test_engine_accepts_cache_max_mb(self, tmp_path):
        program = typed("scan")
        result = Verifier(program, cache_dir=str(tmp_path),
                          cache_max_mb=64.0).verify()
        assert result.valid
        warm = Verifier(program, cache_dir=str(tmp_path),
                        cache_max_mb=64.0).verify()
        assert warm.cache_hits == len(warm.results)


class TestFingerprint:
    def test_options_change_the_fingerprint(self):
        program = typed("scan")
        args = (program.schema, program.body, ["a"], ["b"])
        assert subgoal_fingerprint(*args, ["slice=True"]) != \
            subgoal_fingerprint(*args, ["slice=False"])

    def test_obligations_change_the_fingerprint(self):
        program = typed("scan")
        base = (program.schema, program.body)
        assert subgoal_fingerprint(*base, ["a"], ["b"], []) != \
            subgoal_fingerprint(*base, ["a"], ["c"], [])

    def test_line_numbers_do_not(self):
        # Reflowing a program (blank line before the body) must not
        # move any subgoal out of the cache.
        source = ALL_PROGRAMS["reverse"]
        reflowed = source.replace("begin", "begin\n", 1)
        first = typed("reverse")
        second = check_program(parse_program(reflowed))
        args = (["a"], ["b"], [])
        assert subgoal_fingerprint(first.schema, first.body, *args) \
            == subgoal_fingerprint(second.schema, second.body, *args)


class TestEngineCaching:
    def test_cold_then_warm_run(self, tmp_path):
        program = typed("scan")
        cold = Verifier(program, cache_dir=str(tmp_path)).verify()
        assert cold.valid
        assert cold.cache_hits == 0
        warm = Verifier(program, cache_dir=str(tmp_path)).verify()
        assert warm.valid
        assert warm.cache_hits == len(warm.results)
        for before, after in zip(cold.results, warm.results):
            assert before.outcome is after.outcome
            assert before.stats.max_states == after.stats.max_states
            assert before.variable_order == after.variable_order

    def test_corrupted_store_degrades_to_cold(self, tmp_path):
        program = typed("scan")
        cache = open_cache(str(tmp_path))
        Verifier(program, cache_dir=str(tmp_path)).verify()
        entries = os.listdir(cache.directory)
        assert entries
        for name in entries:
            with open(os.path.join(cache.directory, name),
                      "wb") as handle:
                handle.write(b"garbage")
        rerun = Verifier(program, cache_dir=str(tmp_path)).verify()
        assert rerun.valid
        assert rerun.cache_hits == 0

    def test_option_change_invalidates(self, tmp_path):
        program = typed("scan")
        Verifier(program, cache_dir=str(tmp_path)).verify()
        other = Verifier(program, cache_dir=str(tmp_path),
                         order=False).verify()
        assert other.valid
        assert other.cache_hits == 0

    def test_no_cache_dir_stores_nothing(self, tmp_path):
        program = typed("scan")
        result = Verifier(program).verify()
        assert result.cache_hits == 0
        for subgoal_result in result.results:
            assert subgoal_result.cache is None
        assert os.listdir(str(tmp_path)) == []

    def test_failing_program_verdict_cached_too(self, tmp_path):
        program = typed("swap")
        cold = Verifier(program, cache_dir=str(tmp_path),
                        simulate=False).verify()
        assert not cold.valid
        warm = Verifier(program, cache_dir=str(tmp_path),
                        simulate=False).verify()
        assert not warm.valid
        assert warm.cache_hits == len(warm.results)
        assert (warm.counterexample is None) == \
            (cold.counterexample is None)
