"""Tests for the content-addressed verdict cache: fingerprints,
round-trips, corruption tolerance, and invalidation."""

import os
import pickle
from types import SimpleNamespace

from repro.analysis import (CACHE_SCHEMA_VERSION, code_fingerprint,
                            subgoal_fingerprint)
from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS
from repro.verify.cache import VerdictCache, open_cache
from repro.verify.engine import Verifier


def wire_like(outcome="VERIFIED"):
    """The minimal shape the cache's sanity check accepts."""
    return SimpleNamespace(outcome=outcome, stats={"max_states": 3})


def typed(name):
    return check_program(parse_program(ALL_PROGRAMS[name]))


class TestVerdictCacheStore:
    def test_round_trip(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("abc123", wire_like())
        wire = cache.lookup("abc123")
        assert wire.outcome == "VERIFIED"
        assert wire.stats == {"max_states": 3}

    def test_absent_entry_is_a_miss(self, tmp_path):
        assert VerdictCache(str(tmp_path)).lookup("missing") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("abc123", wire_like())
        with open(cache._path("abc123"), "wb") as handle:
            handle.write(b"\x80\x04not a pickle")
        assert cache.lookup("abc123") is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        cache.store("abc123", wire_like())
        path = cache._path("abc123")
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        assert cache.lookup("abc123") is None

    def test_foreign_object_is_a_miss(self, tmp_path):
        # A well-formed pickle of the wrong type must not surface
        # later as an attribute error inside the engine.
        cache = VerdictCache(str(tmp_path))
        os.makedirs(cache.directory)
        with open(cache._path("abc123"), "wb") as handle:
            pickle.dump({"outcome": "VERIFIED"}, handle)
        assert cache.lookup("abc123") is None

    def test_unwritable_root_fails_silently(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a regular file, not a directory")
        cache = VerdictCache(str(blocker / "cache"))
        cache.store("abc123", wire_like())  # must not raise
        assert cache.lookup("abc123") is None

    def test_directory_is_versioned_by_schema_and_code(self, tmp_path):
        cache = VerdictCache(str(tmp_path))
        name = os.path.basename(cache.directory)
        assert name == (f"v{CACHE_SCHEMA_VERSION}-"
                        f"{code_fingerprint()}")

    def test_open_cache_none_disables(self):
        assert open_cache(None) is None
        assert open_cache("/tmp/somewhere") is not None


class TestFingerprint:
    def test_options_change_the_fingerprint(self):
        program = typed("scan")
        args = (program.schema, program.body, ["a"], ["b"])
        assert subgoal_fingerprint(*args, ["slice=True"]) != \
            subgoal_fingerprint(*args, ["slice=False"])

    def test_obligations_change_the_fingerprint(self):
        program = typed("scan")
        base = (program.schema, program.body)
        assert subgoal_fingerprint(*base, ["a"], ["b"], []) != \
            subgoal_fingerprint(*base, ["a"], ["c"], [])

    def test_line_numbers_do_not(self):
        # Reflowing a program (blank line before the body) must not
        # move any subgoal out of the cache.
        source = ALL_PROGRAMS["reverse"]
        reflowed = source.replace("begin", "begin\n", 1)
        first = typed("reverse")
        second = check_program(parse_program(reflowed))
        args = (["a"], ["b"], [])
        assert subgoal_fingerprint(first.schema, first.body, *args) \
            == subgoal_fingerprint(second.schema, second.body, *args)


class TestEngineCaching:
    def test_cold_then_warm_run(self, tmp_path):
        program = typed("scan")
        cold = Verifier(program, cache_dir=str(tmp_path)).verify()
        assert cold.valid
        assert cold.cache_hits == 0
        warm = Verifier(program, cache_dir=str(tmp_path)).verify()
        assert warm.valid
        assert warm.cache_hits == len(warm.results)
        for before, after in zip(cold.results, warm.results):
            assert before.outcome is after.outcome
            assert before.stats.max_states == after.stats.max_states
            assert before.variable_order == after.variable_order

    def test_corrupted_store_degrades_to_cold(self, tmp_path):
        program = typed("scan")
        cache = open_cache(str(tmp_path))
        Verifier(program, cache_dir=str(tmp_path)).verify()
        entries = os.listdir(cache.directory)
        assert entries
        for name in entries:
            with open(os.path.join(cache.directory, name),
                      "wb") as handle:
                handle.write(b"garbage")
        rerun = Verifier(program, cache_dir=str(tmp_path)).verify()
        assert rerun.valid
        assert rerun.cache_hits == 0

    def test_option_change_invalidates(self, tmp_path):
        program = typed("scan")
        Verifier(program, cache_dir=str(tmp_path)).verify()
        other = Verifier(program, cache_dir=str(tmp_path),
                         order=False).verify()
        assert other.valid
        assert other.cache_hits == 0

    def test_no_cache_dir_stores_nothing(self, tmp_path):
        program = typed("scan")
        result = Verifier(program).verify()
        assert result.cache_hits == 0
        for subgoal_result in result.results:
            assert subgoal_result.cache is None
        assert os.listdir(str(tmp_path)) == []

    def test_failing_program_verdict_cached_too(self, tmp_path):
        program = typed("swap")
        cold = Verifier(program, cache_dir=str(tmp_path),
                        simulate=False).verify()
        assert not cold.valid
        warm = Verifier(program, cache_dir=str(tmp_path),
                        simulate=False).verify()
        assert not warm.valid
        assert warm.cache_hits == len(warm.results)
        assert (warm.counterexample is None) == \
            (cold.counterexample is None)
