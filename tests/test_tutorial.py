"""The docs/TUTORIAL.md walkthrough, executed.

Each stage of the tutorial's drop-two-cells example must behave
exactly as the prose claims: the naive version fails on the empty
list, the ``<> nil`` precondition is vacuously satisfied by the same
store (the partial-term trap), the ``ex c:`` definedness precondition
fixes the dereference but leaves the variant mismatch, and the final
version verifies with an exactly-two-cells-freed postcondition.
"""

import pytest

from repro.verify import verify_source

HEADER = """
program drop2;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
"""

NAIVE_BODY = """
  p := x^.next^.next;
  q := x^.next;
  dispose(q, red);
  q := x;
  dispose(q, red);
  x := p;
  p := nil; q := nil
end.
"""

CAREFUL_BODY = """
  p := x^.next^.next;
  q := x^.next;
  if q^.tag = red then dispose(q, red) else dispose(q, blue);
  q := x;
  if q^.tag = red then dispose(q, red) else dispose(q, blue);
  x := p;
  p := nil; q := nil
end.
"""


def test_stage1_naive_fails_on_empty_list():
    result = verify_source(HEADER + NAIVE_BODY)
    assert not result.valid
    ce = result.counterexample
    assert len(ce.symbols) == 2  # [nil,...] [lim] — the empty list
    assert "nil" in ce.explanation


def test_stage2_neq_nil_is_vacuous():
    """`x^.next^.next <> nil` excludes nothing when the path is
    undefined: the same empty store satisfies it."""
    source = HEADER + "  {x^.next^.next <> nil}" + NAIVE_BODY
    result = verify_source(source)
    assert not result.valid
    assert len(result.counterexample.symbols) == 2


def test_stage3_definedness_fixes_the_dereference():
    """With `ex c: ...= c` the nil dereference is gone; the remaining
    counterexample is the variant mismatch on dispose."""
    source = HEADER + "  {ex c: x^.next^.next = c}" + NAIVE_BODY
    result = verify_source(source)
    assert not result.valid
    assert "dispose" in result.counterexample.explanation


def test_stage4_final_version_verifies():
    source = (HEADER
              + "  {ex c: x^.next^.next = c & ~(ex g: <garb?>g)}"
              + CAREFUL_BODY.replace(
                  "end.",
                  "  {ex g, h: <garb?>g & <garb?>h & g <> h\n"
                  "    & (all r: <garb?>r => (r = g | r = h))}\nend."))
    result = verify_source(source)
    assert result.valid, result.counterexample and \
        result.counterexample.render()


def test_trailing_pointer_pattern_from_tutorial():
    source = """
program trail;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
  {q = nil}
  p := x;
  while p <> nil do
    {q = nil | q^.next = p}
    begin q := p; p := p^.next end
  {p = nil & (q = nil | q^.next = nil)}
end.
"""
    assert verify_source(source).valid
