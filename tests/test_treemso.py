"""Tests for M2L on finite binary trees (the paper's §7 experiment).

The compiler is differential-tested against brute-force evaluation
over all tree shapes up to a size bound and all variable assignments,
exactly like the string engine's oracle tests.
"""

import itertools

import pytest

from repro.mso.ast import Var, VarKind
from repro.treemso import ast
from repro.treemso.automata import TreeDfa
from repro.treemso.compile import TreeCompiler
from repro.treemso.interp import tree_evaluate, tree_with_assignment
from repro.treemso.trees import Tree, all_shapes

x = Var.first("x")
y = Var.first("y")
z = Var.first("z")
X = Var.second("X")
Y = Var.second("Y")


def assert_matches_bruteforce(formula, max_size=3):
    compiler = TreeCompiler()
    dfa = compiler.compile(formula)
    tracks = compiler.tracks()
    free = sorted(formula.free_vars(), key=lambda v: v.name)
    for size in range(max_size + 1):
        for shape in all_shapes(size):
            nodes = shape.nodes() if shape else []
            for env in _assignments(free, nodes):
                expected = tree_evaluate(formula, shape, env)
                labeled = tree_with_assignment(shape, env, tracks)
                assert dfa.accepts(labeled) == expected, \
                    (size, env, expected)
    return compiler


def _assignments(free, nodes):
    def go(rest, env):
        if not rest:
            yield dict(env)
            return
        var, tail = rest[0], rest[1:]
        if var.kind is VarKind.FIRST:
            for node in nodes:
                env[var] = node
                yield from go(tail, env)
            env.pop(var, None)
        else:
            for size in range(len(nodes) + 1):
                for combo in itertools.combinations(nodes, size):
                    env[var] = frozenset(combo)
                    yield from go(tail, env)
            env.pop(var, None)

    yield from go(free, {})


ATOMS = [
    ast.TMem(x, X),
    ast.TSub(X, Y),
    ast.TEqS(X, Y),
    ast.TEmptyS(X),
    ast.TSingletonS(X),
    ast.EqF(x, y),
    ast.Root(x),
    ast.Child0(x, y),
    ast.Child1(x, y),
    ast.Anc(x, y),
]


@pytest.mark.parametrize("formula", ATOMS,
                         ids=[type(a).__name__ for a in ATOMS])
def test_atoms_match_bruteforce(formula):
    assert_matches_bruteforce(formula)


def test_boolean_combinations():
    assert_matches_bruteforce(
        ast.TAnd(ast.TMem(x, X), ast.TNot(ast.TMem(x, Y))))
    assert_matches_bruteforce(ast.TOr(ast.Root(x), ast.Anc(x, y)))
    assert_matches_bruteforce(
        ast.TImplies(ast.Child0(x, y), ast.Anc(x, y)))


def test_first_order_quantifiers():
    r = Var.first("r")
    assert_matches_bruteforce(ast.TEx1(r, ast.TMem(r, X)))
    assert_matches_bruteforce(ast.TAll1(r, ast.TMem(r, X)))


def test_second_order_quantifiers():
    S = Var.second("S")
    proper_superset = ast.TEx2(S, ast.TAnd(
        ast.TSub(X, S), ast.TNot(ast.TEqS(X, S))))
    assert_matches_bruteforce(proper_superset, max_size=3)


class TestValidity:
    def test_ancestor_transitive(self):
        formula = ast.TImplies(
            ast.TAnd(ast.Anc(x, y), ast.Anc(y, z)), ast.Anc(x, z))
        assert TreeCompiler().is_valid(formula)

    def test_children_are_descendants(self):
        for node_type in (ast.Child0, ast.Child1):
            formula = ast.TImplies(node_type(x, y), ast.Anc(x, y))
            assert TreeCompiler().is_valid(formula)

    def test_root_has_no_ancestor(self):
        formula = ast.TImplies(
            ast.TAnd(ast.Root(x), ast.Anc(y, x)), ast.TFALSE)
        assert TreeCompiler().is_valid(formula)

    def test_ancestor_antisymmetric(self):
        formula = ast.TImplies(ast.Anc(x, y),
                               ast.TNot(ast.Anc(y, x)))
        assert TreeCompiler().is_valid(formula)

    def test_not_valid(self):
        assert not TreeCompiler().is_valid(ast.Anc(x, y))

    def test_tree_induction(self):
        """Root in X and X closed under both child relations imply
        every node is in X — structural induction, the tree analogue
        of the string induction test."""
        r, a, b = (Var.first(n) for n in ("r", "a", "b"))
        c = Var.first("c")
        root_in = ast.TEx1(r, ast.TAnd(ast.Root(r), ast.TMem(r, X)))
        closed = ast.TAll1(a, ast.TAll1(b, ast.TImplies(
            ast.TAnd(ast.TMem(a, X),
                     ast.TOr(ast.Child0(a, b), ast.Child1(a, b))),
            ast.TMem(b, X))))
        everything = ast.TAll1(c, ast.TMem(c, X))
        formula = ast.TImplies(ast.TAnd(root_in, closed), everything)
        assert TreeCompiler().is_valid(formula)


class TestAutomatonOperations:
    def test_complement_and_witness(self):
        compiler = TreeCompiler()
        dfa = compiler.compile(ast.TEx1(Var.first("r"), ast.TTRUE))
        # accepts exactly the nonempty trees
        assert not dfa.accepts(None)
        assert dfa.accepts(Tree({}))
        witness = dfa.smallest_accepted()
        assert witness is not None
        tree = witness[0]
        assert tree is not None and tree.size() == 1
        comp = dfa.complement()
        assert comp.accepts(None)
        assert comp.smallest_accepted() == (None,)

    def test_minimize_preserves_language(self):
        compiler = TreeCompiler(minimize_during=False)
        dfa = compiler.compile(ast.TAnd(ast.TMem(x, X),
                                        ast.Root(x)))
        mini = dfa.minimize()
        assert mini.num_states <= dfa.num_states
        for size in range(3):
            for shape in all_shapes(size):
                nodes = shape.nodes() if shape else []
                for env in _assignments([x, X], nodes):
                    labeled = tree_with_assignment(
                        shape, env, compiler.tracks())
                    assert dfa.accepts(labeled) == mini.accepts(labeled)

    def test_is_universal(self):
        compiler = TreeCompiler()
        dfa = compiler.compile(ast.TTRUE)
        assert dfa.is_universal()
        assert not compiler.compile(ast.TFALSE).accepts(None)

    def test_product_requires_shared_manager(self):
        a = TreeCompiler().compile(ast.TTRUE)
        b = TreeCompiler().compile(ast.TTRUE)
        with pytest.raises(ValueError):
            a.intersect(b)

    def test_stats_recorded(self):
        compiler = TreeCompiler()
        compiler.compile(ast.TAnd(ast.TMem(x, X), ast.TMem(y, Y)))
        assert compiler.stats.max_states > 0
        assert compiler.stats.products >= 1


class TestTrees:
    def test_shapes_are_catalan(self):
        assert sum(1 for _ in all_shapes(3)) == 5
        assert sum(1 for _ in all_shapes(4)) == 14

    def test_nodes_and_size(self):
        tree = Tree({}, Tree({}), Tree({}, Tree({})))
        assert tree.size() == 4
        assert len(tree.nodes()) == 4

    def test_render(self):
        tree = Tree({0: True}, Tree({}), None)
        text = tree.render({0: "x"})
        assert "x" in text
        assert "L:" in text


class TestPretty:
    def test_atoms(self):
        from repro.treemso.pretty import pretty_tree_formula as pp
        assert pp(ast.TMem(x, X)) == "x in $X"
        assert pp(ast.Root(x)) == "root(x)"
        assert pp(ast.Child0(x, y)) == "y = left(x)"
        assert pp(ast.Child1(x, y)) == "y = right(x)"
        assert pp(ast.Anc(x, y)) == "x < y"
        assert pp(ast.TTRUE) == "true"

    def test_structure(self):
        from repro.treemso.pretty import pretty_tree_formula as pp
        formula = ast.TEx1(x, ast.TImplies(
            ast.Root(x), ast.TAnd(ast.TMem(x, X),
                                  ast.TNot(ast.TMem(x, Y)))))
        text = pp(formula)
        assert text.startswith("ex1 x:")
        assert "~" in text and "=>" in text
