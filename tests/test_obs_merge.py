"""Property tests for the merge algebra behind parallel verification.

Per-worker ``CompilationStats`` and ``MetricsRegistry`` instances are
folded into one view by the executor; replies arrive in *arbitrary
order* (``imap_unordered``), so the merge operations must be
associative and commutative or the merged report would depend on
worker scheduling.  Integer-valued strategies keep every comparison
exact (no float-rounding escape hatch)."""

import copy

from hypothesis import given, strategies as st

from repro.mso.compile import CompilationStats
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, NULL_REGISTRY)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

counts = st.integers(min_value=0, max_value=10**6)


@st.composite
def compilation_stats(draw):
    stats = CompilationStats()
    for field in stats.to_dict():
        setattr(stats, field, draw(counts))
    return stats


@st.composite
def registries(draw):
    registry = MetricsRegistry()
    names = ("alpha", "beta", "gamma")
    for name in draw(st.sets(st.sampled_from(names))):
        registry.counter("count." + name).inc(draw(counts))
    for name in draw(st.sets(st.sampled_from(names))):
        gauge = registry.gauge("gauge." + name)
        for value in draw(st.lists(counts, max_size=4)):
            gauge.set(value)
    for name in draw(st.sets(st.sampled_from(names))):
        histogram = registry.histogram("hist." + name)
        for value in draw(st.lists(counts, max_size=6)):
            histogram.observe(value)
    return registry


def merged_stats(*parts):
    out = CompilationStats()
    for part in parts:
        out.merge(part)
    return out.to_dict()


def merged_registries(*parts):
    out = MetricsRegistry()
    for part in parts:
        out.merge(part)
    return out.to_dict()


# ----------------------------------------------------------------------
# CompilationStats.merge
# ----------------------------------------------------------------------

class TestCompilationStatsMerge:
    @given(a=compilation_stats(), b=compilation_stats())
    def test_commutative(self, a, b):
        assert merged_stats(a, b) == merged_stats(b, a)

    @given(a=compilation_stats(), b=compilation_stats(),
           c=compilation_stats())
    def test_associative(self, a, b, c):
        left = copy.deepcopy(a)
        left.merge(b)
        left.merge(c)
        bc = copy.deepcopy(b)
        bc.merge(c)
        right = copy.deepcopy(a)
        right.merge(bc)
        assert left.to_dict() == right.to_dict()

    @given(a=compilation_stats())
    def test_identity(self, a):
        assert merged_stats(a, CompilationStats()) == a.to_dict()

    @given(a=compilation_stats(), b=compilation_stats())
    def test_counters_sum_highwater_max(self, a, b):
        merged = merged_stats(a, b)
        assert merged["products"] == a.products + b.products
        assert merged["max_states"] == max(a.max_states, b.max_states)
        assert merged["peak_nodes"] == max(a.peak_nodes, b.peak_nodes)
        assert merged["unique_table_size"] == \
            max(a.unique_table_size, b.unique_table_size)

    @given(a=compilation_stats(), b=compilation_stats())
    def test_merge_argument_untouched(self, a, b):
        before = b.to_dict()
        a.merge(b)
        assert b.to_dict() == before


# ----------------------------------------------------------------------
# MetricsRegistry.merge
# ----------------------------------------------------------------------

class TestRegistryMerge:
    @given(a=registries(), b=registries())
    def test_commutative(self, a, b):
        assert merged_registries(a, b) == merged_registries(b, a)

    @given(a=registries(), b=registries(), c=registries())
    def test_associative(self, a, b, c):
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        left.merge(c)
        bc = MetricsRegistry()
        bc.merge(b)
        bc.merge(c)
        right = MetricsRegistry()
        right.merge(a)
        right.merge(bc)
        assert left.to_dict() == right.to_dict()

    @given(a=registries())
    def test_identity(self, a):
        assert merged_registries(a, MetricsRegistry()) == a.to_dict()

    @given(values=st.lists(counts, min_size=1, max_size=8))
    def test_merged_gauges_follow_max_over_subgoals(self, values):
        # One gauge per "worker", each holding one subgoal's value:
        # the merged gauge must equal the max over subgoals, exactly
        # as a sequential run's final gauge (which saw every set())
        # reports its max_value.
        merged = Gauge("g")
        sequential = Gauge("g")
        for value in values:
            worker = Gauge("g")
            worker.set(value)
            merged.merge(worker)
            sequential.set(value)
        assert merged.value == max(values)
        assert merged.max_value == sequential.max_value == max(values)

    @given(amounts=st.lists(counts, min_size=1, max_size=8))
    def test_merged_counters_sum(self, amounts):
        merged = Counter("c")
        for amount in amounts:
            worker = Counter("c")
            worker.inc(amount)
            merged.merge(worker)
        assert merged.value == sum(amounts)

    @given(left=st.lists(counts, max_size=8),
           right=st.lists(counts, max_size=8))
    def test_histogram_merge_equals_joint_observation(self, left, right):
        a, b, joint = Histogram("h"), Histogram("h"), Histogram("h")
        for value in left:
            a.observe(value)
            joint.observe(value)
        for value in right:
            b.observe(value)
            joint.observe(value)
        a.merge(b)
        assert a.to_dict() == joint.to_dict()

    @given(a=registries())
    def test_prefix_namespaces_do_not_collide(self, a):
        parent = MetricsRegistry()
        parent.merge(a)
        parent.merge(a, prefix="worker.0.")
        flat = parent.to_dict()
        for name in a.to_dict():
            assert name in flat
            assert "worker.0." + name in flat
            assert flat["worker.0." + name] == flat[name]

    def test_null_registry_merge_is_noop(self):
        source = MetricsRegistry()
        source.counter("x").inc(5)
        NULL_REGISTRY.merge(source)
        assert NULL_REGISTRY.to_dict() == {}
