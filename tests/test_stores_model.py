"""Tests for the concrete store model and well-formedness checking."""

import pytest

from repro.errors import StoreError, TypeError_
from repro.stores.model import NIL_ID, CellKind, Store
from repro.stores.schema import FieldInfo, RecordType, Schema

from util import list_schema, store_with_lists, terminator_schema


@pytest.fixture
def schema():
    return list_schema()


@pytest.fixture
def store(schema):
    return Store(schema)


class TestSchema:
    def test_variant_labels_order(self, schema):
        assert schema.variant_labels() == [("Item", "red"),
                                           ("Item", "blue")]

    def test_var_type_and_classification(self, schema):
        assert schema.var_type("x") == "Item"
        assert schema.is_data("x")
        assert not schema.is_data("p")
        with pytest.raises(TypeError_):
            schema.var_type("nope")
        with pytest.raises(TypeError_):
            schema.is_data("nope")

    def test_all_vars_order(self, schema):
        assert schema.all_vars() == ["x", "y", "p", "q"]

    def test_resolve_record(self, schema):
        assert schema.resolve_record("Item") == "Item"
        assert schema.resolve_record("List") == "Item"
        with pytest.raises(TypeError_):
            schema.resolve_record("Junk")

    def test_record_lookup(self, schema):
        record = schema.record("Item")
        assert record.field_of("red") == FieldInfo("next", "Item")
        with pytest.raises(TypeError_):
            record.field_of("green")
        with pytest.raises(TypeError_):
            schema.record("Junk")

    def test_validate_rejects_bad_tag_type(self):
        bad = Schema(enums={}, records={"R": RecordType(
            "R", "tag", "Missing", {})})
        with pytest.raises(TypeError_):
            bad.validate()

    def test_validate_rejects_overlapping_vars(self):
        bad = list_schema()
        bad.pointer_vars["x"] = "Item"
        with pytest.raises(TypeError_):
            bad.validate()


class TestStoreBasics:
    def test_fresh_store_has_nil_and_vars(self, store):
        assert store.cell(NIL_ID).kind is CellKind.NIL
        assert all(store.var(name) == NIL_ID
                   for name in ("x", "y", "p", "q"))
        assert store.is_well_formed()

    def test_add_record_checks_variant(self, store):
        with pytest.raises(StoreError):
            store.add_record("Item", "green")

    def test_make_list(self, store):
        ids = store.make_list("x", ["red", "blue"])
        assert store.var("x") == ids[0]
        assert store.cell(ids[0]).next == ids[1]
        assert store.cell(ids[1]).next == NIL_ID
        assert store.list_of("x") == ids

    def test_make_empty_list(self, store):
        assert store.make_list("x", []) == []
        assert store.var("x") == NIL_ID

    def test_set_var_requires_known_names(self, store):
        with pytest.raises(StoreError):
            store.set_var("nope", NIL_ID)
        with pytest.raises(StoreError):
            store.set_var("x", 999)

    def test_first_garbage_is_lowest(self, store):
        store.make_list("x", ["red"])
        g1 = store.add_garbage()
        g2 = store.add_garbage()
        assert store.first_garbage() == min(g1, g2)

    def test_first_garbage_none(self, store):
        assert store.first_garbage() is None

    def test_clone_is_independent(self, store):
        store.make_list("x", ["red"])
        copy = store.clone()
        copy.cell(copy.var("x")).variant = "blue"
        assert store.cell(store.var("x")).variant == "red"

    def test_list_of_detects_cycle(self, store):
        ids = store.make_list("x", ["red", "red"])
        store.cell(ids[1]).next = ids[0]
        with pytest.raises(StoreError):
            store.list_of("x")

    def test_record_and_garbage_ids(self, store):
        ids = store.make_list("x", ["red", "blue"])
        g = store.add_garbage()
        assert store.record_ids() == sorted(ids)
        assert store.garbage_ids() == [g]


class TestWellFormedness:
    def test_well_formed_store(self, schema):
        store = store_with_lists(schema,
                                 {"x": ["red", "blue"], "y": ["red"]},
                                 {"p": ("x", 1)}, garbage=2)
        assert store.is_well_formed()

    def test_dangling_pointer_var(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        garbage = store.add_garbage()
        store.set_var("p", garbage)
        assert any("dangles" in v for v in store.violations())

    def test_unclaimed_record_cell(self, store):
        store.add_record("Item", "red", NIL_ID)
        assert any("unclaimed" in v for v in store.violations())

    def test_shared_cell_between_lists(self, store):
        ids = store.make_list("x", ["red"])
        store.make_list("y", [])
        store.set_var("y", ids[0])
        assert any("shared" in v for v in store.violations())

    def test_cycle_detected(self, store):
        ids = store.make_list("x", ["red", "red"])
        store.cell(ids[1]).next = ids[0]
        assert any("cyclic" in v for v in store.violations())

    def test_undefined_next(self, store):
        ids = store.make_list("x", ["red"])
        store.cell(ids[0]).next = None
        assert any("undefined" in v for v in store.violations())

    def test_garbage_with_outgoing_pointer(self, store):
        garbage = store.add_garbage()
        store.cell(garbage).next = NIL_ID
        assert any("outgoing" in v for v in store.violations())

    def test_pointer_into_garbage_breaks_list(self, store):
        ids = store.make_list("x", ["red"])
        garbage = store.add_garbage()
        store.cell(ids[0]).next = garbage
        assert not store.is_well_formed()

    def test_terminator_variant_ends_list(self):
        schema = terminator_schema()
        store = Store(schema)
        cons = store.add_record("Node", "cons")
        leaf = store.add_record("Node", "leaf")
        store.cell(cons).next = leaf
        store.set_var("x", cons)
        assert store.is_well_formed(), store.violations()
        assert store.list_of("x") == [cons, leaf]

    def test_terminator_with_next_is_ill_formed(self):
        schema = terminator_schema()
        store = Store(schema)
        leaf = store.add_record("Node", "leaf", NIL_ID)
        store.set_var("x", leaf)
        assert any("no pointer field" in v for v in store.violations())


class TestSignature:
    def test_equal_for_isomorphic_stores(self, schema):
        a = store_with_lists(schema, {"x": ["red", "blue"]},
                             {"p": ("x", 0)}, garbage=1)
        b = store_with_lists(schema, {"x": ["red", "blue"]},
                             {"p": ("x", 0)}, garbage=1)
        assert a.signature() == b.signature()

    def test_differs_on_variant(self, schema):
        a = store_with_lists(schema, {"x": ["red"]})
        b = store_with_lists(schema, {"x": ["blue"]})
        assert a.signature() != b.signature()

    def test_differs_on_pointer_binding(self, schema):
        a = store_with_lists(schema, {"x": ["red", "red"]},
                             {"p": ("x", 0)})
        b = store_with_lists(schema, {"x": ["red", "red"]},
                             {"p": ("x", 1)})
        assert a.signature() != b.signature()

    def test_differs_on_garbage_count(self, schema):
        a = store_with_lists(schema, {"x": []}, garbage=1)
        b = store_with_lists(schema, {"x": []}, garbage=2)
        assert a.signature() != b.signature()
