"""End-to-end tests for the serving daemon.

Each test starts a real ``repro serve`` subprocess on a unix socket
and speaks to it through :class:`repro.serve.client.ServeClient` —
the same wire an operator's curl would use.  The lifecycle helper
asserts the cardinal robustness properties on every exit: the daemon
stops on SIGTERM with exit code 0, unlinks its socket, and leaves no
orphaned worker process behind.
"""

import contextlib
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.serve.client import ServeClient

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO, "src")

pytestmark = pytest.mark.slow


def _no_processes_mention(token: str) -> None:
    """No live process (daemon or forked worker) carries ``token`` in
    its command line — the orphan check."""
    probe = subprocess.run(["pgrep", "-f", token],
                           capture_output=True, text=True)
    assert probe.returncode != 0, \
        f"orphaned processes survive: {probe.stdout}"


@contextlib.contextmanager
def daemon(*extra_args, env_extra=None):
    """A running daemon on a fresh unix socket; yields
    (process, client, socket path) and tears down cleanly."""
    root = tempfile.mkdtemp(prefix="repro-serve-")
    sock = os.path.join(root, "d.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    if env_extra:
        env.update(env_extra)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--unix-socket", sock, *extra_args],
        env=env, cwd=_REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    client = ServeClient(unix_socket=sock, timeout=300.0)
    try:
        _wait_healthy(process, client)
        yield process, client, sock
    finally:
        try:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
                try:
                    process.wait(60)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(10)
            _no_processes_mention(sock)
        finally:
            shutil.rmtree(root, ignore_errors=True)


def _wait_healthy(process, client, timeout=30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died during startup (exit {process.returncode})"
                f": {process.stderr.read()}")
        try:
            status, _, _ = client.health()
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise AssertionError("daemon never became healthy")


def _wait_active(client, minimum=1, timeout=30.0) -> None:
    """Poll /v1/stats until ``minimum`` requests hold active slots."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, stats = client.stats()
        if status == 200 and \
                stats["admission"]["active"] >= minimum:
            return
        time.sleep(0.02)
    raise AssertionError("request never reached the active state")


class TestDaemonHappyPath:
    def test_end_to_end(self):
        with daemon("--workers", "2") as (process, client, sock):
            status, _, body = client.health()
            assert status == 200 and body["status"] == "ok"
            status, _, body = client.ready()
            assert status == 200 and body["status"] == "ready"

            # A bundled program, verified through the shared pool.
            status, _, report = client.verify(program="searchwf")
            assert status == 200
            assert report["outcome"] == "VERIFIED"
            assert report["schema_version"] == 2
            assert all(s["outcome"] == "VERIFIED"
                       for s in report["subgoals"])

            # Front-end rejection: well-formed HTTP, broken program.
            status, _, body = client.verify(source="program oops")
            assert status == 422
            assert body["error"]["code"] == "front-end"

            # Unknown bundled name.
            status, _, body = client.verify(program="no-such")
            assert status == 404
            assert body["error"]["code"] == "unknown-program"

            # Malformed field type.
            status, _, body = client.request(
                "POST", "/v1/verify", {"program": [1]})
            assert status == 400
            assert body["error"]["code"] == "bad-request"

            # Unrouted paths are structured too.
            status, _, body = client.request("GET", "/nope")
            assert status == 404

            # Batch: validated up front as a unit...
            status, _, body = client.batch(
                [{"program": "searchwf"}, {"program": "no-such"}])
            assert status == 404
            assert "requests[1]" in body["error"]["message"]
            # ...then executed with one status per item.
            status, _, body = client.batch(
                [{"program": "searchwf"},
                 {"source": "program oops"}])
            assert status == 200
            statuses = [item["status"] for item in body["results"]]
            assert statuses == [200, 422]
            assert body["results"][0]["result"]["outcome"] == "VERIFIED"

            # Stats carries every introspection section.
            status, _, stats = client.stats()
            assert status == 200
            assert stats["pool"]["jobs"] == 2
            assert stats["admission"]["max_concurrent"] >= 1
            assert "cache" in stats and "metrics" in stats

    def test_async_job_lifecycle(self):
        with daemon("--workers", "2") as (process, client, sock):
            status, _, body = client.verify(program="scan",
                                            background=True)
            assert status == 202
            job_id = body["job_id"]
            assert body["state"] in ("queued", "running")

            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                status, _, body = client.job(job_id)
                assert status == 200
                if body["state"] in ("done", "failed"):
                    break
                time.sleep(0.1)
            assert body["state"] == "done"
            assert body["status"] == 200
            assert body["result"]["outcome"] == "VERIFIED"

            status, _, body = client.job("not-a-job")
            assert status == 404
            assert body["error"]["code"] == "unknown-job"


class TestDaemonAdmission:
    def test_queue_full_rejected_with_retry_after(self):
        with daemon("--workers", "1", "--max-concurrent", "1",
                    "--max-queue", "0") as (process, client, sock):
            replies = []

            def occupy():
                replies.append(ServeClient(unix_socket=sock,
                                           timeout=300.0)
                               .verify(program="zip"))

            thread = threading.Thread(target=occupy)
            thread.start()
            try:
                _wait_active(client)
                status, headers, body = client.verify(
                    program="searchwf")
                assert status == 429
                assert body["error"]["code"] == "queue-full"
                assert int(headers["retry-after"]) >= 1
            finally:
                thread.join(300)
            status, _, report = replies[0]
            assert status == 200
            assert report["outcome"] == "VERIFIED"


class TestDaemonShutdown:
    def test_sigterm_drains_in_flight_request(self):
        with daemon("--workers", "1", "--drain-grace", "120") as \
                (process, client, sock):
            replies = []

            def occupy():
                replies.append(ServeClient(unix_socket=sock,
                                           timeout=300.0)
                               .verify(program="zip"))

            thread = threading.Thread(target=occupy)
            thread.start()
            _wait_active(client)
            process.send_signal(signal.SIGTERM)
            thread.join(300)

            # The in-flight request completed normally...
            status, _, report = replies[0]
            assert status == 200
            assert report["outcome"] == "VERIFIED"
            # ...the daemon exited cleanly and removed its socket.
            assert process.wait(60) == 0
            assert not os.path.exists(sock)
        _no_processes_mention(sock)


class TestDaemonFaults:
    def test_worker_killed_mid_request_is_retried(self):
        # A SIGKILLed busy worker must not strand or corrupt the
        # request: the supervisor respawns, retries, and the verdicts
        # match an undisturbed run.
        with daemon("--workers", "2",
                    env_extra={"REPRO_FAULTS": "verify.decide:kill:1"}
                    ) as (process, client, sock):
            status, _, report = client.verify(program="searchwf")
            assert status == 200
            assert report["outcome"] == "VERIFIED"
            assert all(s["outcome"] == "VERIFIED"
                       for s in report["subgoals"])
            status, _, stats = client.stats()
            assert stats["pool"]["restarts"] >= 1

    def test_request_decode_fault_stays_structured(self):
        # Even an "impossible" decoder failure comes back as JSON with
        # a status code, and the daemon keeps serving afterwards.
        with daemon("--workers", "1",
                    env_extra={"REPRO_FAULTS":
                               "serve.request_decode:error"}
                    ) as (process, client, sock):
            status, _, body = client.verify(program="searchwf")
            assert status == 500
            assert body["error"]["code"] == "internal"
            assert "Traceback" not in str(body)
            status, _, body = client.health()
            assert status == 200
