"""Tests for the verification engine: subgoal splitting, triple
decision, counterexamples, and small end-to-end programs.

The heavyweight paper-program integration lives in
``test_programs.py``; here we use minimal programs so each case stays
fast.
"""

import pytest

from repro.errors import VerificationError
from repro.obs.metrics import MetricsRegistry, activate_metrics
from repro.pascal import check_program, parse_program
from repro.verify import Verifier, verify_source
from repro.verify.report import format_result, format_table
from repro.stores.render import render_symbols

from util import wrap_program


def verify_body(body, pre="", post="", **kwargs):
    return verify_source(wrap_program(body, pre=pre, post=post), **kwargs)


class TestSubgoalSplitting:
    def build(self, body, pre="", post=""):
        program = check_program(parse_program(
            wrap_program(body, pre=pre, post=post)))
        return Verifier(program).collect_subgoals()

    def test_loop_free_single_subgoal(self):
        subgoals = self.build("  x := nil", pre="true", post="x = nil")
        assert len(subgoals) == 1
        assert subgoals[0].description == "postcondition"

    def test_loop_produces_three_subgoals(self):
        subgoals = self.build(
            "  while x <> nil do x := x^.next", post="x = nil")
        descriptions = [s.description for s in subgoals]
        assert len(subgoals) == 3
        assert "loop entry" in descriptions[0]
        assert "invariant preservation" in descriptions[1]
        assert descriptions[2] == "postcondition"

    def test_two_sequential_loops(self):
        subgoals = self.build(
            "  while x <> nil do x := x^.next;\n"
            "  while y <> nil do y := y^.next")
        assert len(subgoals) == 5

    def test_nested_loops(self):
        subgoals = self.build(
            "  while x <> nil do begin\n"
            "    while p <> nil do p := p^.next;\n"
            "    x := x^.next\n"
            "  end")
        # outer entry, inner entry, inner preservation, outer
        # preservation tail, postcondition
        assert len(subgoals) == 5

    def test_cut_point_assertion_splits(self):
        subgoals = self.build(
            "  x := nil\n  {x = nil}\n  y := nil", post="y = nil")
        assert len(subgoals) == 2
        assert "assertion" in subgoals[0].description

    def test_loop_inside_if_rejected(self):
        with pytest.raises(VerificationError):
            self.build(
                "  if x = nil then begin\n"
                "    while p <> nil do p := p^.next\n"
                "  end")

    def test_loop_inside_if_rejection_carries_position(self):
        with pytest.raises(VerificationError) as excinfo:
            self.build(
                "  if x = nil then begin\n"
                "    while p <> nil do p := p^.next\n"
                "  end")
        assert excinfo.value.line > 0
        assert str(excinfo.value).startswith(
            f"{excinfo.value.line}:")


class TestLoopFreeTriples:
    def test_trivial_skip_verifies(self):
        assert verify_body("  x := x").valid

    def test_assign_postcondition(self):
        assert verify_body("  p := x", post="p = x").valid

    def test_wrong_postcondition_fails(self):
        result = verify_body("  p := x", post="p <> x")
        assert not result.valid
        assert result.counterexample is not None

    def test_nil_dereference_detected(self):
        result = verify_body("  p := x^.next")
        assert not result.valid
        ce = result.counterexample
        # shortest failing store: x empty
        assert render_symbols(ce.symbols) == \
            "[nil,{p,q,x,y}] [lim,{}] [lim,{}]"
        assert "nil" in ce.explanation

    def test_precondition_excludes_error(self):
        assert verify_body("  p := x^.next", pre="x <> nil").valid

    def test_memory_leak_detected(self):
        result = verify_body("  x := nil", pre="x <> nil")
        assert not result.valid
        assert "well-formed" in result.counterexample.explanation

    def test_dangling_variable_detected(self):
        result = verify_body(
            "  p := x;\n  x := x^.next;\n  dispose(p, red)",
            pre="x <> nil & <(List:red)?>x")
        assert not result.valid  # p dangles at the end

    def test_dispose_repaired_by_clearing(self):
        # q must be cleared too: it could alias the disposed cell.
        assert verify_body(
            "  p := x;\n  x := x^.next;\n  dispose(p, red);\n"
            "  p := nil;\n  q := nil",
            pre="x <> nil & <(List:red)?>x").valid

    def test_allocation_assumed_to_succeed(self):
        """new() with no memory precondition verifies: alloc(S) is
        assumed.  The fresh cell must be linked into a list, or the
        final store would leak it."""
        assert verify_body(
            "  new(p, red);\n  p^.next := x;\n  x := p\n",
            post="p <> nil & x = p").valid

    def test_variant_mismatch_on_dispose(self):
        result = verify_body("  dispose(x, red);\n  x := nil",
                             pre="x <> nil")
        assert not result.valid  # x might be blue

    def test_variant_match_with_test(self):
        assert verify_body(
            "  if x <> nil then begin\n"
            "    if x^.tag = red then begin\n"
            "      p := x^.next; dispose(x, red); x := p;\n"
            "      p := nil; q := nil\n"
            "    end\n"
            "  end",
            pre="q = nil").valid

    def test_guard_error_detected(self):
        result = verify_body("  if p^.tag = red then p := nil")
        assert not result.valid

    def test_conditional_merging(self):
        assert verify_body(
            "  if x = nil then p := nil else p := x",
            post="p = x | (x = nil & p = nil)").valid


class TestLoops:
    def test_walk_to_end(self):
        """A pointer variable (not the data variable, which would leak
        its list) walks to nil."""
        assert verify_body(
            "  p := x;\n  while p <> nil do p := p^.next",
            post="p = nil").valid

    def test_invariant_used(self):
        assert verify_body(
            "  q := nil;\n  p := x;\n"
            "  while p <> nil do {q = nil} p := p^.next",
            post="p = nil & q = nil").valid

    def test_invariant_too_weak(self):
        result = verify_body(
            "  p := x;\n"
            "  while p <> nil do p := p^.next",
            post="q = x")
        assert not result.valid
        failing = [r for r in result.results if not r.valid]
        assert failing
        assert "postcondition" in failing[0].description

    def test_invariant_not_established(self):
        result = verify_body(
            "  while x <> nil do {x = nil} x := x^.next")
        assert not result.valid
        assert "loop entry" in [
            r.description for r in result.results if not r.valid][0]

    def test_invariant_not_preserved(self):
        result = verify_body(
            "  while x <> nil do {x<next*>p | p = nil} begin\n"
            "    p := x; x := x^.next\n"
            "  end",
            pre="p = nil")
        assert not result.valid

    def test_stop_at_first_failure(self):
        result = verify_body(
            "  while x <> nil do {x = nil} x := x^.next",
            stop_at_first_failure=True)
        assert len(result.results) == 1


class TestResultApi:
    def test_aggregates(self):
        result = verify_body("  p := x", post="p = x")
        assert result.valid
        assert result.seconds > 0
        assert result.formula_size > 0
        assert result.max_states > 0
        assert result.max_nodes > 0
        assert result.counterexample is None

    def test_track_metrics_in_dict(self):
        result = verify_body("  p := x", post="p = x")
        report = result.to_dict()
        assert report["tracks_before"] >= report["tracks_after"] > 0
        for subgoal in report["subgoals"]:
            assert subgoal["tracks_before"] >= \
                subgoal["tracks_after"] > 0

    def test_track_gauges_agree_with_report(self):
        # The gauges must show the max over subgoals, like the JSON
        # report — not whichever subgoal was decided last.
        registry = MetricsRegistry()
        with activate_metrics(registry):
            result = verify_body(
                "  while x <> nil do {true} x := x^.next;\n"
                "  p := y", post="p = y")
        assert len(result.results) > 1
        assert registry.gauge("verify.tracks_before").value == \
            result.tracks_before
        assert registry.gauge("verify.tracks_after").value == \
            result.tracks_after

    def test_format_result_verified(self):
        result = verify_body("  p := x", post="p = x")
        text = format_result(result)
        assert "VERIFIED" in text

    def test_format_result_failed_shows_counterexample(self):
        result = verify_body("  p := x^.next")
        text = format_result(result)
        assert "FAILED" in text
        assert "counterexample" in text
        assert "[nil," in text

    def test_format_table(self):
        results = [verify_body("  p := x", post="p = x")]
        results[0].program = "tiny"
        table = format_table(results)
        assert "Program" in table
        assert "tiny" in table

    def test_verbose_lists_obligations(self):
        result = verify_body("  p := x", post="p = x")
        assert "check:" in format_result(result, verbose=True)


class TestCounterexamples:
    def test_counterexample_store_satisfies_assumptions(self):
        result = verify_body("  p := x^.next")
        ce = result.counterexample
        assert ce.store.is_well_formed()

    def test_counterexample_simulation_disabled(self):
        result = verify_body("  p := x^.next", simulate=False)
        assert result.counterexample.trace is None

    def test_counterexample_render_sections(self):
        result = verify_body("  p := x^.next")
        text = result.counterexample.render()
        for section in ("subgoal:", "string:", "initial store:",
                        "explanation:"):
            assert section in text
