"""Tests for the store-string encoding (paper §3) and rendering."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StoreError
from repro.stores.encode import (LABEL_GARB, LABEL_LIM, LABEL_NIL, Symbol,
                                 decode_store, encode_store, record_label)
from repro.stores.model import Store
from repro.stores.render import render_store, render_symbols

from util import list_schema, random_store, store_with_lists


@pytest.fixture
def schema():
    return list_schema(data_vars=("x",), pointer_vars=("p",))


@pytest.fixture
def schema3():
    return list_schema(data_vars=("x", "y", "z"),
                       pointer_vars=("p", "q"))


class TestPaperExamples:
    def test_first_paper_store(self, schema):
        """The 6-symbol example of §3."""
        store = store_with_lists(schema,
                                 {"x": ["red", "red", "blue", "red"]},
                                 {"p": ("x", 2)})
        text = render_symbols(encode_store(store))
        assert text == ("[nil,{}] [(Item:red),{x}] [(Item:red),{}] "
                        "[(Item:blue),{p}] [(Item:red),{}] [lim,{}]")

    def test_second_paper_store(self, schema3):
        """The 9-symbol example of §3 (x: 3 reds; y empty; z: 2 blues)."""
        store = store_with_lists(
            schema3,
            {"x": ["red", "red", "red"], "y": [], "z": ["blue", "blue"]},
            {"p": ("x", 0), "q": ("x", 1)})
        symbols = encode_store(store)
        assert len(symbols) == 9
        assert symbols[0] == Symbol(LABEL_NIL, frozenset({"y"}))
        assert symbols[1].bitmap == frozenset({"x", "p"})
        assert symbols[4].label == LABEL_LIM
        assert symbols[5].label == LABEL_LIM
        assert symbols[6].bitmap == frozenset({"z"})
        assert symbols[8].label == LABEL_LIM

    def test_symbol_rendering(self):
        assert str(Symbol(LABEL_NIL, frozenset({"p"}))) == "[nil,{p}]"
        assert str(Symbol(record_label("Item", "red"),
                          frozenset({"x", "p"}))) == "[(Item:red),{p,x}]"
        assert str(Symbol(LABEL_LIM, frozenset())) == "[lim,{}]"


class TestEncodeErrors:
    def test_ill_formed_store_rejected(self, schema):
        store = Store(schema)
        store.add_record("Item", "red", 0)  # unclaimed
        with pytest.raises(StoreError):
            encode_store(store)


class TestDecode:
    def test_roundtrip_simple(self, schema):
        store = store_with_lists(schema, {"x": ["red", "blue"]},
                                 {"p": ("x", 1)}, garbage=2)
        symbols = encode_store(store)
        decoded = decode_store(schema, symbols)
        assert decoded.is_well_formed()
        assert decoded.signature() == store.signature()
        assert encode_store(decoded) == symbols

    def test_cell_ids_equal_positions(self, schema):
        store = store_with_lists(schema, {"x": ["red"]}, garbage=1)
        decoded = decode_store(schema, encode_store(store))
        assert decoded.var("x") == 1
        assert decoded.garbage_ids() == [3]  # nil, cell, lim, garb

    def test_missing_nil_rejected(self, schema):
        with pytest.raises(StoreError):
            decode_store(schema, [Symbol(LABEL_LIM, frozenset())])

    def test_extra_nil_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x", "p"})),
                   Symbol(LABEL_NIL, frozenset()),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_missing_lim_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x", "p"}))]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_too_many_lims_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x", "p"})),
                   Symbol(LABEL_LIM, frozenset()),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_record_after_garbage_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"p"})),
                   Symbol(LABEL_GARB, frozenset()),
                   Symbol(record_label("Item", "red"), frozenset({"x"})),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_variable_in_two_bitmaps_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x", "p"})),
                   Symbol(record_label("Item", "red"), frozenset({"p"})),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_variable_missing_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x"})),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_data_var_in_wrong_place_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"p"})),
                   Symbol(record_label("Item", "red"), frozenset()),
                   Symbol(record_label("Item", "red"), frozenset({"x"})),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_pointer_var_on_lim_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x"})),
                   Symbol(LABEL_LIM, frozenset({"p"}))]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)

    def test_unknown_label_rejected(self, schema):
        symbols = [Symbol(LABEL_NIL, frozenset({"x", "p"})),
                   Symbol(record_label("Item", "green"), frozenset()),
                   Symbol(LABEL_LIM, frozenset())]
        with pytest.raises(StoreError):
            decode_store(schema, symbols)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_roundtrip_random_stores(seed):
    """encode -> decode -> encode is the identity on random stores."""
    schema = list_schema()
    store = random_store(schema, random.Random(seed))
    symbols = encode_store(store)
    decoded = decode_store(schema, symbols)
    assert decoded.is_well_formed()
    assert encode_store(decoded) == symbols
    assert decoded.signature() == store.signature()


class TestRender:
    def test_render_lists_and_pointers(self, schema):
        store = store_with_lists(schema, {"x": ["red", "blue"]},
                                 {"p": ("x", 1)})
        text = render_store(store)
        assert "x: [red] -> [blue] -> nil" in text
        assert "^p" in text

    def test_render_empty_and_garbage(self, schema):
        store = store_with_lists(schema, {"x": []}, garbage=1)
        text = render_store(store)
        assert "x: nil" in text
        assert "garbage:" in text

    def test_render_broken_chain(self, schema):
        store = store_with_lists(schema, {"x": ["red", "red"]})
        ids = store.list_of("x")
        store.cell(ids[1]).next = ids[0]
        text = render_store(store)
        assert "cycle" in text

    def test_render_dangling(self, schema):
        store = store_with_lists(schema, {"x": []})
        garbage = store.add_garbage()
        store.set_var("p", garbage)
        assert "dangling" in render_store(store)

    def test_render_symbols_matches_paper_notation(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        assert render_symbols(encode_store(store)) == \
            "[nil,{p}] [(Item:red),{x}] [lim,{}]"
