"""Tests for the MTBDD-backed symbolic automata.

The oracle is the explicit-alphabet DFA layer: a symbolic automaton
over k tracks is compared against an explicit automaton over the
alphabet {0,1}^k on all short words.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.explicit import Dfa
from repro.automata.symbolic import (SymbolicDfa, SymbolicNfa,
                                     delta_from_function)
from repro.bdd import Mtbdd

NUM_TRACKS = 2
SYMBOLS = [dict(zip(range(NUM_TRACKS), bits))
           for bits in itertools.product([False, True],
                                         repeat=NUM_TRACKS)]


def _random_symbolic(rng, num_states, mgr=None):
    """A random complete symbolic DFA over NUM_TRACKS tracks."""
    mgr = mgr if mgr is not None else Mtbdd()
    table = {}
    for state in range(num_states):
        for index, _symbol in enumerate(SYMBOLS):
            table[(state, index)] = rng.randrange(num_states)
    delta = [
        delta_from_function(
            mgr, range(NUM_TRACKS),
            lambda a, s=state: table[
                (s, _symbol_index(a))])
        for state in range(num_states)]
    accepting = frozenset(
        state for state in range(num_states) if rng.random() < 0.4)
    return SymbolicDfa(mgr, num_states, 0, accepting, delta), table


def _symbol_index(assignment):
    value = 0
    for track in range(NUM_TRACKS):
        value = (value << 1) | int(assignment[track])
    return value


def _to_explicit(sym, table, num_states, accepting):
    alphabet = frozenset(range(len(SYMBOLS)))
    delta = [{index: table[(state, index)] for index in alphabet}
             for state in range(num_states)]
    return Dfa(num_states=num_states, alphabet=alphabet, initial=0,
               accepting=set(accepting), delta=delta)


def _words(max_len):
    for length in range(max_len + 1):
        yield from itertools.product(range(len(SYMBOLS)), repeat=length)


def _sym_word(word):
    return [SYMBOLS[index] for index in word]


class TestAgainstExplicitOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_acceptance_matches(self, seed):
        rng = random.Random(seed)
        sym, table = _random_symbolic(rng, 5)
        exp = _to_explicit(sym, table, 5, sym.accepting)
        for word in _words(4):
            assert sym.accepts(_sym_word(word)) == exp.accepts(word)

    @pytest.mark.parametrize("seed", range(8))
    def test_product_matches(self, seed):
        rng = random.Random(seed)
        mgr = Mtbdd()
        sym1, t1 = _random_symbolic(rng, 4, mgr)
        sym2, t2 = _random_symbolic(rng, 3, mgr)
        exp1 = _to_explicit(sym1, t1, 4, sym1.accepting)
        exp2 = _to_explicit(sym2, t2, 3, sym2.accepting)
        for name in ("intersect", "union", "difference"):
            sprod = getattr(sym1, name)(sym2)
            eprod = getattr(exp1, name)(exp2)
            for word in _words(3):
                assert sprod.accepts(_sym_word(word)) == \
                    eprod.accepts(word), (name, word)

    @pytest.mark.parametrize("seed", range(8))
    def test_minimize_preserves_and_shrinks(self, seed):
        rng = random.Random(seed)
        sym, _ = _random_symbolic(rng, 6)
        mini = sym.minimize()
        assert mini.num_states <= sym.num_states
        for word in _words(4):
            assert sym.accepts(_sym_word(word)) == \
                mini.accepts(_sym_word(word))
        assert mini.equivalent(sym)

    @pytest.mark.parametrize("seed", range(8))
    def test_minimize_agrees_with_hopcroft(self, seed):
        rng = random.Random(seed)
        sym, table = _random_symbolic(rng, 6)
        exp = _to_explicit(sym, table, 6, sym.accepting)
        assert sym.minimize().num_states == exp.minimize().num_states

    @pytest.mark.parametrize("seed", range(6))
    def test_projection_is_existential(self, seed):
        rng = random.Random(seed)
        sym, _ = _random_symbolic(rng, 4)
        projected = sym.project(0).determinize()
        for word in _words(3):
            expected = any(
                sym.accepts([{**SYMBOLS[i], 0: choice}
                             for i, choice in zip(word, choices)])
                for choices in itertools.product([False, True],
                                                 repeat=len(word)))
            assert projected.accepts(_sym_word(word)) == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_shortest_accepted(self, seed):
        rng = random.Random(seed)
        sym, table = _random_symbolic(rng, 5)
        exp = _to_explicit(sym, table, 5, sym.accepting)
        shortest = sym.shortest_accepted()
        oracle = exp.shortest_word()
        if oracle is None:
            assert shortest is None
        else:
            assert shortest is not None
            assert len(shortest) == len(oracle)
            assert sym.accepts(shortest)


class TestStructure:
    def test_complement_is_involution(self):
        rng = random.Random(0)
        sym, _ = _random_symbolic(rng, 4)
        assert sym.complement().complement().accepting == sym.accepting

    def test_universal_and_empty(self):
        mgr = Mtbdd()
        loop = mgr.leaf(0)
        everything = SymbolicDfa(mgr, 1, 0, frozenset([0]), [loop])
        nothing = SymbolicDfa(mgr, 1, 0, frozenset(), [loop])
        assert everything.is_universal()
        assert not everything.is_empty()
        assert nothing.is_empty()
        assert not nothing.is_universal()
        assert everything.includes(nothing)
        assert not nothing.includes(everything)

    def test_trim_drops_unreachable(self):
        mgr = Mtbdd()
        # state 1 unreachable
        delta = [mgr.leaf(0), mgr.leaf(0)]
        dfa = SymbolicDfa(mgr, 2, 0, frozenset([0]), delta)
        trimmed = dfa.trim()
        assert trimmed.num_states == 1

    def test_product_requires_shared_manager(self):
        a, _ = _random_symbolic(random.Random(1), 2)
        b, _ = _random_symbolic(random.Random(2), 2)
        with pytest.raises(ValueError):
            a.intersect(b)

    def test_bdd_node_count_positive(self):
        sym, _ = _random_symbolic(random.Random(3), 4)
        assert sym.bdd_node_count() >= 0
        assert sym.tracks() <= frozenset(range(NUM_TRACKS))

    def test_step(self):
        mgr = Mtbdd()
        d0 = delta_from_function(mgr, [0], lambda a: 1 if a[0] else 0)
        dfa = SymbolicDfa(mgr, 2, 0, frozenset([1]), [d0, mgr.leaf(1)])
        assert dfa.step(0, {0: True}) == 1
        assert dfa.step(0, {0: False}) == 0

    def test_determinize_empty_initial(self):
        mgr = Mtbdd()
        nfa = SymbolicNfa(mgr, 1, frozenset(), frozenset([0]),
                          [mgr.leaf(frozenset())])
        dfa = nfa.determinize()
        assert dfa.is_empty()
