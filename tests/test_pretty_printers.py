"""Round-trip tests for the Pascal and store-logic pretty printers."""

import pytest

from repro.pascal import parse_program
from repro.pascal.pretty import pretty_program
from repro.programs import ALL_PROGRAMS
from repro.storelogic import parse_formula
from repro.storelogic.pretty import pretty_formula, pretty_route
from repro.automata.render import render_transitions, to_dot

from util import wrap_program


class TestPascalPretty:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_fixpoint_on_paper_programs(self, name):
        source = ALL_PROGRAMS[name]
        once = pretty_program(parse_program(source))
        twice = pretty_program(parse_program(once))
        assert once == twice

    def test_preserves_annotations(self):
        source = wrap_program(
            "  x := nil\n  {x = nil}\n"
            "  while y <> nil do {x = nil} y := y^.next",
            pre="y = nil", post="x = nil")
        printed = pretty_program(parse_program(source))
        assert "{y = nil}" in printed
        assert "{x = nil}" in printed
        reparsed = parse_program(printed)
        assert reparsed.pre.text == "y = nil"
        assert reparsed.post.text == "x = nil"

    def test_preserves_structure(self):
        source = wrap_program(
            "  if x = nil then begin p := nil end "
            "else begin p := x; q := p end")
        printed = pretty_program(parse_program(source))
        reparsed = parse_program(printed)
        branch = reparsed.body[0]
        assert len(branch.then_body) == 1
        assert len(branch.else_body) == 2

    def test_record_declarations_roundtrip(self):
        source = """
        program t;
        type
          Kind = (cons, leaf);
          P = ^Node;
          Node = record case tag: Kind of
            cons: (next: P); leaf: ()
          end;
        {data} var x: P;
        begin x := nil end.
        """
        once = pretty_program(parse_program(source))
        assert pretty_program(parse_program(once)) == once


FORMULAS = [
    "x = nil",
    "p <> q",
    "x<next*>p",
    "x<next+>p",
    "<garb?>g",
    "x<next.(List:red)?.next>p",
    "x<(next+(List:red)?)*>p",
    "~(x = nil) & (p = q | p = nil)",
    "x = nil => p = nil => q = nil",
    "x = nil <=> p = nil",
    "all c, d: c<next>d => ~<garb?>d",
    "ex g: <garb?>g & (all r: <garb?>r => r = g)",
    "true | false",
    "p^.next^.next = nil",
]


class TestStoreLogicPretty:
    @pytest.mark.parametrize("text", FORMULAS)
    def test_fixpoint(self, text):
        once = pretty_formula(parse_formula(text))
        twice = pretty_formula(parse_formula(once))
        assert once == twice

    @pytest.mark.parametrize("text", FORMULAS)
    def test_structure_preserved(self, text):
        formula = parse_formula(text)
        reparsed = parse_formula(pretty_formula(formula))
        assert reparsed == formula or \
            pretty_formula(reparsed) == pretty_formula(formula)

    def test_route_rendering(self):
        formula = parse_formula("x<(next.next)*>p")
        assert pretty_route(formula.route) == "(next.next)*"

    def test_inequality_sugar_restored(self):
        assert pretty_formula(parse_formula("p <> q")) == "p <> q"

    def test_unary_route_sugar_restored(self):
        assert pretty_formula(parse_formula("<garb?>g")) == "<garb?>g"


class TestAutomatonRendering:
    @pytest.fixture
    def small_dfa(self):
        from repro.mso import ast
        from repro.mso.build import FormulaBuilder as F
        from repro.mso.compile import Compiler
        x = ast.Var.second("X")
        compiler = Compiler()
        dfa = compiler.compile(F.empty(x))
        return dfa, compiler.tracks()

    def test_render_transitions(self, small_dfa):
        dfa, tracks = small_dfa
        text = render_transitions(dfa, tracks)
        assert "state 0>*" in text or "state 0*>" in text \
            or "state 0" in text
        assert "--[" in text
        assert "X" in text

    def test_to_dot(self, small_dfa):
        dfa, tracks = small_dfa
        dot = to_dot(dfa, tracks)
        assert dot.startswith("digraph")
        assert "doublecircle" in dot
        assert "->" in dot

    def test_guard_true_for_dont_care(self):
        from repro.bdd import Mtbdd
        from repro.automata.symbolic import SymbolicDfa
        mgr = Mtbdd()
        dfa = SymbolicDfa(mgr, 1, 0, frozenset([0]), [mgr.leaf(0)])
        text = render_transitions(dfa)
        assert "--[true]--> 0" in text
