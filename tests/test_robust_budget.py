"""Tests for resource budgets (repro.robust.budget) and their
integration with the verification engine: cooperative cancellation,
structured TIMEOUT/BUDGET_EXCEEDED outcomes, the degradation ladder,
and verdict preservation under generous limits."""

import pytest

from repro.robust.budget import (Budget, BudgetExceeded, NULL_BUDGET,
                                 activate, check_nodes, check_states,
                                 current_budget, tick)
from repro.verify import Outcome, verify_source

from util import wrap_program


def verify_body(body, pre="", post="", **kwargs):
    return verify_source(wrap_program(body, pre=pre, post=post), **kwargs)


class TestBudgetUnit:
    def test_null_budget_is_default_and_inactive(self):
        assert current_budget() is NULL_BUDGET
        assert NULL_BUDGET.active is False
        # All checks are no-ops on the null budget.
        tick("anywhere")
        check_nodes("anywhere", 10**12)
        check_states("anywhere", 10**12)

    def test_activate_restores_previous(self):
        budget = Budget(max_steps=100)
        with activate(budget):
            assert current_budget() is budget
        assert current_budget() is NULL_BUDGET

    def test_max_steps_trips_with_site(self):
        budget = Budget(max_steps=5)
        with activate(budget):
            with pytest.raises(BudgetExceeded) as info:
                for _ in range(10):
                    tick("test.site")
        assert info.value.limit == "steps"
        assert info.value.site == "test.site"
        assert budget.tripped is info.value

    def test_deadline_trips_on_check_time(self):
        budget = Budget(timeout=0.0)
        with pytest.raises(BudgetExceeded) as info:
            budget.check_time("phase.boundary")
        assert info.value.limit == "deadline"

    def test_node_and_state_caps(self):
        budget = Budget(max_bdd_nodes=10, max_states=20)
        budget.check_nodes("bdd.node", 10)  # at the cap: fine
        with pytest.raises(BudgetExceeded) as info:
            budget.check_nodes("bdd.node", 11)
        assert info.value.limit == "bdd_nodes"
        assert info.value.cap == 10
        with pytest.raises(BudgetExceeded):
            budget.check_states("automata.product", 21)

    def test_snapshot_and_limits_are_json_ready(self):
        import json
        budget = Budget(timeout=60, max_steps=3)
        with activate(budget):
            tick("a")
            tick("a")
        snapshot = budget.snapshot()
        assert snapshot["steps"] == 2
        assert snapshot["tripped"] is None
        json.dumps(snapshot)
        json.dumps(budget.limits())

    def test_message_names_limit_site_and_values(self):
        exc = BudgetExceeded("bdd_nodes", "bdd.node", 2049, 2048)
        assert "bdd_nodes" in str(exc)
        assert "bdd.node" in str(exc)
        assert "2049" in str(exc)


class TestEngineBudgets:
    def test_zero_timeout_every_subgoal_times_out(self):
        result = verify_body(
            "  while x <> nil do x := x^.next", post="x = nil",
            timeout=0.0)
        assert result.results
        assert not result.valid
        assert result.outcome is Outcome.TIMEOUT
        for subgoal in result.results:
            assert subgoal.outcome is Outcome.TIMEOUT
            assert subgoal.error
            # A passed deadline skips the pointless retry.
            assert subgoal.attempts == 1

    def test_state_cap_budget_exceeded_after_retry(self):
        result = verify_body("  p := x", post="p = x", max_states=2)
        (subgoal,) = result.results
        assert subgoal.outcome is Outcome.BUDGET_EXCEEDED
        assert subgoal.attempts == 2
        assert subgoal.budget["tripped"]["limit"] == "automaton_states"
        assert result.outcome is Outcome.BUDGET_EXCEEDED

    def test_node_cap_trips_in_bdd_layer(self):
        result = verify_body(
            "  while x <> nil do x := x^.next", post="x = nil",
            max_bdd_nodes=16)
        assert result.outcome is Outcome.BUDGET_EXCEEDED
        tripped = result.results[0].budget["tripped"]
        assert tripped["limit"] == "bdd_nodes"

    def test_max_steps_is_deterministic(self):
        first = verify_body("  p := x", post="p = x", max_steps=50)
        second = verify_body("  p := x", post="p = x", max_steps=50)
        assert first.results[0].budget["steps"] == \
            second.results[0].budget["steps"]
        assert first.outcome is second.outcome is \
            Outcome.BUDGET_EXCEEDED

    def test_generous_budget_matches_unbudgeted_verdict(self):
        source = wrap_program("  p := x", post="p = x")
        plain = verify_source(source)
        budgeted = verify_source(source, timeout=600,
                                 max_bdd_nodes=10**8, max_states=10**6)
        assert plain.valid and budgeted.valid
        assert plain.to_dict()["stats"] == budgeted.to_dict()["stats"]
        assert [r.valid for r in plain.results] == \
            [r.valid for r in budgeted.results]
        assert budgeted.budget["timeout"] == 600

    def test_budget_deactivated_after_run(self):
        verify_body("  p := x", post="p = x", timeout=600)
        assert current_budget() is NULL_BUDGET

    def test_schema_v2_document(self):
        result = verify_body("  p := x", post="p = x", max_states=2)
        document = result.to_dict()
        assert document["schema_version"] == 2
        assert document["outcome"] == "BUDGET_EXCEEDED"
        assert document["budget"]["max_states"] == 2
        subgoal = document["subgoals"][0]
        assert subgoal["outcome"] == "BUDGET_EXCEEDED"
        assert subgoal["attempts"] == 2
        assert subgoal["error"]

    def test_retry_can_be_disabled(self):
        result = verify_body("  p := x", post="p = x", max_states=2,
                             retry_alternate=False)
        assert result.results[0].attempts == 1


class TestExceptionPickling:
    """Every exception the engine may raise must survive the worker
    process boundary: the parallel executor ships failures back to
    the parent by pickling them, so a round trip has to preserve
    type, message, and structured fields exactly."""

    @staticmethod
    def round_trip(exc):
        import pickle
        return pickle.loads(pickle.dumps(exc))

    def test_budget_exceeded_round_trips(self):
        original = BudgetExceeded("bdd_nodes", "bdd.node", 2049, 2048)
        clone = self.round_trip(original)
        assert type(clone) is BudgetExceeded
        assert str(clone) == str(original)
        assert (clone.limit, clone.site, clone.value, clone.cap) == \
            ("bdd_nodes", "bdd.node", 2049, 2048)

    def test_verification_error_round_trips_without_double_prefix(self):
        from repro.errors import VerificationError
        original = VerificationError("subgoal exploded", line=3,
                                     column=7)
        clone = self.round_trip(original)
        assert type(clone) is VerificationError
        assert str(clone) == str(original)
        assert (clone.line, clone.column) == (3, 7)
        # Reconstruction must not re-apply the position prefix.
        assert str(clone) == "3:7: subgoal exploded"

    def test_parse_error_round_trips(self):
        from repro.errors import ParseError
        original = ParseError("unexpected token", line=1, column=2)
        clone = self.round_trip(original)
        assert type(clone) is ParseError
        assert str(clone) == str(original)

    def test_injected_fault_exceptions_round_trip(self):
        from repro.robust import faults
        for kind in faults.FAULT_KINDS:
            if kind == "interrupt":
                continue  # KeyboardInterrupt never crosses the wire
            if kind in faults.CRASH_KINDS:
                continue  # exit/kill terminate the process outright —
                # there is no exception to ship across the wire
            try:
                faults.parse_plan(f"mso.compile:{kind}").fire(
                    "mso.compile")
            except Exception as exc:
                clone = self.round_trip(exc)
                assert type(clone) is type(exc)
                assert str(clone) == str(exc)
            else:  # pragma: no cover - every kind must raise
                raise AssertionError(f"fault kind {kind} did not fire")


class TestOutcomeAggregation:
    def test_failed_dominates_degraded(self):
        from repro.verify.engine import _OUTCOME_SEVERITY
        assert _OUTCOME_SEVERITY[Outcome.FAILED] > \
            _OUTCOME_SEVERITY[Outcome.ERROR] > \
            _OUTCOME_SEVERITY[Outcome.BUDGET_EXCEEDED] > \
            _OUTCOME_SEVERITY[Outcome.TIMEOUT] > \
            _OUTCOME_SEVERITY[Outcome.VERIFIED]

    def test_decided_property(self):
        assert Outcome.VERIFIED.decided
        assert Outcome.FAILED.decided
        assert not Outcome.TIMEOUT.decided
        assert not Outcome.BUDGET_EXCEEDED.decided
        assert not Outcome.ERROR.decided
