"""Tests for the reporters (repro.verify.report) and the extended
compilation statistics: table rows, the full-program report, the
``--profile`` timing tree, the ``--json`` export, and
``CompilationStats.record``/``merge``/``capture_manager``.
"""

import json

import pytest

from repro.bdd.mtbdd import Mtbdd
from repro.mso.compile import CompilationStats
from repro.obs.trace import Tracer
from repro.verify import verify_source
from repro.verify.report import (TABLE_HEADER, format_json,
                                 format_result, format_span,
                                 format_table, format_table_row,
                                 format_timing_tree)

from util import wrap_program


def verify_body(body, pre="", post="", **kwargs):
    return verify_source(wrap_program(body, pre=pre, post=post), **kwargs)


@pytest.fixture(scope="module")
def traced_result():
    """One small traced verification shared by the formatting tests."""
    return verify_body("  p := x", post="p = x", tracer=Tracer())


@pytest.fixture(scope="module")
def untraced_result():
    return verify_body("  p := x", post="p = x")


class TestTable:
    def test_row_aligns_with_header(self, untraced_result):
        row = format_table_row(untraced_result)
        assert "yes" in row
        assert row.startswith("t ")  # wrap_program's default name
        header_valid = TABLE_HEADER.index("Valid")
        assert row.index("yes") == header_valid

    def test_failing_row_says_no(self):
        result = verify_body("  p := x", post="p = nil")
        assert not result.valid
        assert format_table_row(result).rstrip().endswith("NO")

    def test_degraded_row_names_outcome(self):
        result = verify_body("  p := x", post="p = x", timeout=0.0)
        row = format_table_row(result)
        assert row.rstrip().endswith("TIMEOUT")

    def test_format_table_has_header_rule_rows(self, untraced_result):
        table = format_table([untraced_result, untraced_result])
        lines = table.splitlines()
        assert lines[0] == TABLE_HEADER
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4


class TestFormatResult:
    def test_verified_report(self, untraced_result):
        text = format_result(untraced_result)
        assert "VERIFIED" in text
        assert "postcondition" in text
        assert "[ok ]" in text

    def test_failed_report_includes_counterexample(self):
        result = verify_body("  p := x", post="p = nil")
        text = format_result(result)
        assert "FAILED" in text
        assert "[FAIL]" in text
        assert "counterexample:" in text


class TestTimingTree:
    def test_untraced_subgoals_print_hint(self, untraced_result):
        tree = format_timing_tree(untraced_result)
        assert "timing (1 subgoals" in tree
        assert "--profile" in tree

    def test_traced_tree_lists_phases(self, traced_result):
        tree = format_timing_tree(traced_result)
        for phase in ("exec.symbolic", "translate", "compile",
                      "universality"):
            assert phase in tree, tree
        # Box-drawing connectors, and ms-formatted durations.
        assert "├─ " in tree and "└─ " in tree
        assert "ms" in tree

    def test_tree_total_matches_subgoal_seconds(self, traced_result):
        (subgoal,) = traced_result.results
        assert subgoal.span is not None
        assert subgoal.seconds == subgoal.span.seconds

    def test_format_span_renders_attributes(self, traced_result):
        (subgoal,) = traced_result.results
        lines = format_span(subgoal.span)
        assert lines[0].startswith("subgoal")
        compile_lines = [line for line in lines if "compile" in line]
        assert any("states=" in line for line in compile_lines)


class TestJsonExport:
    def test_round_trip_schema(self, traced_result):
        document = json.loads(format_json(traced_result))
        assert document["schema_version"] == 2
        assert document["program"] == "t"
        assert document["valid"] is True
        assert document["outcome"] == "VERIFIED"
        assert document["interrupted"] is False
        assert document["budget"] is None
        assert document["seconds"] == pytest.approx(
            traced_result.seconds)
        (subgoal,) = document["subgoals"]
        assert subgoal["description"] == "postcondition"
        assert subgoal["counterexample"] is None
        span = subgoal["span"]
        assert span["name"] == "subgoal"
        child_names = [child["name"] for child in span["children"]]
        assert child_names == ["exec.symbolic", "translate", "compile",
                               "universality"]

    def test_stats_include_bdd_cache_counters(self, traced_result):
        document = json.loads(format_json(traced_result))
        stats = document["stats"]
        for key in ("bdd_apply_hits", "bdd_apply_misses",
                    "bdd_map_hits", "bdd_map_misses",
                    "bdd_restrict_hits", "bdd_restrict_misses",
                    "unique_table_size", "peak_nodes",
                    "formula_memo_hits"):
            assert key in stats
        assert stats["bdd_apply_misses"] > 0
        assert stats["peak_nodes"] > 0
        assert stats["max_states"] > 0

    def test_untraced_subgoal_has_null_span(self, untraced_result):
        document = json.loads(format_json(untraced_result))
        assert document["subgoals"][0]["span"] is None

    def test_failed_run_exports_counterexample(self):
        result = verify_body("  p := x", post="p = nil")
        document = json.loads(format_json(result))
        assert document["valid"] is False
        counterexample = document["subgoals"][0]["counterexample"]
        assert counterexample is not None
        assert counterexample["description"]


class _FakeDfa:
    """Just enough surface for CompilationStats.record."""

    def __init__(self, states, nodes):
        self.num_states = states
        self._nodes = nodes

    def bdd_node_count(self):
        return self._nodes


class TestCompilationStats:
    def test_record_tracks_maxima(self):
        stats = CompilationStats()
        stats.record(_FakeDfa(5, 40))
        stats.record(_FakeDfa(3, 90))
        assert stats.max_states == 5
        assert stats.max_nodes == 90

    def test_capture_manager_copies_counters_idempotently(self):
        mgr = Mtbdd()
        f = mgr.node(0, mgr.leaf(0), mgr.leaf(1))
        mgr.apply2("min", min, f, f)
        mgr.apply2("min", min, f, f)
        stats = CompilationStats()
        stats.capture_manager(mgr)
        once = (stats.bdd_apply_hits, stats.bdd_apply_misses,
                stats.unique_table_size, stats.peak_nodes)
        stats.capture_manager(mgr)
        assert (stats.bdd_apply_hits, stats.bdd_apply_misses,
                stats.unique_table_size, stats.peak_nodes) == once
        assert stats.bdd_apply_hits > 0
        assert stats.bdd_apply_misses > 0
        assert stats.peak_nodes == len(mgr)

    def test_merge_sums_counters_and_maxes_marks(self):
        left = CompilationStats(
            max_states=10, max_nodes=100, products=2, projections=1,
            minimizations=3, compiled_nodes=7, formula_memo_hits=4,
            bdd_apply_hits=20, bdd_apply_misses=30, bdd_map_hits=1,
            bdd_map_misses=2, bdd_restrict_hits=3,
            bdd_restrict_misses=4, unique_table_size=50,
            peak_nodes=60)
        right = CompilationStats(
            max_states=8, max_nodes=200, products=1, projections=2,
            minimizations=1, compiled_nodes=5, formula_memo_hits=6,
            bdd_apply_hits=5, bdd_apply_misses=5, bdd_map_hits=5,
            bdd_map_misses=5, bdd_restrict_hits=5,
            bdd_restrict_misses=5, unique_table_size=40,
            peak_nodes=90)
        left.merge(right)
        # High-water marks take the maximum...
        assert left.max_states == 10
        assert left.max_nodes == 200
        assert left.unique_table_size == 50
        assert left.peak_nodes == 90
        # ...counters are summed.
        assert left.products == 3
        assert left.projections == 3
        assert left.minimizations == 4
        assert left.compiled_nodes == 12
        assert left.formula_memo_hits == 10
        assert left.bdd_apply_hits == 25
        assert left.bdd_apply_misses == 35
        assert left.bdd_map_hits == 6
        assert left.bdd_restrict_misses == 9

    def test_to_dict_covers_every_field(self):
        stats = CompilationStats()
        document = stats.to_dict()
        assert set(document) == set(
            CompilationStats.__dataclass_fields__)

    def test_aggregate_stats_sums_across_subgoals(self):
        result = verify_body(
            "  while x <> nil do x := x^.next", post="x = nil")
        assert len(result.results) >= 2
        merged = result.aggregate_stats()
        assert merged.bdd_apply_misses == sum(
            r.stats.bdd_apply_misses for r in result.results)
        assert merged.max_states == max(
            r.stats.max_states for r in result.results)
