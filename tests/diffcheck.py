"""Differential test harness: parallel verification must be
observationally equivalent to sequential verification.

The parallel executor (``repro.parallel``) is only allowed to change
*wall-clock time*.  This harness enforces that contract the way the
bounded-model-checking and simulation literatures validate their
engines — by cross-checking verdicts against the reference procedure:

* run every corpus program through ``verify --json`` sequentially and
  with ``-j 2`` / ``-j 4``, normalize the reports (strip timings —
  the only field allowed to differ), and assert the documents are
  **identical**: verdicts, outcomes, counterexamples, per-subgoal
  compilation statistics, span structure, schema;
* do the same for ``table --json`` over the whole corpus;
* a deterministic-seed **stress mode** re-runs the corpus under
  injected faults and 1-second budgets with workers enabled, and
  asserts every run still degrades structurally: no raw traceback on
  stderr, only structured outcomes in the report, and no orphaned
  worker process after the run;
* a **feature mode** (``--features``) cross-checks the engine's
  verdict-preserving optimisations the same way: every program with
  statement slicing + track ordering + a cold verdict cache, then a
  warm cache replay, against the same run with the optimisations off
  — verdicts, outcomes and failure presence must be identical (the
  comparison is verdict-level: ordering legitimately changes which
  same-length counterexample the BFS finds first), and the warm run
  must answer every subgoal from the cache.

Usable three ways: imported by the pytest suite (a fast subset), run
as a script by CI's ``parallel-smoke`` job (the full corpus), or run
by hand while hacking on the executor::

    PYTHONPATH=src:tests python tests/diffcheck.py --jobs 2 4
    PYTHONPATH=src:tests python tests/diffcheck.py --stress --seed 1997
    PYTHONPATH=src:tests python tests/diffcheck.py --features
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import multiprocessing
import os
import random
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cli import main as cli_main
from repro.programs import ALL_PROGRAMS
from repro.robust import faults

#: Keys whose values legitimately differ between runs: wall-clock
#: durations (top-level, per subgoal, per span, inside budget
#: consumption records, and as span annotations) and verdict-cache
#: bookkeeping (a sequential reference run warms the cache the
#: parallel run then hits).
VOLATILE_KEYS = frozenset({"seconds", "cache", "cache_hits"})

#: Outcomes a degraded-but-structured run may report.
STRUCTURED_OUTCOMES = frozenset({
    "VERIFIED", "FAILED", "TIMEOUT", "BUDGET_EXCEEDED", "ERROR",
    "INTERRUPTED",
})


def normalize(document):
    """Strip the volatile (timing) keys from a report, recursively.

    Everything that remains — verdicts, outcomes, counterexamples,
    per-subgoal stats, span names/attrs/structure — must be
    byte-identical between sequential and parallel runs.
    """
    if isinstance(document, dict):
        return {key: normalize(value) for key, value in document.items()
                if key not in VOLATILE_KEYS}
    if isinstance(document, list):
        return [normalize(item) for item in document]
    return document


def run_cli_json(argv: List[str]) -> Tuple[int, object, str]:
    """Run the CLI in-process, capturing (exit code, parsed JSON
    document, stderr text)."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = cli_main(argv)
    text = out.getvalue()
    document = json.loads(text) if text.strip() else None
    return code, document, err.getvalue()


def assert_no_orphans() -> None:
    """Every pool must have been joined before the run returned."""
    orphans = multiprocessing.active_children()
    assert not orphans, f"orphaned worker processes: {orphans}"


@contextlib.contextmanager
def fault_env(spec: str):
    """Set ``REPRO_FAULTS`` for the duration.

    The CLI (re-)installs the plan from the environment on every
    invocation, and worker pools forward the same variable to their
    initializer — so the environment, not ``faults.injected``, is the
    one channel that reaches both the parent and every worker under
    any start method.
    """
    previous = os.environ.get("REPRO_FAULTS")
    os.environ["REPRO_FAULTS"] = spec
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = previous


# ----------------------------------------------------------------------
# Equivalence checks
# ----------------------------------------------------------------------

def diff_verify(name: str, jobs: int,
                extra: Sequence[str] = ()) -> List[str]:
    """Compare ``verify --json`` sequentially vs with ``-j jobs``.
    Returns a list of human-readable mismatch descriptions."""
    base = ["verify", name, "--json", *extra]
    seq_code, seq_doc, _ = run_cli_json(base)
    par_code, par_doc, _ = run_cli_json(base + ["-j", str(jobs)])
    assert_no_orphans()
    mismatches: List[str] = []
    if seq_code != par_code:
        mismatches.append(f"{name}: exit code {seq_code} != {par_code} "
                          f"(-j {jobs})")
    if normalize(seq_doc) != normalize(par_doc):
        mismatches.extend(_explain(name, jobs, seq_doc, par_doc))
    return mismatches


def diff_table(names: Sequence[str], jobs: int,
               extra: Sequence[str] = ()) -> List[str]:
    """Compare ``table --json`` sequentially vs with ``--jobs jobs``."""
    base = ["table", *names, "--json", *extra]
    seq_code, seq_docs, _ = run_cli_json(base)
    par_code, par_docs, _ = run_cli_json(base + ["--jobs", str(jobs)])
    assert_no_orphans()
    mismatches: List[str] = []
    if seq_code != par_code:
        mismatches.append(f"table: exit code {seq_code} != {par_code} "
                          f"(--jobs {jobs})")
    seq_norm, par_norm = normalize(seq_docs), normalize(par_docs)
    if seq_norm != par_norm:
        for seq_one, par_one in zip(seq_docs, par_docs):
            mismatches.extend(_explain(seq_one.get("program", "?"),
                                       jobs, seq_one, par_one))
        if len(seq_docs) != len(par_docs):
            mismatches.append(f"table: {len(seq_docs)} programs "
                              f"sequentially, {len(par_docs)} with "
                              f"--jobs {jobs}")
    return mismatches


def _explain(name: str, jobs: int, seq_doc, par_doc) -> List[str]:
    """Pinpoint which normalized top-level/subgoal fields diverged."""
    seq_n, par_n = normalize(seq_doc), normalize(par_doc)
    if seq_n == par_n:
        return []
    problems: List[str] = []
    for key in sorted(set(seq_n) | set(par_n)):
        if seq_n.get(key) != par_n.get(key):
            if key == "subgoals":
                for i, (a, b) in enumerate(zip(seq_n[key], par_n[key])):
                    if a != b:
                        fields = [f for f in sorted(set(a) | set(b))
                                  if a.get(f) != b.get(f)]
                        problems.append(
                            f"{name} -j {jobs}: subgoal {i} differs "
                            f"in {fields}")
            else:
                problems.append(f"{name} -j {jobs}: {key!r} differs: "
                                f"{seq_n.get(key)!r} != "
                                f"{par_n.get(key)!r}")
    return problems or [f"{name} -j {jobs}: documents differ"]


def diff_corpus(names: Optional[Sequence[str]] = None,
                jobs_list: Sequence[int] = (2, 4)) -> List[str]:
    """The full differential sweep: every program, every jobs level,
    verify-granularity and table-granularity."""
    names = list(names or ALL_PROGRAMS)
    mismatches: List[str] = []
    for jobs in jobs_list:
        for name in names:
            mismatches.extend(diff_verify(name, jobs))
        mismatches.extend(diff_table(names, jobs))
    return mismatches


# ----------------------------------------------------------------------
# Feature mode: optimisations on (+cache cold/warm) vs off
# ----------------------------------------------------------------------

def verdict_view(document):
    """The verdict-level projection used for feature comparisons.

    Slicing, ordering and caching may change automaton sizes, spans,
    timings and which of several same-length counterexamples the BFS
    reports first — but never verdicts, outcomes, or whether a
    counterexample exists.
    """
    if document is None:
        return None
    return {
        "program": document.get("program"),
        "valid": document.get("valid"),
        "outcome": document.get("outcome"),
        "interrupted": document.get("interrupted"),
        "subgoals": [
            {"description": subgoal.get("description"),
             "valid": subgoal.get("valid"),
             "outcome": subgoal.get("outcome"),
             "has_counterexample":
                 subgoal.get("counterexample") is not None}
            for subgoal in document.get("subgoals", ())],
    }


def diff_features(name: str, jobs: int, cache_dir: str) -> List[str]:
    """Compare optimisations-off against optimisations-on with a cold
    then a warm verdict cache, at the given parallelism."""
    jobs_args = [] if jobs <= 1 else ["-j", str(jobs)]
    off_code, off_doc, _ = run_cli_json(
        ["verify", name, "--json", "--no-slice", "--no-order",
         *jobs_args])
    cold = run_cli_json(["verify", name, "--json",
                         "--cache-dir", cache_dir, *jobs_args])
    warm = run_cli_json(["verify", name, "--json",
                         "--cache-dir", cache_dir, *jobs_args])
    assert_no_orphans()
    mismatches: List[str] = []
    reference = verdict_view(off_doc)
    for label, (code, document, _) in (("cold-cache", cold),
                                       ("warm-cache", warm)):
        if code != off_code:
            mismatches.append(f"{name} {label} -j {jobs}: exit code "
                              f"{code} != {off_code} (features off)")
        if verdict_view(document) != reference:
            mismatches.append(f"{name} {label} -j {jobs}: verdicts "
                              f"differ from the features-off run")
    warm_doc = warm[1]
    if warm_doc is not None:
        subgoals = warm_doc.get("subgoals", ())
        hits = warm_doc.get("cache_hits", 0)
        if hits != len(subgoals):
            mismatches.append(f"{name} warm-cache -j {jobs}: only "
                              f"{hits} of {len(subgoals)} subgoals "
                              f"answered from the cache")
    return mismatches


def diff_features_corpus(names: Optional[Sequence[str]] = None,
                         jobs_list: Sequence[int] = (1, 2)
                         ) -> List[str]:
    """The feature sweep: every program, sequential and parallel,
    sharing one cache directory (fingerprints disambiguate)."""
    import tempfile

    names = list(names or ALL_PROGRAMS)
    mismatches: List[str] = []
    with tempfile.TemporaryDirectory(prefix="diffcheck-cache-") as root:
        for jobs in jobs_list:
            cache_dir = os.path.join(root, f"j{jobs}")
            for name in names:
                mismatches.extend(diff_features(name, jobs, cache_dir))
    return mismatches


# ----------------------------------------------------------------------
# Stress mode: faults + tight budgets under parallelism
# ----------------------------------------------------------------------

def stress(names: Optional[Sequence[str]] = None, jobs: int = 2,
           seed: int = 1997, rounds: int = 8) -> List[str]:
    """Deterministically-seeded fault/budget storm under parallelism.

    Each round picks a program and a fault plan from the seeded RNG,
    runs it with ``-j jobs --timeout 1``, and asserts the run stayed
    structured: a documented exit code, no raw traceback on stderr,
    only structured outcomes in the report, and no orphaned workers.
    """
    names = list(names or ALL_PROGRAMS)
    rng = random.Random(seed)
    sites = [site for site in faults.FAULT_SITES]
    kinds = [kind for kind in faults.FAULT_KINDS]
    problems: List[str] = []
    for round_index in range(rounds):
        name = rng.choice(names)
        site = rng.choice(sites)
        kind = rng.choice(kinds)
        spec = f"{site}:{kind}" if rng.random() < 0.5 \
            else f"{site}:{kind}:1"
        label = f"stress[{round_index}] {name} -j {jobs} " \
                f"REPRO_FAULTS={spec}"
        with fault_env(spec):
            code, document, err = run_cli_json(
                ["verify", name, "--json", "-j", str(jobs),
                 "--timeout", "1"])
        assert_no_orphans()
        if "Traceback" in err:
            problems.append(f"{label}: raw traceback on stderr")
        if code not in (0, 1, 3, 130):
            problems.append(f"{label}: undocumented exit code {code}")
        if document is None:
            if code != 130:
                problems.append(f"{label}: no JSON flushed (exit {code})")
            continue
        if document.get("outcome") not in STRUCTURED_OUTCOMES:
            problems.append(f"{label}: unstructured run outcome "
                            f"{document.get('outcome')!r}")
        for subgoal in document.get("subgoals", ()):
            if subgoal.get("outcome") not in STRUCTURED_OUTCOMES:
                problems.append(f"{label}: unstructured subgoal "
                                f"outcome {subgoal.get('outcome')!r}")
    return problems


# ----------------------------------------------------------------------
# Script entry point (CI's parallel-smoke job)
# ----------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential harness: parallel verification must "
                    "match sequential verification report-for-report.")
    parser.add_argument("--jobs", type=int, nargs="+", default=[2],
                        help="worker counts to compare against "
                             "sequential [default: 2]")
    parser.add_argument("--names", nargs="*", default=None,
                        help="program subset (default: whole corpus)")
    parser.add_argument("--stress", action="store_true",
                        help="also run the seeded fault/budget storm")
    parser.add_argument("--features", action="store_true",
                        help="run the feature sweep instead: "
                             "slicing/ordering/caching on (cold and "
                             "warm cache) vs off, verdict-for-verdict")
    parser.add_argument("--seed", type=int, default=1997)
    parser.add_argument("--rounds", type=int, default=8)
    args = parser.parse_args(argv)

    count = len(ALL_PROGRAMS) if args.names is None else len(args.names)
    if args.features:
        jobs_list = sorted({1, *args.jobs})
        mismatches = diff_features_corpus(args.names,
                                          jobs_list=jobs_list)
        for line in mismatches:
            print(f"MISMATCH: {line}", file=sys.stderr)
        print(f"feature sweep: {count} programs x jobs {jobs_list}: "
              f"{'OK' if not mismatches else f'{len(mismatches)} mismatches'}")
        return 1 if mismatches else 0

    mismatches = diff_corpus(args.names, jobs_list=args.jobs)
    for line in mismatches:
        print(f"MISMATCH: {line}", file=sys.stderr)
    print(f"differential sweep: {len(ALL_PROGRAMS) if args.names is None else len(args.names)} "
          f"programs x jobs {args.jobs}: "
          f"{'OK' if not mismatches else f'{len(mismatches)} mismatches'}")
    problems: List[str] = []
    if args.stress:
        problems = stress(args.names, jobs=max(args.jobs),
                          seed=args.seed, rounds=args.rounds)
        for line in problems:
            print(f"STRESS: {line}", file=sys.stderr)
        print(f"stress mode ({args.rounds} rounds, seed {args.seed}): "
              f"{'OK' if not problems else f'{len(problems)} problems'}")
    return 1 if mismatches or problems else 0


if __name__ == "__main__":
    sys.exit(main())
