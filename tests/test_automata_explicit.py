"""Tests for explicit-alphabet automata (the oracle layer)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.explicit import Dfa, Nfa, Regex

SIGMA = ("a", "b")


def _regexes():
    leaf = st.sampled_from(SIGMA).map(Regex.symbol)
    return st.recursive(
        leaf | st.just(Regex.epsilon()),
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: t[0] + t[1]),
            st.tuples(children, children).map(lambda t: t[0] | t[1]),
            children.map(lambda r: r.star())),
        max_leaves=6)


def _language(regex, max_len):
    """Brute-force language of a regex up to a length, via its NFA."""
    import itertools
    nfa = regex.to_nfa()
    return {word for length in range(max_len + 1)
            for word in itertools.product(SIGMA, repeat=length)
            if nfa.accepts(word)}


class TestRegexConstruction:
    def test_symbol(self):
        nfa = Regex.symbol("a").to_nfa()
        assert nfa.accepts(["a"])
        assert not nfa.accepts([])
        assert not nfa.accepts(["b"])
        assert not nfa.accepts(["a", "a"])

    def test_epsilon_and_empty(self):
        assert Regex.epsilon().to_nfa().accepts([])
        assert not Regex.empty().to_nfa().accepts([])
        assert not Regex.empty().to_nfa().accepts(["a"])

    def test_concatenation(self):
        nfa = (Regex.symbol("a") + Regex.symbol("b")).to_nfa()
        assert nfa.accepts(["a", "b"])
        assert not nfa.accepts(["b", "a"])

    def test_union(self):
        nfa = (Regex.symbol("a") | Regex.symbol("b")).to_nfa()
        assert nfa.accepts(["a"]) and nfa.accepts(["b"])
        assert not nfa.accepts([])

    def test_star(self):
        nfa = Regex.symbol("a").star().to_nfa()
        assert nfa.accepts([])
        assert nfa.accepts(["a"] * 5)
        assert not nfa.accepts(["a", "b"])

    def test_plus(self):
        nfa = Regex.symbol("a").plus().to_nfa()
        assert not nfa.accepts([])
        assert nfa.accepts(["a"])
        assert nfa.accepts(["a", "a", "a"])

    def test_opt(self):
        nfa = Regex.symbol("a").opt().to_nfa()
        assert nfa.accepts([])
        assert nfa.accepts(["a"])
        assert not nfa.accepts(["a", "a"])

    def test_symbols(self):
        regex = (Regex.symbol("a") + Regex.symbol("b")).star()
        assert regex.symbols() == frozenset(SIGMA)


class TestDfaOperations:
    @pytest.fixture
    def ab_star(self):
        """(ab)* as a minimal DFA."""
        return (Regex.symbol("a") + Regex.symbol("b")).star() \
            .to_nfa().determinize().minimize()

    def test_determinize_preserves_language(self, ab_star):
        assert ab_star.accepts([])
        assert ab_star.accepts(["a", "b", "a", "b"])
        assert not ab_star.accepts(["a"])
        assert not ab_star.accepts(["b", "a"])

    def test_complement(self, ab_star):
        comp = ab_star.complement()
        assert not comp.accepts([])
        assert comp.accepts(["a"])
        assert comp.intersect(ab_star).is_empty()

    def test_union_and_difference(self, ab_star):
        just_a = Regex.symbol("a").to_nfa().determinize(SIGMA)
        both = ab_star.union(just_a)
        assert both.accepts(["a"])
        assert both.accepts(["a", "b"])
        diff = both.difference(ab_star)
        assert diff.accepts(["a"])
        assert not diff.accepts(["a", "b"])

    def test_shortest_word(self, ab_star):
        nonempty = ab_star.difference(
            Regex.epsilon().to_nfa().determinize(SIGMA))
        assert nonempty.shortest_word() == ["a", "b"]

    def test_shortest_word_empty_language(self):
        dfa = Regex.empty().to_nfa().determinize(SIGMA)
        assert dfa.shortest_word() is None
        assert dfa.is_empty()

    def test_universal(self):
        sigma_star = (Regex.symbol("a") | Regex.symbol("b")).star()
        dfa = sigma_star.to_nfa().determinize(SIGMA)
        assert dfa.is_universal()

    def test_includes_and_equivalent(self, ab_star):
        twice = (Regex.symbol("a") + Regex.symbol("b")
                 + Regex.symbol("a") + Regex.symbol("b"))
        small = twice.to_nfa().determinize(SIGMA)
        assert ab_star.includes(small)
        assert not small.includes(ab_star)
        assert ab_star.equivalent(
            ab_star.minimize())

    def test_minimize_is_minimal(self, ab_star):
        # (ab)* needs exactly 3 states (start/accept, after-a, sink)
        assert ab_star.num_states == 3

    def test_words_up_to(self, ab_star):
        words = set(ab_star.words_up_to(4))
        assert words == {(), ("a", "b"), ("a", "b", "a", "b")}


@settings(max_examples=60, deadline=None)
@given(_regexes())
def test_determinization_preserves_language(regex):
    nfa = regex.to_nfa()
    dfa = nfa.determinize(SIGMA)
    import itertools
    for length in range(4):
        for word in itertools.product(SIGMA, repeat=length):
            assert nfa.accepts(word) == dfa.accepts(word)


@settings(max_examples=60, deadline=None)
@given(_regexes())
def test_minimization_preserves_language(regex):
    dfa = regex.to_nfa().determinize(SIGMA)
    mini = dfa.minimize()
    assert mini.num_states <= dfa.num_states
    assert mini.equivalent(dfa)


@settings(max_examples=40, deadline=None)
@given(_regexes(), _regexes())
def test_product_languages(left, right):
    ldfa = left.to_nfa().determinize(SIGMA)
    rdfa = right.to_nfa().determinize(SIGMA)
    lset = _language(left, 3)
    rset = _language(right, 3)
    inter = ldfa.intersect(rdfa)
    union = ldfa.union(rdfa)
    import itertools
    for length in range(4):
        for word in itertools.product(SIGMA, repeat=length):
            assert inter.accepts(word) == (word in lset and word in rset)
            assert union.accepts(word) == (word in lset or word in rset)


@settings(max_examples=40, deadline=None)
@given(_regexes())
def test_minimal_dfa_is_canonical(regex):
    """Minimising twice, or after a complement round-trip, gives the
    same number of states (Myhill-Nerode uniqueness)."""
    dfa = regex.to_nfa().determinize(SIGMA).minimize()
    again = dfa.complement().complement().minimize()
    assert again.num_states == dfa.num_states
