"""Differential tests: store-logic translation vs concrete evaluation.

For a formula phi, the automaton of ``translate(phi, I0)`` (conjoined
with ``wf_string``) must accept exactly the encodings of well-formed
stores on which the concrete evaluator says phi holds.
"""

import random

import pytest

from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.storelogic import check_formula, parse_formula
from repro.storelogic.eval import eval_formula
from repro.storelogic.translate import translate_formula
from repro.stores.encode import encode_store
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_string

from util import list_schema, random_store, store_with_lists

FORMULAS = [
    "x = nil",
    "p = q",
    "x = p",
    "p^.next = nil",
    "p^.next = q",
    "p^.next^.next = nil",
    "x<next*>p",
    "x<next+>p",
    "x<next*>nil",
    "x<next*>q & q <> nil",
    "<(List:red)?>p",
    "<(Item:blue)?>p",
    "x<next.(List:red)?.next*>p",
    "x<(next+(List:red)?)*>p",
    "<nil?>p",
    "ex g: <garb?>g",
    "ex g: <garb?>g & (all r: <garb?>r => r = g)",
    "all c, d: c<next>d => ~<garb?>d",
    "all c, q, r: (c <> nil & q<next>c & r<next>c) => q = r",
    "~<(List:red)?>p => x<next*>p",
    "x = nil <=> p = nil",
    "y^.next <> nil",
    "ex c: <(Item:blue)?>c & x<next*>c",
    "all c: x<next*>c => (c = nil | <(Item:red)?>c | <(Item:blue)?>c)",
]


@pytest.fixture(scope="module")
def schema():
    return list_schema()


@pytest.fixture(scope="module")
def stores(schema):
    """A diverse pool of well-formed stores."""
    pool = [
        store_with_lists(schema, {}),
        store_with_lists(schema, {"x": ["red"]}),
        store_with_lists(schema, {"x": ["blue"]}, {"p": ("x", 0)}),
        store_with_lists(schema, {"x": ["red", "blue", "red"]},
                         {"p": ("x", 1), "q": ("x", 2)}),
        store_with_lists(schema, {"x": ["red", "red"], "y": ["blue"]},
                         {"p": ("y", 0)}, garbage=1),
        store_with_lists(schema, {"y": ["blue", "blue"]}, garbage=2),
        store_with_lists(schema, {"x": ["red", "blue"]},
                         {"p": ("x", 1), "q": ("x", 1)}),
    ]
    rng = random.Random(7)
    pool.extend(random_store(schema, rng) for _ in range(8))
    return pool


@pytest.mark.parametrize("text", FORMULAS)
def test_translation_matches_concrete_eval(text, schema, stores):
    formula = check_formula(parse_formula(text), schema)
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state = initial_store(schema, layout)
    automaton = compiler.compile(
        F.and_(wf_string(layout), translate_formula(formula, state)))
    tracks = compiler.tracks()
    for store in stores:
        word = layout.symbols_to_word(encode_store(store), tracks)
        expected = eval_formula(formula, store)
        assert automaton.accepts(word) == expected, \
            (text, store.signature())


def test_translation_of_unknown_variable_fails(schema):
    from repro.errors import TranslationError
    from repro.storelogic.ast import SEq, TermNil, TermVar
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state = initial_store(schema, layout)
    with pytest.raises(TranslationError):
        translate_formula(SEq(TermVar("zz"), TermNil()), state)


def test_quantifier_excludes_lim_positions(schema):
    """Bound cell variables never range over lim positions: a formula
    counting cells sees exactly nil + records + garbage."""
    formula = check_formula(
        parse_formula("all c: <nil?>c | <garb?>c | "
                      "<(Item:red)?>c | <(Item:blue)?>c"), schema)
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state = initial_store(schema, layout)
    automaton = compiler.compile(
        F.and_(wf_string(layout), translate_formula(formula, state)))
    tracks = compiler.tracks()
    store = store_with_lists(schema, {"x": ["red"]}, garbage=1)
    word = layout.symbols_to_word(encode_store(store), tracks)
    assert automaton.accepts(word)
