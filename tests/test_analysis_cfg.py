"""Tests for CFG construction and the dataflow framework."""

from typing import FrozenSet, Sequence

from repro.analysis import cfg as cfg_mod
from repro.analysis.cfg import ANNOTATION, BRANCH, STMT
from repro.analysis.dataflow import Analysis, FORWARD, solve
from repro.pascal import check_program, parse_program
from repro.pascal.typed import TAssign, TIf, TNew, TWhile, VarLhs
from repro.programs import ALL_PROGRAMS


def build(name):
    program = check_program(parse_program(ALL_PROGRAMS[name]))
    return program, cfg_mod.from_program(program)


class TestConstruction:
    def test_straight_line(self):
        program, graph = build("triple")
        stmts = [n for n in graph.nodes if n.kind == STMT]
        assert len(stmts) == 3  # new, q^.next := nil, p^.next := q
        # entry -> s1 -> s2 -> s3 -> exit, one edge each
        chain = [graph.entry] + [n.index for n in stmts] + [graph.exit]
        for src, dst in zip(chain, chain[1:]):
            assert [e.dst for e in graph.successors(src)] == [dst]

    def test_if_branches_and_merge(self):
        program, graph = build("insert")
        branches = [n for n in graph.nodes if n.kind == BRANCH]
        assert len(branches) == 1
        branch = branches[0]
        out = graph.successors(branch.index)
        assert sorted(e.value for e in out) == [False, True]
        assert all(e.guard is branch.statement.cond for e in out)
        # Both arms have four statements and meet at the exit.
        preds = graph.predecessors(graph.exit)
        assert len(preds) == 2

    def test_empty_else_falls_through(self):
        program, graph = build("rotate")
        branch = next(n for n in graph.nodes if n.kind == BRANCH)
        false_edge = next(e for e in graph.successors(branch.index)
                          if not e.value)
        assert false_edge.dst == graph.exit

    def test_while_shape(self):
        program, graph = build("reverse")
        head = next(n for n in graph.nodes if n.kind == ANNOTATION)
        branch = next(n for n in graph.nodes if n.kind == BRANCH)
        assert isinstance(head.statement, TWhile)
        assert head.statement is branch.statement
        # head -> branch; branch true edge enters the body, false edge
        # leaves; the last body statement loops back to the head.
        assert [e.dst for e in graph.successors(head.index)] == \
            [branch.index]
        out = {e.value: e.dst for e in graph.successors(branch.index)}
        assert out[False] == graph.exit
        back = [e.src for e in graph.predecessors(head.index)]
        assert graph.entry in back
        assert len(back) == 2  # entry plus the loop back edge

    def test_statement_nodes_in_source_order(self):
        program, graph = build("zip")
        lines = [n.line for n in graph.statement_nodes()]
        assert lines == sorted(lines)

    def test_every_node_structurally_connected(self):
        for name in ALL_PROGRAMS:
            program, graph = build(name)
            for node in graph.nodes:
                if node.index != graph.entry:
                    assert graph.predecessors(node.index), \
                        f"{name}: node {node.index} has no predecessor"
                if node.index != graph.exit:
                    assert graph.successors(node.index), \
                        f"{name}: node {node.index} has no successor"


class _MustAssigned(Analysis[FrozenSet[str]]):
    """Toy client: variables assigned on every path to a node."""

    direction = FORWARD

    def boundary(self, graph):
        return frozenset()

    def join(self, states: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
        result = states[0]
        for state in states[1:]:
            result = result & state
        return result

    def transfer(self, node, state):
        statement = node.statement
        if isinstance(statement, (TAssign, TNew)) and \
                isinstance(statement.lhs, VarLhs):
            return state | {statement.lhs.name}
        return state


class TestSolve:
    def test_must_assigned_through_loop(self):
        # searchwf assigns p before its loop, so p is assigned on
        # every path to the exit; reverse assigns x, y, p only inside
        # the loop, which may run zero times.
        program, graph = build("searchwf")
        result = solve(graph, _MustAssigned())
        assert result.inputs[graph.exit] == frozenset({"p"})
        program, graph = build("reverse")
        result = solve(graph, _MustAssigned())
        assert result.inputs[graph.exit] == frozenset()

    def test_must_assigned_joins_branches(self):
        # insert assigns q and p in both arms of its conditional, so
        # both are must-assigned at the exit — but nothing is at the
        # start of either arm.
        program, graph = build("insert")
        result = solve(graph, _MustAssigned())
        assert result.inputs[graph.exit] == frozenset({"p", "q"})
        branch = next(n for n in graph.nodes if n.kind == BRANCH)
        then_first = next(e.dst for e in graph.successors(branch.index)
                          if e.value)
        assert result.inputs[then_first] == frozenset()

    def test_all_nodes_reachable_without_refinement(self):
        for name in ALL_PROGRAMS:
            program, graph = build(name)
            result = solve(graph, _MustAssigned())
            assert all(result.reachable(node.index)
                       for node in graph.nodes), name
