"""Integration tests: the paper's example programs (§4–§5).

These assert the headline reproduction claims: every program the paper
verifies does verify, every program the paper rejects is rejected with
the paper's counterexample (same length and shape), and the verified
behavioural properties hold.
"""

import pytest

from repro.exec.interpreter import Interpreter
from repro.pascal import check_program, parse_program
from repro.programs import (ALL_PROGRAMS, DELETE, FUMBLE, INSERT, REVERSE,
                            ROTATE, SEARCH, SWAP, SWAP_FIXED, TRIPLE, ZIP)
from repro.stores.encode import LABEL_LIM, LABEL_NIL
from repro.stores.model import NIL_ID, Store
from repro.verify import verify_source
from repro.stores.render import render_symbols

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def results():
    """Verify every paper program once, cached for the module (the
    extended corpus is covered by test_extended_corpus.py)."""
    from repro.programs import EXTENDED_PROGRAMS
    return {name: verify_source(source)
            for name, source in ALL_PROGRAMS.items()
            if name not in EXTENDED_PROGRAMS}


VERIFIED = ["reverse", "rotate", "insert", "delete", "search", "zip",
            "searchwf", "swapfix", "triple"]
REJECTED = ["fumble", "swap"]


@pytest.mark.parametrize("name", VERIFIED)
def test_paper_program_verifies(results, name):
    result = results[name]
    assert result.valid, f"{name} should verify"


@pytest.mark.parametrize("name", REJECTED)
def test_faulty_program_rejected(results, name):
    result = results[name]
    assert not result.valid, f"{name} should fail"
    assert result.counterexample is not None


class TestCounterexampleShapes:
    """§5's shortest counterexamples, up to label/bitmap tie-breaks."""

    def test_fumble_counterexample(self, results):
        ce = results["fumble"].counterexample
        # paper: [nil,{p}] [(List:red),{}] [lim,{}] [lim,{}]
        symbols = ce.symbols
        assert len(symbols) == 4
        assert symbols[0].label == LABEL_NIL
        assert symbols[1].label[0] == "rec"
        assert symbols[2].label == symbols[3].label == LABEL_LIM
        assert "x" in symbols[1].bitmap          # singleton list x
        assert "y" in symbols[0].bitmap          # precondition y = nil
        assert "cyclic" in ce.explanation

    def test_swap_counterexample(self, results):
        ce = results["swap"].counterexample
        # paper: [nil,{p}] [(List:red),{}] [lim,{}] — length one list
        symbols = ce.symbols
        assert len(symbols) == 3
        assert symbols[0].label == LABEL_NIL
        assert symbols[1].label[0] == "rec"
        assert symbols[2].label == LABEL_LIM
        assert "x" in symbols[1].bitmap
        assert "dereference of nil" in ce.explanation

    def test_swap_simulation_shows_the_failing_statement(self, results):
        trace = results["swap"].counterexample.trace
        assert trace is not None
        assert trace.failure is not None
        assert "p^.next := x^.next" in trace.render()


class TestSubgoalStructure:
    def test_reverse_subgoals(self, results):
        descriptions = [r.description for r in results["reverse"].results]
        assert len(descriptions) == 3

    def test_triple_is_single_subgoal(self, results):
        assert len(results["triple"].results) == 1

    def test_statistics_populated(self, results):
        for name in VERIFIED:
            result = results[name]
            assert result.max_states > 0
            assert result.max_nodes > 0
            assert result.formula_size > 0
            assert result.seconds > 0


class TestVerifiedBehaviour:
    """Concrete spot-checks of what verification guarantees."""

    def _run(self, source, build):
        program = check_program(parse_program(source))
        store = Store(program.schema)
        build(store)
        Interpreter(program).run(store)
        assert store.is_well_formed(), store.violations()
        return store

    def test_reverse_reverses(self):
        store = self._run(
            REVERSE,
            lambda s: s.make_list("x", ["red", "blue", "blue"]))
        variants = [store.cell(i).variant for i in store.list_of("y")]
        assert variants == ["blue", "blue", "red"]

    def test_rotate_rotates(self):
        def build(store):
            ids = store.make_list("x", ["red", "blue", "red"])
            store.set_var("p", ids[-1])
        store = self._run(ROTATE, build)
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["blue", "red", "red"]

    def test_insert_adds_red_after_p(self):
        def build(store):
            ids = store.make_list("x", ["blue", "blue"])
            store.set_var("p", ids[0])
            store.add_garbage()
        store = self._run(INSERT, build)
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["blue", "red", "blue"]

    def test_insert_into_empty_list(self):
        def build(store):
            store.add_garbage()
        store = self._run(INSERT, build)
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["red"]

    def test_delete_frees_exactly_one(self):
        def build(store):
            ids = store.make_list("x", ["red", "blue", "red"])
            store.set_var("p", ids[0])
        store = self._run(DELETE, build)
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["red", "red"]
        assert len(store.garbage_ids()) == 1

    def test_search_finds_first_blue(self):
        def build(store):
            store.make_list("x", ["red", "red", "blue", "blue"])
        store = self._run(SEARCH, build)
        assert store.cell(store.var("p")).variant == "blue"
        assert store.var("p") == store.list_of("x")[2]

    def test_search_returns_nil_when_no_blue(self):
        store = self._run(SEARCH,
                          lambda s: s.make_list("x", ["red", "red"]))
        assert store.var("p") == NIL_ID

    def test_zip_shuffles(self):
        def build(store):
            store.make_list("x", ["red", "red", "red"])
            store.make_list("y", ["blue"])
        store = self._run(ZIP, build)
        variants = [store.cell(i).variant for i in store.list_of("z")]
        assert variants == ["red", "blue", "red", "red"]
        assert store.var("x") == NIL_ID
        assert store.var("y") == NIL_ID

    def test_triple_appends_blue(self):
        def build(store):
            ids = store.make_list("x", ["red"])
            store.set_var("p", ids[0])
            store.add_garbage()
        store = self._run(TRIPLE, build)
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["red", "blue"]

    def test_swap_fixed_swaps(self):
        store = self._run(
            SWAP_FIXED,
            lambda s: s.make_list("x", ["red", "blue", "red"]))
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["blue", "red", "red"]

    def test_fumble_builds_cycle_concretely(self):
        program = check_program(parse_program(FUMBLE))
        store = Store(program.schema)
        store.make_list("x", ["red"])
        Interpreter(program).run(store)
        assert not store.is_well_formed()

    def test_swap_crashes_on_singleton(self):
        from repro.errors import ExecutionError
        program = check_program(parse_program(SWAP))
        store = Store(program.schema)
        store.make_list("x", ["red"])
        with pytest.raises(ExecutionError):
            Interpreter(program).run(store)
