"""Randomized soundness checks for the verdict-preserving passes.

Generates small random pointer programs (seeded, so runs are
deterministic) and asserts the engine decides each one identically
with statement slicing on vs off and with dependency ordering on vs
declaration order.  Counterexample *presence* must agree too; the
ordering pass may legally change which same-length witness the BFS
reports first, so the witness itself is not compared.
"""

import random

import pytest

from repro.pascal import check_program, parse_program
from repro.verify.engine import Verifier

HEADER = """\
program fuzz;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
"""

#: Straight-line statements over the header's variables: pure copies
#: (sliceable), dereferences and heap writes (failable), allocation.
_STATEMENTS = [
    "p := nil",
    "q := nil",
    "p := x",
    "q := x",
    "p := q",
    "q := p",
    "p := x^.next",
    "q := p^.next",
    "p^.next := nil",
    "p^.next := q",
    "new(p, red)",
    "new(q, blue)",
]

_GUARDS = ["p = nil", "p <> nil", "p = q", "x <> nil"]

_POSTCONDITIONS = [
    None,
    "{p = nil}",
    "{p <> nil}",
    "{x = x}",
    "{x<next*>p}",
    "{x<next*>q & q <> nil}",
]


def generate(rng: random.Random) -> str:
    lines = []
    for _ in range(rng.randrange(2, 7)):
        roll = rng.random()
        if roll < 0.2:
            guard = rng.choice(_GUARDS)
            then = rng.choice(_STATEMENTS)
            other = rng.choice(_STATEMENTS)
            lines.append(f"  if {guard} then {then} else {other};")
        elif roll < 0.3:
            lines.append("  while p <> nil do p := p^.next;")
        else:
            lines.append(f"  {rng.choice(_STATEMENTS)};")
    lines[-1] = lines[-1].rstrip(";")
    postcondition = rng.choice(_POSTCONDITIONS)
    if postcondition is not None:
        lines.append(f"  {postcondition}")
    return HEADER + "\n".join(lines) + "\nend.\n"


def verdict(program, **kwargs):
    result = Verifier(program, **kwargs).verify()
    return (result.valid, result.outcome,
            [(subgoal.outcome, subgoal.counterexample is not None)
             for subgoal in result.results])


@pytest.mark.parametrize("seed", range(8))
def test_slicing_and_ordering_preserve_verdicts(seed):
    rng = random.Random(1997 + seed)
    source = generate(rng)
    program = check_program(parse_program(source))
    everything_on = verdict(program)
    all_off = verdict(program, slice=False, order=False)
    assert everything_on == all_off, source
    sliced_only = verdict(program, order=False)
    assert sliced_only == all_off, source


@pytest.mark.parametrize("seed", range(8, 12))
def test_cache_replay_preserves_verdicts(seed, tmp_path):
    rng = random.Random(1997 + seed)
    source = generate(rng)
    program = check_program(parse_program(source))
    cold = verdict(program, cache_dir=str(tmp_path))
    warm_result = Verifier(program, cache_dir=str(tmp_path)).verify()
    warm = (warm_result.valid, warm_result.outcome,
            [(subgoal.outcome, subgoal.counterexample is not None)
             for subgoal in warm_result.results])
    assert warm == cold, source
    assert warm_result.cache_hits == len(warm_result.results), source
