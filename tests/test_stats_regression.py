"""Regression bounds on verification statistics.

The §6-style statistics (largest automaton, BDD nodes, subgoal count)
are deterministic for a fixed implementation; these tests pin them
inside generous brackets so an accidental regression in minimisation,
formula sharing, or the restriction technique shows up as a test
failure rather than a silent 100x slowdown.
"""

import pytest

from repro.programs import REVERSE, SEARCH, TRIPLE
from repro.verify import verify_source

pytestmark = pytest.mark.slow

#: name -> (source, max states bracket, max nodes bracket, subgoals)
BRACKETS = {
    "reverse": (REVERSE, (50, 1_000), (100, 5_000), 3),
    "search": (SEARCH, (50, 1_000), (100, 5_000), 3),
    "triple": (TRIPLE, (100, 3_000), (500, 15_000), 1),
}


@pytest.mark.parametrize("name", sorted(BRACKETS))
def test_statistics_within_brackets(name):
    source, states_bracket, nodes_bracket, subgoals = BRACKETS[name]
    result = verify_source(source, simulate=False)
    assert result.valid
    assert len(result.results) == subgoals
    low, high = states_bracket
    assert low <= result.max_states <= high, (
        f"{name}: {result.max_states} states left the expected "
        f"bracket {states_bracket} — did minimisation or the "
        f"first-order restriction regress?")
    low, high = nodes_bracket
    assert low <= result.max_nodes <= high, (
        f"{name}: {result.max_nodes} BDD nodes left the expected "
        f"bracket {nodes_bracket}")


def test_statistics_are_deterministic():
    """Two runs of the same verification produce identical counts
    (the whole pipeline is deterministic, BFS tie-breaks included)."""
    first = verify_source(REVERSE, simulate=False)
    second = verify_source(REVERSE, simulate=False)
    assert first.max_states == second.max_states
    assert first.max_nodes == second.max_nodes
    assert first.formula_size == second.formula_size


def test_formula_sharing_keeps_sizes_linear():
    """The transduction shares subformulas: reverse's whole
    verification formula stays in the low thousands of nodes."""
    result = verify_source(REVERSE, simulate=False)
    assert result.formula_size < 5_000
