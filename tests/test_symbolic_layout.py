"""Tests for the track layout and the symbolic store's basic shape."""

import pytest

from repro.errors import StoreError
from repro.mso.ast import VarKind
from repro.mso.compile import Compiler
from repro.stores.encode import (LABEL_GARB, LABEL_LIM, LABEL_NIL, Symbol,
                                 record_label)
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store, memo1, memo2, fresh_pos

from util import list_schema, terminator_schema


@pytest.fixture
def schema():
    return list_schema()


@pytest.fixture
def layout(schema):
    return TrackLayout(schema)


class TestLayout:
    def test_labels_in_canonical_order(self, layout):
        assert layout.labels[:3] == [LABEL_NIL, LABEL_LIM, LABEL_GARB]
        assert layout.record_labels() == [record_label("Item", "red"),
                                          record_label("Item", "blue")]

    def test_free_vars_order_stable(self, layout, schema):
        names = [v.name for v in layout.free_vars()]
        assert names == ["Lnil", "Llim", "Lgarb", "L(Item:red)",
                         "L(Item:blue)", "$x", "$y", "$p", "$q"]
        assert all(v.kind is VarKind.SECOND for v in layout.free_vars())

    def test_register_allocates_first_tracks(self, layout):
        compiler = Compiler()
        layout.register(compiler)
        tracks = compiler.tracks()
        assert sorted(tracks.values()) == list(range(len(tracks)))

    def test_labels_with_field(self, layout):
        assert set(layout.labels_with_field()) == {
            record_label("Item", "red"), record_label("Item", "blue")}
        assert layout.labels_with_field("next") == \
            layout.labels_with_field()
        assert layout.labels_with_field("prev") == []
        assert layout.labels_without_field() == []

    def test_labels_without_field_terminator(self):
        layout = TrackLayout(terminator_schema())
        assert layout.labels_without_field() == \
            [record_label("Node", "leaf")]

    def test_labels_of_type(self, layout):
        assert layout.labels_of_type("Item") == layout.record_labels()
        assert layout.labels_of_type("Other") == []


class TestWordConversion:
    def test_roundtrip(self, layout):
        compiler = Compiler()
        layout.register(compiler)
        symbols = [Symbol(LABEL_NIL, frozenset({"y"})),
                   Symbol(record_label("Item", "red"),
                          frozenset({"x", "p"})),
                   Symbol(LABEL_LIM, frozenset()),
                   Symbol(LABEL_GARB, frozenset())]
        word = layout.symbols_to_word(symbols, compiler.tracks())
        back = layout.word_to_symbols(word, compiler.tracks())
        assert back == symbols

    def test_missing_tracks_read_as_false(self, layout):
        compiler = Compiler()
        layout.register(compiler)
        tracks = compiler.tracks()
        nil_track = tracks[layout.label_vars[LABEL_NIL]]
        symbols = layout.word_to_symbols([{nil_track: True}], tracks)
        assert symbols == [Symbol(LABEL_NIL, frozenset())]

    def test_multiple_labels_rejected(self, layout):
        compiler = Compiler()
        layout.register(compiler)
        tracks = compiler.tracks()
        assignment = {tracks[layout.label_vars[LABEL_NIL]]: True,
                      tracks[layout.label_vars[LABEL_LIM]]: True}
        with pytest.raises(StoreError):
            layout.word_to_symbols([assignment], tracks)

    def test_no_label_rejected(self, layout):
        compiler = Compiler()
        layout.register(compiler)
        with pytest.raises(StoreError):
            layout.word_to_symbols([{}], compiler.tracks())


class TestSymbolicStoreHelpers:
    def test_memo1_caches_per_var(self):
        calls = []

        def build(p):
            calls.append(p)
            return p

        fn = memo1(build)
        a, b = fresh_pos("a"), fresh_pos("b")
        assert fn(a) is fn(a)
        fn(b)
        assert calls == [a, b]

    def test_memo2_caches_per_pair(self):
        calls = []

        def build(p, q):
            calls.append((p, q))
            return (p, q)

        fn = memo2(build)
        a, b = fresh_pos("a"), fresh_pos("b")
        assert fn(a, b) is fn(a, b)
        assert fn(b, a) is not None
        assert len(calls) == 2

    def test_initial_store_components(self, schema, layout):
        state = initial_store(schema, layout)
        assert set(state.var_pos) == {"x", "y", "p", "q"}
        assert set(state.label_of) == set(layout.record_labels())
        p = fresh_pos("t")
        # derived predicates build without error and are cached
        assert state.is_record(p) is state.is_record(p)
        assert state.is_cell(p) is state.is_cell(p)
        assert state.rec_of_type("Item")(p) is not None
        assert state.has_field("next")(p) is not None
        q = fresh_pos("t")
        assert state.deref("next")(p, q) is state.deref("next")(p, q)
        assert state.first_garbage(p) is not None
        assert state.some_garbage() is not None
        assert state.deref_defined("next")(p) is not None

    def test_updated_shares_unchanged(self, schema, layout):
        state = initial_store(schema, layout)
        new_state = state.updated(garb=state.garb)
        assert new_state.next_to is state.next_to
        assert new_state is not state

    def test_generations_unique_and_monotonic(self, schema, layout):
        # Stores carry a process-unique generation so caches keyed on
        # store identity (the verifier's guard cache) survive id()
        # reuse after garbage collection.
        state = initial_store(schema, layout)
        copy = state.updated(garb=state.garb)
        later = initial_store(schema, layout)
        assert state.generation != copy.generation
        assert copy.generation < later.generation
