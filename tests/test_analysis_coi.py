"""Tests for the cone-of-influence pass and its use by the verifier."""

from repro.analysis.coi import cone_of_influence, guard_vars
from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS
from repro.verify.engine import Verifier


def typed(name):
    return check_program(parse_program(ALL_PROGRAMS[name]))


def subgoal_layouts(name):
    """description -> kept variable names, per subgoal (ordering off,
    so membership checks see declaration order)."""
    verifier = Verifier(typed(name), order=False)
    schema = verifier.program.schema
    return {subgoal.description:
            verifier._plan_subgoal(subgoal, verifier.reduce,
                                   verifier.slice, False)
                    .layout(schema).var_names()
            for subgoal in verifier.collect_subgoals()}


class TestConeOfInfluence:
    def test_guard_vars(self):
        program = typed("search")
        loop = program.body[1]
        assert guard_vars(loop.cond) == frozenset({"p"})

    def test_data_vars_always_kept(self):
        program = typed("reverse")
        keep = cone_of_influence((), frozenset(), program.schema)
        assert keep == frozenset({"x", "y"})

    def test_swap_body_needs_only_x(self):
        # p is assigned before every read, so only the data variable
        # feeds the (empty) obligations.
        program = typed("swap")
        keep = cone_of_influence(tuple(program.body), frozenset(),
                                 program.schema)
        assert keep == frozenset({"x"})

    def test_assignment_chain_is_followed(self):
        # In reverse's loop body, the seed x is reached through the
        # intermediate p := x^.next; x := p chain.
        program = typed("reverse")
        body = program.body[0].body
        keep = cone_of_influence(body, frozenset({"x"}),
                                 program.schema)
        assert keep == frozenset({"x", "y"})

    def test_dereference_base_always_relevant(self):
        # Even with no seeds, v := base^.next keeps base: the
        # dereference can fail and the error outcome is checked.
        program = typed("append")
        loop = program.body[1]
        keep = cone_of_influence(loop.body, frozenset(),
                                 program.schema)
        assert "p" in keep

    def test_assume_seeds_survive_kills(self):
        # p is assigned before every read in swap's body, so the
        # backward pass alone would drop it — but an assume formula
        # reads it from the *initial* store, so its track stays.
        program = typed("swap")
        keep = cone_of_influence(tuple(program.body), frozenset(),
                                 program.schema,
                                 assume_seeds=frozenset({"p"}))
        assert keep == frozenset({"x", "p"})

    def test_dispose_keeps_everything(self):
        # delete frees cells; a dangling pointer is only caught by the
        # dropped variable's own well-formedness conjunct.
        program = typed("delete")
        keep = cone_of_influence(tuple(program.body), frozenset(),
                                 program.schema)
        assert keep == frozenset(program.schema.all_vars())


class TestVerifierLayouts:
    def test_reverse_drops_p_in_every_subgoal(self):
        for description, kept in subgoal_layouts("reverse").items():
            assert kept == ["x", "y"], description

    def test_delete_keeps_everything(self):
        for description, kept in subgoal_layouts("delete").items():
            assert kept == ["x", "p", "q"], description

    def test_zip_drops_per_subgoal(self):
        layouts = subgoal_layouts("zip")
        entry = layouts["loop entry (line 13)"]
        assert entry == ["x", "y", "z"]  # p assigned, t dead here
        post = layouts["postcondition"]
        assert post == ["x", "y", "z", "p"]  # invariant mentions p
        preservation = layouts["invariant preservation (line 13)"]
        assert preservation == ["x", "y", "z", "p"]  # t still dropped

    def test_no_reduce_keeps_everything(self):
        verifier = Verifier(typed("reverse"), reduce=False)
        schema = verifier.program.schema
        for subgoal in verifier.collect_subgoals():
            plan = verifier._plan_subgoal(subgoal, False, False, False)
            layout = plan.layout(schema)
            assert layout.var_names() == ["x", "y", "p"]
            assert layout.dropped_vars() == []
