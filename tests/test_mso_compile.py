"""Differential tests: the M2L compiler against brute-force semantics.

Every automaton produced by the compiler is compared with the direct
finite-model evaluation of :mod:`repro.mso.interp` over all strings up
to a bound and all assignments of the free variables.
"""

import itertools

import pytest

from repro.mso import ast
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.mso.interp import evaluate, word_for


def assert_matches_bruteforce(formula, max_n=4):
    compiler = Compiler()
    dfa = compiler.compile(formula)
    tracks = compiler.tracks()
    free = sorted(formula.free_vars(), key=lambda v: v.name)
    for n in range(max_n + 1):
        for env in _assignments(free, n):
            expected = evaluate(formula, n, env)
            got = dfa.accepts(word_for(n, env, tracks))
            assert expected == got, (str(formula), n, env)
    return compiler


def _assignments(free, n):
    def go(rest, env):
        if not rest:
            yield dict(env)
            return
        var, tail = rest[0], rest[1:]
        if var.kind is ast.VarKind.FIRST:
            for position in range(n):
                env[var] = position
                yield from go(tail, env)
            env.pop(var, None)
        else:
            for size in range(n + 1):
                for combo in itertools.combinations(range(n), size):
                    env[var] = frozenset(combo)
                    yield from go(tail, env)
            env.pop(var, None)

    yield from go(free, {})


x = ast.Var.first("x")
y = ast.Var.first("y")
z = ast.Var.first("z")
X = ast.Var.second("X")
Y = ast.Var.second("Y")
Z = ast.Var.second("Z")


ATOMS = [
    F.sub(X, Y),
    F.mem(x, X),
    F.eq_set(X, Y),
    F.eq_pos(x, y),
    F.less(x, y),
    F.leq(x, y),
    F.succ(x, y),
    F.first(x),
    F.last(x),
    F.empty(X),
    F.singleton(X),
]


@pytest.mark.parametrize("formula", ATOMS, ids=[str(a) for a in ATOMS])
def test_atoms(formula):
    assert_matches_bruteforce(formula)


BOOLEAN = [
    F.and_(F.mem(x, X), F.not_(F.mem(x, Y))),
    F.or_(F.first(x), F.last(x)),
    F.implies(F.less(x, y), F.not_(F.eq_pos(x, y))),
    F.iff(F.mem(x, X), F.mem(x, Y)),
    F.not_(F.sub(X, Y)),
    F.not_(F.less(x, y)),
]


@pytest.mark.parametrize("formula", BOOLEAN, ids=[str(b) for b in BOOLEAN])
def test_boolean_combinations(formula):
    assert_matches_bruteforce(formula)


def test_ex1_membership():
    r = ast.Var.first("r")
    assert_matches_bruteforce(ast.Ex1(r, F.mem(r, X)))


def test_all1_membership():
    r = ast.Var.first("r")
    assert_matches_bruteforce(ast.All1(r, F.mem(r, X)))


def test_ex2_superset():
    S = ast.Var.second("S")
    assert_matches_bruteforce(ast.Ex2(S, F.and_(F.sub(X, S),
                                                F.not_(F.eq_set(X, S)))),
                              max_n=3)


def test_all2_trivial():
    S = ast.Var.second("S")
    assert_matches_bruteforce(ast.All2(S, F.sub(X, X)), max_n=3)


def test_nested_quantifiers():
    a, b = ast.Var.first("a"), ast.Var.first("b")
    # every member of X has a successor in X
    formula = ast.All1(a, F.implies(
        F.mem(a, X),
        ast.Ex1(b, F.and_(F.succ(a, b), F.mem(b, X)))))
    assert_matches_bruteforce(formula, max_n=4)


def test_transitive_closure_pattern():
    """The second-order reachability idiom used by routing stars."""
    S = ast.Var.second("S")
    a, b = ast.Var.first("a"), ast.Var.first("b")
    closed = ast.All1(a, ast.All1(b, F.implies(
        F.and_(F.mem(a, S), F.succ(a, b)), F.mem(b, S))))
    reach = ast.All2(S, F.implies(F.and_(F.mem(x, S), closed),
                                  F.mem(y, S)))
    # reach == x <= y over positions
    compiler = Compiler()
    dfa = compiler.compile(reach)
    tracks = compiler.tracks()
    for n in range(1, 5):
        for px in range(n):
            for py in range(n):
                word = word_for(n, {x: px, y: py}, tracks)
                assert dfa.accepts(word) == (px <= py)


class TestValidity:
    def test_transitivity_valid(self):
        f = F.implies(F.and_(F.less(x, y), F.less(y, z)), F.less(x, z))
        assert Compiler().is_valid(f)

    def test_antisymmetry_valid(self):
        f = F.implies(F.less(x, y), F.not_(F.less(y, x)))
        assert Compiler().is_valid(f)

    def test_invalid_formula(self):
        assert not Compiler().is_valid(F.less(x, y))

    def test_induction_principle(self):
        """0 in X and X closed under successor imply last in X."""
        a, b, first, final = (ast.Var.first(n)
                              for n in ("a", "b", "fst", "lst"))
        closed = ast.All1(a, ast.All1(b, F.implies(
            F.and_(F.mem(a, X), F.succ(a, b)), F.mem(b, X))))
        zero_in = ast.Ex1(first, F.and_(F.first(first), F.mem(first, X)))
        last_in = ast.Ex1(final, F.and_(F.last(final), F.mem(final, X)))
        assert Compiler().is_valid(
            F.implies(F.and_(zero_in, closed), last_in))

    def test_empty_string_counts(self):
        """ex1 p: true is not valid — the empty string has no
        positions."""
        r = ast.Var.first("r")
        assert not Compiler().is_valid(ast.Ex1(r, ast.TRUE))


class TestCompilerInternals:
    def test_memoisation_on_shared_nodes(self):
        atom = F.mem(x, X)
        f = ast.And(atom, ast.And(atom, atom))
        compiler = Compiler()
        compiler.compile(f)
        # the shared atom compiles once: 1 atom + 2 Ands + top fixups
        assert compiler.stats.compiled_nodes <= 4

    def test_stats_recorded(self):
        compiler = Compiler()
        compiler.compile(F.and_(F.mem(x, X), F.mem(y, Y)))
        assert compiler.stats.max_states >= 2
        assert compiler.stats.products >= 1
        assert compiler.stats.minimizations >= 1

    def test_stats_merge(self):
        from repro.mso.compile import CompilationStats
        a = CompilationStats(max_states=5, max_nodes=7, products=1)
        b = CompilationStats(max_states=3, max_nodes=9, projections=2)
        a.merge(b)
        assert a.max_states == 5 and a.max_nodes == 9
        assert a.products == 1 and a.projections == 2

    def test_track_allocation_is_stable(self):
        compiler = Compiler()
        t1 = compiler.track(x)
        t2 = compiler.track(X)
        assert compiler.track(x) == t1
        assert t1 != t2
        assert compiler.tracks() == {x: t1, X: t2}

    def test_minimize_during_off_still_correct(self):
        f = F.and_(F.mem(x, X), F.not_(F.mem(x, Y)))
        fast = Compiler(minimize_during=False)
        dfa = fast.compile(f)
        slow = Compiler()
        reference = slow.compile(f)
        # languages agree on sample words even if sizes differ
        for n in range(4):
            for env in _assignments(sorted(f.free_vars(),
                                           key=lambda v: v.name), n):
                word_a = word_for(n, env, fast.tracks())
                word_b = word_for(n, env, slow.tracks())
                assert dfa.accepts(word_a) == reference.accepts(word_b)
