"""Tests for the Pascal parser."""

import pytest

from repro.errors import ParseError
from repro.pascal import ast, parse_program

from util import wrap_program

TYPES = """
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
"""


def parse_body(body, pre="", post=""):
    return parse_program(wrap_program(body, pre=pre, post=post))


class TestDeclarations:
    def test_enum(self):
        program = parse_program(
            f"program t; {TYPES} begin end.")
        assert program.enums == [ast.EnumDecl("Color", ("red", "blue"))]

    def test_pointer_type(self):
        program = parse_program(f"program t; {TYPES} begin end.")
        assert program.pointers == [ast.PointerDecl("List", "Item")]

    def test_record_with_shared_arm(self):
        program = parse_program(f"program t; {TYPES} begin end.")
        record = program.records[0]
        assert record.name == "Item"
        assert record.tag_field == "tag"
        assert record.tag_type == "Color"
        assert record.arms[0].tags == ("red", "blue")
        assert record.arms[0].fields == (ast.FieldDecl("next", "List"),)

    def test_record_with_multiple_arms_and_empty_fields(self):
        source = """
        program t;
        type
          Kind = (cons, leaf);
          P = ^Node;
          Node = record case tag: Kind of
            cons: (next: P);
            leaf: ()
          end;
        begin end.
        """
        program = parse_program(source)
        record = program.records[0]
        assert len(record.arms) == 2
        assert record.arms[1].fields == ()

    def test_var_sections_with_classification(self):
        program = parse_program(f"""
        program t; {TYPES}
        {{data}} var x, y: List;
        {{pointer}} var p: List;
        begin end.
        """)
        assert program.var_decls[0].names == ("x", "y")
        assert program.var_decls[0].classification == "data"
        assert program.var_decls[1].classification == "pointer"

    def test_unannotated_var_section(self):
        program = parse_program(f"""
        program t; {TYPES}
        var x: List;
        begin end.
        """)
        assert program.var_decls[0].classification is None

    def test_bad_classification(self):
        with pytest.raises(ParseError):
            parse_program(f"""
            program t; {TYPES}
            {{weird}} var x: List;
            begin end.
            """)

    def test_var_continuation_lines(self):
        program = parse_program(f"""
        program t; {TYPES}
        {{data}} var x: List;
                     y: List;
        begin end.
        """)
        assert len(program.var_decls) == 2
        assert program.var_decls[1].classification == "data"


class TestStatements:
    def test_assignment(self):
        program = parse_body("  x := p")
        assert program.body == [ast.Assign(ast.Path("x"), ast.Path("p"),
                                           program.body[0].line)]

    def test_assignment_nil(self):
        program = parse_body("  x := nil")
        assert isinstance(program.body[0].rhs, ast.NilExpr)

    def test_traversal_paths(self):
        program = parse_body("  p^.next^.next := q^.next")
        assign = program.body[0]
        assert assign.lhs == ast.Path("p", ("next", "next"))
        assert assign.rhs == ast.Path("q", ("next",))

    def test_new_and_dispose(self):
        program = parse_body("  new(p, red);\n  dispose(q, blue)")
        assert program.body[0] == ast.New(ast.Path("p"), "red",
                                          program.body[0].line)
        assert program.body[1] == ast.Dispose(ast.Path("q"), "blue",
                                              program.body[1].line)

    def test_new_with_field_target(self):
        program = parse_body("  new(p^.next, red)")
        assert program.body[0].lhs == ast.Path("p", ("next",))

    def test_blocks_flatten(self):
        program = parse_body("  begin x := nil; y := nil end")
        assert len(program.body) == 2

    def test_if_then(self):
        program = parse_body("  if x = nil then x := p")
        statement = program.body[0]
        assert isinstance(statement, ast.If)
        assert statement.else_body == ()

    def test_if_then_else(self):
        program = parse_body(
            "  if x = nil then x := p else begin y := p; x := nil end")
        statement = program.body[0]
        assert len(statement.then_body) == 1
        assert len(statement.else_body) == 2

    def test_dangling_else_binds_inner(self):
        program = parse_body(
            "  if x = nil then if y = nil then x := p else y := p")
        outer = program.body[0]
        assert outer.else_body == ()
        inner = outer.then_body[0]
        assert len(inner.else_body) == 1

    def test_while_with_invariant(self):
        program = parse_body(
            "  while x <> nil do {x = x} x := x^.next")
        loop = program.body[0]
        assert isinstance(loop, ast.While)
        assert loop.invariant.text == "x = x"
        assert len(loop.body) == 1

    def test_while_without_invariant(self):
        program = parse_body("  while x <> nil do x := x^.next")
        assert program.body[0].invariant is None

    def test_empty_statements_allowed(self):
        program = parse_body("  x := nil;;\n  ;y := nil;")
        assert len(program.body) == 2

    def test_cut_point_assertion(self):
        program = parse_body("  x := nil\n  {x = nil}\n  y := nil")
        assert isinstance(program.body[1], ast.AssertStmt)
        assert program.body[1].annotation.text == "x = nil"


class TestGuards:
    def test_precedence_and_or_not(self):
        program = parse_body(
            "  if not x = nil and y = nil or p = q then x := nil")
        guard = program.body[0].cond
        # or at top, and below, not innermost
        assert isinstance(guard, ast.BoolOp) and guard.op == "or"
        assert isinstance(guard.left, ast.BoolOp) and \
            guard.left.op == "and"
        assert isinstance(guard.left.left, ast.BoolNot)

    def test_parenthesised_guard(self):
        program = parse_body(
            "  if x = nil and (y = nil or p = q) then x := nil")
        guard = program.body[0].cond
        assert guard.op == "and"
        assert guard.right.op == "or"

    def test_variant_test_shape(self):
        program = parse_body("  if p^.tag = red then x := nil")
        compare = program.body[0].cond
        assert compare.left == ast.Path("p", ("tag",))
        assert compare.right == ast.Path("red")

    def test_relation_requires_operator(self):
        with pytest.raises(ParseError):
            parse_body("  if x then x := nil")


class TestPrePost:
    def test_pre_and_post_extracted(self):
        program = parse_body("  x := nil", pre="y = nil", post="x = nil")
        assert program.pre.text == "y = nil"
        assert program.post.text == "x = nil"
        assert len(program.body) == 1

    def test_missing_pre_post(self):
        program = parse_body("  x := nil")
        assert program.pre is None
        assert program.post is None

    def test_post_after_loop_end(self):
        program = parse_body(
            "  while x <> nil do begin x := x^.next end", post="x = nil")
        assert program.post.text == "x = nil"


class TestErrors:
    def test_missing_program_keyword(self):
        with pytest.raises(ParseError):
            parse_program("begin end.")

    def test_missing_final_dot(self):
        with pytest.raises(ParseError):
            parse_program("program t; begin end")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_program("program t; begin end. extra")

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(ParseError):
            parse_body("  x := nil y := nil")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc:
            parse_program("program t; begin x := ; end.")
        assert exc.value.line >= 1
