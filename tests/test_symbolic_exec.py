"""Differential tests: symbolic transduction vs the concrete interpreter.

For random loop-free programs, the symbolic engine's error / oom /
final-state predicates (compiled to automata over initial-store
encodings) are compared with actually running the program:

* the interpreter succeeds  ->  error and oom automata reject, the
  final-state well-formedness automaton agrees with the concrete
  checker, and every query formula agrees with concrete evaluation on
  the final store;
* the interpreter raises OutOfMemory  ->  the oom automaton accepts;
* the interpreter raises another runtime error  ->  the error
  automaton accepts.
"""

import random

import pytest

from repro.errors import ExecutionError
from repro.exec.interpreter import Interpreter, OutOfMemory
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.pascal import check_program, parse_program
from repro.storelogic import check_formula, parse_formula
from repro.storelogic.eval import eval_formula
from repro.storelogic.translate import translate_formula
from repro.stores.encode import encode_store
from repro.symbolic.exec import exec_statements
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_graph, wf_string

from util import random_body, random_store, wrap_program

QUERIES = [
    "x = nil",
    "p = q",
    "x<next*>p",
    "p^.next = nil",
    "ex g: <garb?>g",
    "<(Item:red)?>p",
    "y<next*>q",
]


def _build(body_src):
    program = check_program(parse_program(wrap_program(body_src)))
    schema = program.schema
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state0 = initial_store(schema, layout)
    outcome = exec_statements(state0, program.body)
    wf0 = wf_string(layout)
    automata = {
        "oom": compiler.compile(F.and_(wf0, outcome.oom)),
        "err": compiler.compile(F.and_(wf0, outcome.error)),
        "wf_final": compiler.compile(F.and_(wf0, wf_graph(outcome.store))),
    }
    queries = {}
    for text in QUERIES:
        formula = check_formula(parse_formula(text), schema)
        queries[text] = (formula, compiler.compile(
            F.and_(wf0, translate_formula(formula, outcome.store))))
    return program, schema, compiler, layout, automata, queries


def _check_one_store(program, schema, compiler, layout, automata,
                     queries, store):
    word = layout.symbols_to_word(encode_store(store), compiler.tracks())
    interpreter = Interpreter(program)
    working = store.clone()
    try:
        interpreter.run(working)
        status = "ok"
    except OutOfMemory:
        status = "oom"
    except ExecutionError:
        status = "err"
    if status == "oom":
        assert automata["oom"].accepts(word), "oom not predicted"
        return
    if status == "err":
        assert automata["err"].accepts(word), "error not predicted"
        return
    assert not automata["oom"].accepts(word), "spurious oom"
    assert not automata["err"].accepts(word), "spurious error"
    assert automata["wf_final"].accepts(word) == \
        working.is_well_formed(), "wf_graph disagrees"
    for text, (formula, automaton) in queries.items():
        expected = eval_formula(formula, working)
        assert automaton.accepts(word) == expected, (text, status)


# Seeds whose generated programs compile in seconds.  A few seeds (5,
# 12, 13) generate adversarial aliasing patterns whose intermediate
# automata exhibit the logic's non-elementary blow-up (paper §6,
# "Complexity"); they still decide correctly but take minutes, so the
# routine suite skips them.
FAST_SEEDS = [0, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 14, 15, 16]


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_programs_match_interpreter(seed):
    rng = random.Random(seed * 977 + 13)
    body = random_body(rng, rng.randint(2, 5))
    built = _build(body)
    schema = built[1]
    for store_seed in range(8):
        store = random_store(schema, random.Random(seed * 101 + store_seed))
        _check_one_store(*built, store)


HAND_WRITTEN = [
    # classic three-step rotations and updates
    "  p := x;\n  x := x^.next;\n  p^.next := nil",
    # allocation then initialisation
    "  new(p, red);\n  p^.next := nil;\n  q := p",
    # dispose then dangling assignment
    "  p := x;\n  x := x^.next;\n  dispose(p, red)",
    # conditionals with variant tests
    "  if x <> nil and x^.tag = red then y := nil "
    "else begin p := x end",
    # field write through a two-step path
    "  p^.next^.next := q",
    # new into a field lvalue
    "  new(p^.next, blue);\n  q := p^.next;\n  q^.next := nil",
    # guard errors: tag of nil
    "  if p^.tag = red then p := nil",
    # chained conditionals touching garbage
    "  if x = nil then new(x, red) else dispose(x, blue);\n"
    "  if x <> nil then x^.next := nil",
    # self-loop assignment (the cyclic-store pattern)
    "  p^.next := p",
    # aliased field write then read
    "  q := p;\n  p^.next := x;\n  y := q^.next",
]


@pytest.mark.parametrize("index", range(len(HAND_WRITTEN)))
def test_hand_written_programs_match_interpreter(index):
    built = _build(HAND_WRITTEN[index])
    schema = built[1]
    for store_seed in range(10):
        store = random_store(schema, random.Random(index * 37 + store_seed))
        _check_one_store(*built, store)


def test_dispose_wrong_variant_is_error():
    built = _build("  dispose(x, red)")
    program, schema = built[0], built[1]
    from util import store_with_lists
    store = store_with_lists(schema, {"x": ["blue"]})
    _check_one_store(*built, store)
    word = built[3].symbols_to_word(encode_store(store),
                                    built[2].tracks())
    assert built[4]["err"].accepts(word)


def test_oom_predicted_exactly():
    built = _build("  new(p, red)")
    program, schema = built[0], built[1]
    from util import store_with_lists
    empty = store_with_lists(schema, {})           # no garbage: oom
    roomy = store_with_lists(schema, {}, garbage=1)
    _check_one_store(*built, empty)
    _check_one_store(*built, roomy)
    tracks = built[2].tracks()
    assert built[4]["oom"].accepts(
        built[3].symbols_to_word(encode_store(empty), tracks))
    assert not built[4]["oom"].accepts(
        built[3].symbols_to_word(encode_store(roomy), tracks))


def test_allocation_uses_first_garbage_cell():
    """Symbolic and concrete allocators agree on the chosen cell, so
    pointer equalities after new() agree exactly."""
    built = _build("  new(p, red);\n  new(q, blue);\n  p^.next := q")
    schema = built[1]
    from util import store_with_lists
    store = store_with_lists(schema, {"x": ["red"]}, garbage=3)
    _check_one_store(*built, store)
