"""Unit and property tests for the ROBDD package."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Bdd


@pytest.fixture
def mgr():
    return Bdd()


# ----------------------------------------------------------------------
# Basic algebra
# ----------------------------------------------------------------------

class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.is_terminal(Bdd.FALSE)
        assert mgr.is_terminal(Bdd.TRUE)
        assert not mgr.is_terminal(mgr.var(0))

    def test_var_evaluation(self, mgr):
        x = mgr.var(3)
        assert mgr.evaluate(x, {3: True})
        assert not mgr.evaluate(x, {3: False})
        assert not mgr.evaluate(x, {})  # missing defaults to False

    def test_nvar(self, mgr):
        assert mgr.nvar(1) == mgr.not_(mgr.var(1))

    def test_literal(self, mgr):
        assert mgr.literal(2, True) == mgr.var(2)
        assert mgr.literal(2, False) == mgr.nvar(2)

    def test_hash_consing_makes_equal_functions_identical(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        left = mgr.and_(x, y)
        right = mgr.not_(mgr.or_(mgr.not_(x), mgr.not_(y)))
        assert left == right

    def test_redundant_node_collapses(self, mgr):
        assert mgr.node(0, mgr.TRUE, mgr.TRUE) == mgr.TRUE

    def test_not_involution(self, mgr):
        f = mgr.xor(mgr.var(0), mgr.var(2))
        assert mgr.not_(mgr.not_(f)) == f

    def test_constants(self, mgr):
        x = mgr.var(0)
        assert mgr.and_(x, mgr.FALSE) == mgr.FALSE
        assert mgr.and_(x, mgr.TRUE) == x
        assert mgr.or_(x, mgr.TRUE) == mgr.TRUE
        assert mgr.or_(x, mgr.FALSE) == x
        assert mgr.xor(x, x) == mgr.FALSE
        assert mgr.implies(mgr.FALSE, x) == mgr.TRUE
        assert mgr.iff(x, x) == mgr.TRUE

    def test_ite_matches_definition(self, mgr):
        f, g, h = mgr.var(0), mgr.var(1), mgr.var(2)
        expected = mgr.or_(mgr.and_(f, g), mgr.and_(mgr.not_(f), h))
        assert mgr.ite(f, g, h) == expected


# ----------------------------------------------------------------------
# Quantification, restriction, composition
# ----------------------------------------------------------------------

class TestOperators:
    def test_restrict(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.or_(mgr.var(1), mgr.var(2)))
        assert mgr.restrict(f, {0: True, 1: True}) == mgr.TRUE
        assert mgr.restrict(f, {0: False}) == mgr.FALSE
        assert mgr.restrict(f, {1: False, 2: False}) == mgr.FALSE

    def test_exists(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.var(1))
        assert mgr.exists(f, [1]) == mgr.var(0)
        assert mgr.exists(f, [0, 1]) == mgr.TRUE

    def test_forall(self, mgr):
        f = mgr.or_(mgr.var(0), mgr.var(1))
        assert mgr.forall(f, [0]) == mgr.var(1)
        assert mgr.forall(f, [0, 1]) == mgr.FALSE

    def test_exists_no_vars_is_identity(self, mgr):
        f = mgr.var(0)
        assert mgr.exists(f, []) == f

    def test_compose(self, mgr):
        # f = x0 & x2, substitute x2 := x1 | x3
        f = mgr.and_(mgr.var(0), mgr.var(2))
        g = mgr.or_(mgr.var(1), mgr.var(3))
        expected = mgr.and_(mgr.var(0), g)
        assert mgr.compose(f, 2, g) == expected

    def test_support(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.xor(mgr.var(3), mgr.var(5)))
        assert mgr.support(f) == frozenset({0, 3, 5})
        assert mgr.support(mgr.TRUE) == frozenset()


# ----------------------------------------------------------------------
# Counting and enumeration
# ----------------------------------------------------------------------

class TestCounting:
    def test_sat_count_simple(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        assert mgr.sat_count(mgr.and_(x, y), 2) == 1
        assert mgr.sat_count(mgr.or_(x, y), 2) == 3
        assert mgr.sat_count(mgr.TRUE, 3) == 8
        assert mgr.sat_count(mgr.FALSE, 3) == 0

    def test_sat_count_with_free_vars(self, mgr):
        # f over var 1 only, counted over 3 vars -> doubled twice
        f = mgr.var(1)
        assert mgr.sat_count(f, 3) == 4

    def test_any_sat(self, mgr):
        f = mgr.and_(mgr.var(0), mgr.not_(mgr.var(1)))
        model = mgr.any_sat(f)
        assert model is not None
        assert mgr.evaluate(f, model)
        assert mgr.any_sat(mgr.FALSE) is None

    def test_all_sat(self, mgr):
        f = mgr.xor(mgr.var(0), mgr.var(1))
        models = list(mgr.all_sat(f, [0, 1]))
        assert len(models) == 2
        assert all(mgr.evaluate(f, m) for m in models)

    def test_node_count(self, mgr):
        assert mgr.node_count(mgr.TRUE) == 0
        assert mgr.node_count(mgr.var(0)) == 1


# ----------------------------------------------------------------------
# Property-based: random expressions against truth tables
# ----------------------------------------------------------------------

def _exprs(num_vars):
    leaf = st.integers(min_value=0, max_value=num_vars - 1).map(
        lambda i: ("var", i))
    return st.recursive(
        leaf | st.just(("const", True)) | st.just(("const", False)),
        lambda children: st.tuples(
            st.sampled_from(["and", "or", "xor", "not", "implies"]),
            children, children),
        max_leaves=12)


def _build(mgr, expr):
    if expr[0] == "var":
        return mgr.var(expr[1])
    if expr[0] == "const":
        return mgr.TRUE if expr[1] else mgr.FALSE
    op, left, right = expr
    lf, rf = _build(mgr, left), _build(mgr, right)
    if op == "and":
        return mgr.and_(lf, rf)
    if op == "or":
        return mgr.or_(lf, rf)
    if op == "xor":
        return mgr.xor(lf, rf)
    if op == "implies":
        return mgr.implies(lf, rf)
    return mgr.not_(lf)


def _truth(expr, env):
    if expr[0] == "var":
        return env[expr[1]]
    if expr[0] == "const":
        return expr[1]
    op, left, right = expr
    lv, rv = _truth(left, env), _truth(right, env)
    if op == "and":
        return lv and rv
    if op == "or":
        return lv or rv
    if op == "xor":
        return lv != rv
    if op == "implies":
        return (not lv) or rv
    return not lv


NUM_VARS = 4


@settings(max_examples=150, deadline=None)
@given(_exprs(NUM_VARS))
def test_bdd_matches_truth_table(expr):
    mgr = Bdd()
    f = _build(mgr, expr)
    for bits in itertools.product([False, True], repeat=NUM_VARS):
        env = dict(enumerate(bits))
        assert mgr.evaluate(f, env) == _truth(expr, env)


@settings(max_examples=60, deadline=None)
@given(_exprs(NUM_VARS))
def test_sat_count_matches_enumeration(expr):
    mgr = Bdd()
    f = _build(mgr, expr)
    expected = sum(
        1 for bits in itertools.product([False, True], repeat=NUM_VARS)
        if _truth(expr, dict(enumerate(bits))))
    assert mgr.sat_count(f, NUM_VARS) == expected


@settings(max_examples=60, deadline=None)
@given(_exprs(NUM_VARS), st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_exists_is_disjunction_of_cofactors(expr, level):
    mgr = Bdd()
    f = _build(mgr, expr)
    expected = mgr.or_(mgr.restrict(f, {level: False}),
                       mgr.restrict(f, {level: True}))
    assert mgr.exists(f, [level]) == expected


@settings(max_examples=60, deadline=None)
@given(_exprs(NUM_VARS), st.integers(min_value=0, max_value=NUM_VARS - 1))
def test_forall_is_conjunction_of_cofactors(expr, level):
    mgr = Bdd()
    f = _build(mgr, expr)
    expected = mgr.and_(mgr.restrict(f, {level: False}),
                        mgr.restrict(f, {level: True}))
    assert mgr.forall(f, [level]) == expected


class TestDeepChains:
    """Regression: a BDD chained over thousands of variables must not
    die with RecursionError — apply and negation are iterative, the
    remaining walks raise the recursion limit for the call."""

    DEPTH = 6000

    def _chain(self, mgr):
        """The conjunction x0 & x1 & ... — one node per level."""
        f = mgr.TRUE
        for level in reversed(range(self.DEPTH)):
            f = mgr.and_(mgr.var(level), f)
        return f

    def test_apply_and_not_survive_deep_chain(self):
        mgr = Bdd()
        f = self._chain(mgr)
        assert mgr.node_count(f) == self.DEPTH
        g = mgr.not_(f)
        assert mgr.not_(g) == f
        assert mgr.and_(f, g) == mgr.FALSE
        assert mgr.or_(f, g) == mgr.TRUE

    def test_recursive_walks_survive_deep_chain(self):
        mgr = Bdd()
        f = self._chain(mgr)
        assert mgr.sat_count(f, self.DEPTH) == 1
        assert mgr.restrict(f, {0: True}) == \
            mgr.exists(f, [0])
        assert mgr.forall(f, [0]) == mgr.FALSE
        assert len(mgr.support(f)) == self.DEPTH
