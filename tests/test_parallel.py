"""Tests for the sharded parallel executor (repro.parallel).

The heavy lifting is done by the differential harness in
``diffcheck.py``; these tests run it over a fast subset of the corpus
(CI's parallel-smoke job sweeps the whole corpus) and add unit-level
coverage for jobs resolution, wire fidelity, and fault containment.
"""

import json
import multiprocessing
import os

import pytest

import diffcheck
from repro.errors import ReproError
from repro.parallel import resolve_jobs
from repro.parallel.wire import span_from_dict
from repro.programs import ALL_PROGRAMS
from repro.verify import Outcome, verify_source

from util import wrap_program

# Fast programs only: the full-corpus sweep belongs to CI's
# parallel-smoke job, not tier-1.
FAST_NAMES = ["searchwf", "swap", "reverse"]


class TestResolveJobs:
    def test_default_is_sequential(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_count(self):
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_jobs(-1)


class TestDifferential:
    """The tentpole contract: parallel == sequential, report for
    report, on verify and table granularity."""

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_verify_matches_sequential(self, name):
        assert diffcheck.diff_verify(name, jobs=2) == []

    def test_verify_four_workers_on_passing_program(self):
        assert diffcheck.diff_verify("searchwf", jobs=4) == []

    def test_table_matches_sequential(self):
        assert diffcheck.diff_table(FAST_NAMES, jobs=2) == []

    def test_counterexample_travels_intact(self):
        code, seq, _ = diffcheck.run_cli_json(
            ["verify", "swap", "--no-simulate", "--json"])
        par_code, par, _ = diffcheck.run_cli_json(
            ["verify", "swap", "--no-simulate", "--json", "-j", "2"])
        assert code == par_code == 1
        seq_cex = [s["counterexample"] for s in seq["subgoals"]
                   if s["counterexample"]]
        par_cex = [s["counterexample"] for s in par["subgoals"]
                   if s["counterexample"]]
        assert seq_cex == par_cex

    def test_timeout_outcome_matches_sequential(self):
        # A zero deadline degrades to the same structured outcome
        # whether partitioned across workers or applied sequentially.
        # (Full report equality is not expected here: the budget
        # error messages embed measured elapsed times.)
        seq_code, seq, _ = diffcheck.run_cli_json(
            ["verify", "reverse", "--json", "--timeout", "0"])
        par_code, par, _ = diffcheck.run_cli_json(
            ["verify", "reverse", "--json", "--timeout", "0",
             "-j", "2"])
        diffcheck.assert_no_orphans()
        assert seq_code == par_code == 3
        assert seq["outcome"] == par["outcome"] == "TIMEOUT"
        assert [s["outcome"] for s in seq["subgoals"]] == \
            [s["outcome"] for s in par["subgoals"]]
        assert seq["budget"] == par["budget"]


class TestEngineLevel:
    def test_verify_source_accepts_jobs(self):
        source = wrap_program("  p := x", post="p = x")
        sequential = verify_source(source)
        parallel = verify_source(source, jobs=2)
        assert parallel.valid and sequential.valid
        assert parallel.outcome is Outcome.VERIFIED
        assert diffcheck.normalize(parallel.to_dict()) == \
            diffcheck.normalize(sequential.to_dict())

    def test_front_end_error_raised_before_any_worker(self):
        # Subgoal collection happens in the parent; a bad program
        # raises exactly the exception the sequential path raises,
        # and no pool is ever created.
        bad = "program p; begin x := ; end."
        with pytest.raises(ReproError) as sequential_info:
            verify_source(bad)
        with pytest.raises(type(sequential_info.value)):
            verify_source(bad, jobs=2)
        diffcheck.assert_no_orphans()

    def test_subgoal_results_in_sequential_order(self):
        result = verify_source(ALL_PROGRAMS["reverse"], jobs=2)
        descriptions = [r.description for r in result.results]
        sequential = verify_source(ALL_PROGRAMS["reverse"])
        assert descriptions == [r.description
                                for r in sequential.results]


class TestFaultContainment:
    def test_worker_fault_degrades_not_crashes(self):
        with diffcheck.fault_env("exec.symbolic:error"):
            code, document, err = diffcheck.run_cli_json(
                ["verify", "reverse", "--json", "-j", "2"])
        diffcheck.assert_no_orphans()
        assert code == 3
        assert "Traceback" not in err
        assert document["outcome"] == "ERROR"

    def test_interrupt_in_worker_terminates_pool_exit_130(self):
        with diffcheck.fault_env("exec.symbolic:interrupt"):
            code, document, err = diffcheck.run_cli_json(
                ["verify", "reverse", "--json", "-j", "2"])
        diffcheck.assert_no_orphans()
        assert code == 130
        assert document is not None, "partial JSON must be flushed"
        assert document["interrupted"] is True
        assert "Traceback" not in err

    def test_stress_mode_seeded(self):
        problems = diffcheck.stress(FAST_NAMES, jobs=2, seed=1997,
                                    rounds=3)
        assert problems == []

    def test_no_orphans_after_runs(self):
        assert multiprocessing.active_children() == []


class TestCrashSupervision:
    """Regression tests for the latent ``imap_unordered`` hang: a
    worker that dies mid-task (SIGKILL, OOM, hard crash) must never
    strand the run — the supervisor respawns it and either retries to
    the sequential verdict or quarantines the task as a structured
    ``ERROR`` row."""

    def test_killed_worker_retried_to_sequential_verdicts(self):
        # Exactly one SIGKILL of a busy worker: the retry must
        # converge on a report identical to the sequential one.
        seq_code, seq_doc, _ = diffcheck.run_cli_json(
            ["verify", "searchwf", "--json"])
        with diffcheck.fault_env("verify.decide:kill:1"):
            par_code, par_doc, err = diffcheck.run_cli_json(
                ["verify", "searchwf", "--json", "-j", "2"])
        diffcheck.assert_no_orphans()
        assert "Traceback" not in err
        assert par_code == seq_code == 0
        assert diffcheck.normalize(par_doc) == \
            diffcheck.normalize(seq_doc)

    def test_poison_task_quarantined_as_error_rows(self):
        # Every attempt dies: the run completes (no hang) with each
        # subgoal quarantined as a structured ERROR row.
        with diffcheck.fault_env("verify.decide:exit"):
            code, document, err = diffcheck.run_cli_json(
                ["verify", "searchwf", "--json", "-j", "2"])
        diffcheck.assert_no_orphans()
        assert "Traceback" not in err
        assert code == 3
        assert document["outcome"] == "ERROR"
        for subgoal in document["subgoals"]:
            assert subgoal["outcome"] == "ERROR"
            assert "worker crashed" in subgoal["error"]
            assert "quarantined" in subgoal["error"]

    def test_killed_worker_in_table_run(self):
        seq_code, seq_docs, _ = diffcheck.run_cli_json(
            ["table", "searchwf", "scan", "--json"])
        with diffcheck.fault_env("verify.decide:kill:1"):
            par_code, par_docs, err = diffcheck.run_cli_json(
                ["table", "searchwf", "scan", "--json", "--jobs", "2"])
        diffcheck.assert_no_orphans()
        assert "Traceback" not in err
        assert par_code == seq_code == 0
        assert diffcheck.normalize(par_docs) == \
            diffcheck.normalize(seq_docs)

    def test_program_task_crash_degrades_table_row(self):
        # A table worker that always dies quarantines its program as
        # a structured error row; the run itself still completes.
        with diffcheck.fault_env("verify.decide:exit"):
            code, documents, err = diffcheck.run_cli_json(
                ["table", "searchwf", "--json", "--jobs", "2"])
        diffcheck.assert_no_orphans()
        assert "Traceback" not in err
        assert code == 3
        (document,) = documents
        assert document["outcome"] == "ERROR"
        assert "worker" in document["error"]


class TestWireFidelity:
    def test_span_round_trip_preserves_tree(self):
        code, document, _ = diffcheck.run_cli_json(
            ["verify", "searchwf", "--json", "-j", "2"])
        assert code == 0
        for subgoal in document["subgoals"]:
            tree = subgoal["span"]
            rebuilt = span_from_dict(tree)
            assert diffcheck.normalize(rebuilt.to_dict()) == \
                diffcheck.normalize(tree)

    def test_merged_stats_equal_sequential(self):
        _, seq, _ = diffcheck.run_cli_json(
            ["verify", "searchwf", "--json"])
        _, par, _ = diffcheck.run_cli_json(
            ["verify", "searchwf", "--json", "-j", "2"])
        assert seq["stats"] == par["stats"]
