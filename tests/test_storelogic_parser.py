"""Tests for the store-logic assertion parser and checker."""

import pytest

from repro.errors import ParseError, TranslationError
from repro.storelogic import ast, check_formula, parse_formula

from util import list_schema


class TestTerms:
    def test_variable(self):
        f = parse_formula("x = p")
        assert f == ast.SEq(ast.TermVar("x"), ast.TermVar("p"))

    def test_nil(self):
        f = parse_formula("x = nil")
        assert f.right == ast.TermNil()

    def test_traversal(self):
        f = parse_formula("p^.next^.next = nil")
        assert f.left == ast.TermDeref(
            ast.TermDeref(ast.TermVar("p"), "next"), "next")

    def test_inequality_desugars(self):
        f = parse_formula("p <> q")
        assert isinstance(f, ast.SNot)
        assert isinstance(f.inner, ast.SEq)


class TestRouting:
    def test_simple_field(self):
        f = parse_formula("x<next>p")
        assert f == ast.SRoute(ast.TermVar("x"), ast.RouteField("next"),
                               ast.TermVar("p"))

    def test_star(self):
        f = parse_formula("x<next*>p")
        assert f.route == ast.RouteStar(ast.RouteField("next"))

    def test_postfix_plus(self):
        f = parse_formula("x<next+>p")
        assert f.route == ast.RouteCat(
            ast.RouteField("next"),
            ast.RouteStar(ast.RouteField("next")))

    def test_union_plus(self):
        f = parse_formula("x<next+prev>p")
        assert f.route == ast.RouteUnion(ast.RouteField("next"),
                                         ast.RouteField("prev"))

    def test_concatenation(self):
        f = parse_formula("x<next.next>p")
        assert f.route == ast.RouteCat(ast.RouteField("next"),
                                       ast.RouteField("next"))

    def test_tests(self):
        f = parse_formula("x<next.(List:blue)?>p")
        assert f.route.right == ast.RouteTestVariant("List", "blue")
        g = parse_formula("x<nil?>p")
        assert g.route == ast.RouteTestNil()
        h = parse_formula("x<garb?>p")
        assert h.route == ast.RouteTestGarb()

    def test_unknown_test(self):
        with pytest.raises(ParseError):
            parse_formula("x<weird?>p")

    def test_unary_route_sugar(self):
        f = parse_formula("<garb?>g")
        assert f.left == f.right == ast.TermVar("g")

    def test_parenthesised_route(self):
        f = parse_formula("x<(next.next)*>p")
        assert isinstance(f.route, ast.RouteStar)
        assert isinstance(f.route.inner, ast.RouteCat)

    def test_mixed_route_expression(self):
        f = parse_formula("x<(next+(List:red)?)*.next>p")
        assert isinstance(f.route, ast.RouteCat)
        assert isinstance(f.route.left, ast.RouteStar)
        assert isinstance(f.route.left.inner, ast.RouteUnion)


class TestConnectives:
    def test_precedence(self):
        f = parse_formula("x = nil & y = nil | p = q")
        assert isinstance(f, ast.SOr)
        assert isinstance(f.left, ast.SAnd)

    def test_implies_right_assoc(self):
        f = parse_formula("x = nil => y = nil => p = q")
        assert isinstance(f, ast.SImplies)
        assert isinstance(f.right, ast.SImplies)

    def test_iff(self):
        f = parse_formula("x = nil <=> p = nil")
        assert isinstance(f, ast.SIff)

    def test_negation_forms(self):
        for text in ("~x = nil", "not x = nil", "!x = nil"):
            assert isinstance(parse_formula(text), ast.SNot)

    def test_word_connectives(self):
        f = parse_formula("x = nil and y = nil or p = q")
        assert isinstance(f, ast.SOr)

    def test_constants(self):
        assert isinstance(parse_formula("true"), ast.STrue)
        assert isinstance(parse_formula("false"), ast.SFalse)

    def test_parentheses(self):
        f = parse_formula("x = nil & (y = nil | p = q)")
        assert isinstance(f.right, ast.SOr)


class TestQuantifiers:
    def test_single_name(self):
        f = parse_formula("ex g: <garb?>g")
        assert isinstance(f, ast.SEx)
        assert f.names == ("g",)

    def test_multiple_names(self):
        f = parse_formula("all c, d: c<next>d => ~<garb?>d")
        assert f.names == ("c", "d")
        assert isinstance(f.body, ast.SImplies)

    def test_body_extends_right(self):
        f = parse_formula("all r: <garb?>r => r = q")
        assert isinstance(f.body, ast.SImplies)

    def test_paper_delete_postcondition(self):
        text = ("(x = nil & p = nil) | "
                "(ex g: <garb?>g & (all r: <garb?>r => r = g))")
        f = parse_formula(text)
        assert isinstance(f, ast.SOr)


class TestParseErrors:
    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse_formula("x = ")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_formula("(x = nil")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_formula("x # y")

    def test_missing_route_close(self):
        with pytest.raises(ParseError):
            parse_formula("x<next*")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_formula("x = nil y")


class TestCheck:
    @pytest.fixture
    def schema(self):
        return list_schema()

    def test_resolves_pointer_alias(self, schema):
        f = check_formula(parse_formula("<(List:red)?>p"), schema)
        assert f.route == ast.RouteTestVariant("Item", "red")

    def test_accepts_record_name(self, schema):
        f = check_formula(parse_formula("<(Item:blue)?>p"), schema)
        assert f.route.type_name == "Item"

    def test_unknown_variable(self, schema):
        with pytest.raises(TranslationError):
            check_formula(parse_formula("z = nil"), schema)

    def test_bound_variable_ok(self, schema):
        check_formula(parse_formula("ex z: z = nil"), schema)

    def test_bound_shadows_program_var(self, schema):
        check_formula(parse_formula("ex q: <garb?>q"), schema)

    def test_unknown_field(self, schema):
        with pytest.raises(TranslationError):
            check_formula(parse_formula("p^.prev = nil"), schema)

    def test_unknown_route_field(self, schema):
        with pytest.raises(TranslationError):
            check_formula(parse_formula("x<prev*>p"), schema)

    def test_unknown_type_in_test(self, schema):
        with pytest.raises(TranslationError):
            check_formula(parse_formula("<(Junk:red)?>p"), schema)

    def test_unknown_variant_in_test(self, schema):
        with pytest.raises(TranslationError):
            check_formula(parse_formula("<(List:green)?>p"), schema)

    def test_cannot_bind_nil(self, schema):
        with pytest.raises(TranslationError):
            check_formula(parse_formula("ex nil: true"), schema)
