"""Property-based differential testing of the M2L compiler.

Hypothesis generates random formulas over a small fixed variable pool;
each compiles to an automaton whose language is compared against the
brute-force evaluator on every string up to length 3 and every
assignment of the free variables.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.mso import ast
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.mso.interp import evaluate, word_for

# Free variable pool (never bound by generated quantifiers).
FO = [ast.Var.first(name) for name in ("u", "v")]
SO = [ast.Var.second(name) for name in ("A", "B")]


def _atoms():
    fo = st.sampled_from(FO)
    so = st.sampled_from(SO)
    return st.one_of(
        st.tuples(fo, so).map(lambda t: F.mem(*t)),
        st.tuples(so, so).map(lambda t: F.sub(*t)),
        st.tuples(so, so).map(lambda t: F.eq_set(*t)),
        st.tuples(fo, fo).map(lambda t: F.less(*t)),
        st.tuples(fo, fo).map(lambda t: F.eq_pos(*t)),
        st.tuples(fo, fo).map(lambda t: F.succ(*t)),
        fo.map(F.first),
        fo.map(F.last),
        so.map(F.empty),
        so.map(F.singleton),
        st.just(ast.TRUE),
    )


def _quantify(child, kind):
    """Wrap a formula in a quantifier over a fresh variable that
    replaces one free-pool variable inside (soundly: we just relate the
    fresh var to the pool with an extra atom)."""
    if kind in ("ex1", "all1"):
        fresh = ast.Var.fresh("b", ast.VarKind.FIRST)
        body = F.and_(child, F.leq(fresh, fresh))
        link = F.or_(F.mem(fresh, SO[0]), F.eq_pos(fresh, FO[0]))
        body = F.and_(body, link) if kind == "ex1" else \
            F.implies(link, child)
        return ast.Ex1(fresh, body) if kind == "ex1" \
            else ast.All1(fresh, body)
    fresh = ast.Var.fresh("S", ast.VarKind.SECOND)
    link = F.sub(fresh, SO[1])
    if kind == "ex2":
        return ast.Ex2(fresh, F.and_(link, child))
    return ast.All2(fresh, F.implies(link, child))


def _formulas():
    return st.recursive(
        _atoms(),
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda t: F.and_(t[0], t[1])),
            st.tuples(children, children).map(
                lambda t: F.or_(t[0], t[1])),
            st.tuples(children, children).map(
                lambda t: F.implies(t[0], t[1])),
            children.map(F.not_),
            st.tuples(children,
                      st.sampled_from(["ex1", "all1", "ex2", "all2"])).map(
                lambda t: _quantify(t[0], t[1])),
        ),
        max_leaves=5)


def _assignments(free, n):
    fo = [v for v in free if v.kind is ast.VarKind.FIRST]
    so = [v for v in free if v.kind is ast.VarKind.SECOND]
    positions = list(range(n))
    subsets = [frozenset(c) for size in range(n + 1)
               for c in itertools.combinations(positions, size)]
    for fo_values in itertools.product(positions, repeat=len(fo)):
        for so_values in itertools.product(subsets, repeat=len(so)):
            env = dict(zip(fo, fo_values))
            env.update(zip(so, so_values))
            yield env


@settings(max_examples=120, deadline=None)
@given(_formulas())
def test_compiler_matches_bruteforce(formula):
    compiler = Compiler()
    dfa = compiler.compile(formula)
    tracks = compiler.tracks()
    free = sorted(formula.free_vars(), key=lambda v: v.name)
    for n in range(4):
        if n == 0 and any(v.kind is ast.VarKind.FIRST for v in free):
            continue  # no position to assign on the empty string
        for env in _assignments(free, n):
            expected = evaluate(formula, n, env)
            got = dfa.accepts(word_for(n, env, tracks))
            assert expected == got, (str(formula), n, env)


@settings(max_examples=60, deadline=None)
@given(_formulas())
def test_negation_flips_language(formula):
    compiler = Compiler()
    dfa = compiler.compile(formula)
    negated = Compiler()
    ndfa = negated.compile(F.not_(formula))
    free = sorted(formula.free_vars(), key=lambda v: v.name)
    for n in range(3):
        if n == 0 and any(v.kind is ast.VarKind.FIRST for v in free):
            continue
        for env in _assignments(free, n):
            a = dfa.accepts(word_for(n, env, compiler.tracks()))
            b = ndfa.accepts(word_for(n, env, negated.tracks()))
            assert a != b
