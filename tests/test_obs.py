"""Tests for the observability substrate (repro.obs)."""

import time

import pytest

from repro.bdd.mtbdd import Mtbdd
from repro.bdd.robdd import Bdd
from repro.obs.metrics import (NULL_REGISTRY, MetricsRegistry,
                               activate_metrics, current_metrics)
from repro.obs.trace import (NULL_SPAN, NULL_TRACER, Tracer, activate,
                             current_tracer, span, tracer_from_env)


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=2) as inner:
                pass
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.children == []
        assert inner.attrs == {"depth": 2}

    def test_span_measures_time(self):
        tracer = Tracer()
        with tracer.span("work") as sp:
            time.sleep(0.01)
        assert sp.seconds >= 0.01
        assert sp.end is not None

    def test_annotate_merges_attributes(self):
        tracer = Tracer()
        with tracer.span("op", a=1) as sp:
            sp.annotate(b=2, a=3)
        assert sp.attrs == {"a": 3, "b": 2}

    def test_real_spans_truthy_null_span_falsy(self):
        tracer = Tracer()
        with tracer.span("op") as sp:
            assert sp
        assert not NULL_SPAN

    def test_detail_spans_skipped_without_detail(self):
        tracer = Tracer(detail=False)
        with tracer.span("phase"):
            with tracer.span("op", detail=True) as sp:
                assert sp is NULL_SPAN
        assert len(tracer.roots) == 1
        assert tracer.roots[0].children == []

    def test_detail_spans_recorded_with_detail(self):
        tracer = Tracer(detail=True)
        with tracer.span("op", detail=True) as sp:
            pass
        assert tracer.roots == [sp]

    def test_max_spans_cap_drops_not_raises(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("op"):
                pass
        assert tracer.spans_recorded == 2
        assert tracer.spans_dropped == 3
        assert len(tracer.roots) == 2

    def test_to_dict_round_trips_structure(self):
        tracer = Tracer()
        with tracer.span("outer", k="v"):
            with tracer.span("inner"):
                pass
        document = tracer.to_dict()
        assert document["spans_recorded"] == 2
        (root,) = document["spans"]
        assert root["name"] == "outer"
        assert root["attrs"] == {"k": "v"}
        assert [c["name"] for c in root["children"]] == ["inner"]
        assert root["seconds"] >= 0

    def test_iter_spans_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        names = [s.name for s in tracer.roots[0].iter_spans()]
        assert names == ["a", "b", "c"]


class TestActiveTracer:
    def test_default_is_null_sink(self):
        assert current_tracer() is NULL_TRACER
        assert span("anything") is NULL_SPAN

    def test_activate_installs_and_restores(self):
        tracer = Tracer()
        with activate(tracer):
            assert current_tracer() is tracer
            with span("via-module"):
                pass
        assert current_tracer() is NULL_TRACER
        assert [s.name for s in tracer.roots] == ["via-module"]

    def test_activate_none_means_null(self):
        with activate(None):
            assert current_tracer() is NULL_TRACER

    def test_tracer_from_env(self):
        assert tracer_from_env({}) is None
        assert tracer_from_env({"REPRO_TRACE": ""}) is None
        assert tracer_from_env({"REPRO_TRACE": "0"}) is None
        tracer = tracer_from_env({"REPRO_TRACE": "1"})
        assert isinstance(tracer, Tracer)
        assert tracer.detail


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        registry.counter("ops").inc(4)
        assert registry.counter("ops").value == 5

    def test_gauge_tracks_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 7

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("states")
        for value in (1, 2, 3, 8, 100):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.minimum == 1
        assert histogram.maximum == 100
        assert histogram.mean == pytest.approx(114 / 5)
        document = histogram.to_dict()
        # 1 -> le_2^0; 2 -> le_2^1; 3 -> le_2^2; 8 -> le_2^3;
        # 100 -> le_2^7
        assert document["buckets"] == {
            "le_2^0": 1, "le_2^1": 1, "le_2^2": 1, "le_2^3": 1,
            "le_2^7": 1}

    def test_registry_to_dict_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1)
        assert list(registry.to_dict()) == ["a", "b"]

    def test_null_registry_swallows_everything(self):
        assert current_metrics() is NULL_REGISTRY
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("y").set(9)
        NULL_REGISTRY.histogram("z").observe(3)
        assert NULL_REGISTRY.to_dict() == {}

    def test_activate_metrics_restores(self):
        registry = MetricsRegistry()
        with activate_metrics(registry):
            current_metrics().counter("inside").inc()
        assert current_metrics() is NULL_REGISTRY
        assert registry.counter("inside").value == 1


class TestBddCacheStats:
    def test_mtbdd_counts_apply_hits_and_misses(self):
        mgr = Mtbdd()
        f = mgr.node(0, mgr.leaf(0), mgr.leaf(1))
        g = mgr.node(1, mgr.leaf(0), mgr.leaf(1))
        mgr.apply2("pair", lambda a, b: (a, b), f, g)
        misses = mgr.apply_misses
        assert misses > 0
        assert mgr.apply_hits == 0
        # The identical call is answered entirely from the memo table.
        mgr.apply2("pair", lambda a, b: (a, b), f, g)
        assert mgr.apply_hits == 1
        assert mgr.apply_misses == misses

    def test_mtbdd_cache_stats_keys(self):
        mgr = Mtbdd()
        stats = mgr.cache_stats()
        assert set(stats) == {
            "apply_hits", "apply_misses", "map_hits", "map_misses",
            "restrict_hits", "restrict_misses", "unique_table_size",
            "peak_nodes"}

    def test_mtbdd_table_sizes(self):
        mgr = Mtbdd()
        assert mgr.unique_table_size == 0
        f = mgr.node(0, mgr.leaf("a"), mgr.leaf("b"))
        assert mgr.unique_table_size == 1
        assert mgr.peak_nodes == len(mgr)
        assert not mgr.is_leaf(f)

    def test_robdd_counts_caches(self):
        mgr = Bdd()
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.and_(x, y)
        assert mgr.apply_misses > 0
        before = mgr.apply_hits
        assert mgr.and_(x, y) == f
        assert mgr.apply_hits > before
        mgr.ite(x, y, mgr.FALSE)
        mgr.exists(f, [0])
        mgr.restrict(f, {0: True})
        stats = mgr.cache_stats()
        assert stats["ite_misses"] >= 1
        assert stats["quant_misses"] >= 1
        assert stats["restrict_misses"] >= 1
        assert stats["unique_table_size"] > 0
        assert stats["peak_nodes"] == len(mgr)
