"""Tests for the Mona-like M2L concrete syntax."""

import pytest

from repro.errors import ParseError
from repro.mso import ast
from repro.mso.compile import Compiler
from repro.mso.parser import parse_m2l


def valid(text):
    formula, _ = parse_m2l(text)
    return Compiler().is_valid(formula)


class TestAtoms:
    def test_membership(self):
        formula, free = parse_m2l("p in X")
        assert isinstance(formula, ast.Mem)
        assert free["p"].kind is ast.VarKind.FIRST
        assert free["X"].kind is ast.VarKind.SECOND

    def test_subset(self):
        formula, _ = parse_m2l("X sub Y")
        assert isinstance(formula, ast.Sub)

    def test_orders(self):
        assert isinstance(parse_m2l("p < q")[0], ast.LessF)
        assert isinstance(parse_m2l("p <= q")[0], ast.Or)

    def test_successor(self):
        formula, free = parse_m2l("q = p + 1")
        assert isinstance(formula, ast.SuccF)
        assert formula.left is free["p"]
        assert formula.right is free["q"]

    def test_endpoints(self):
        assert isinstance(parse_m2l("p = 0")[0], ast.FirstF)
        assert isinstance(parse_m2l("p = $")[0], ast.LastF)

    def test_equalities(self):
        assert isinstance(parse_m2l("p = q")[0], ast.EqF)
        assert isinstance(parse_m2l("X = Y")[0], ast.EqS)

    def test_set_functions(self):
        assert isinstance(parse_m2l("empty(X)")[0], ast.EmptyS)
        assert isinstance(parse_m2l("singleton(X)")[0], ast.SingletonS)

    def test_constants(self):
        assert parse_m2l("true")[0] is ast.TRUE
        assert parse_m2l("false")[0] is ast.FALSE


class TestStructure:
    def test_precedence(self):
        formula, _ = parse_m2l("p in X & p in Y | p in Z")
        assert isinstance(formula, ast.Or)
        assert isinstance(formula.left, ast.And)

    def test_implication_right_assoc(self):
        formula, _ = parse_m2l("p in X => p in Y => p in Z")
        assert isinstance(formula, ast.Implies)
        assert isinstance(formula.right, ast.Implies)

    def test_negation_and_parens(self):
        formula, _ = parse_m2l("~(p in X | p in Y)")
        assert isinstance(formula, ast.Not)
        assert isinstance(formula.inner, ast.Or)

    def test_quantifiers_bind_fresh_vars(self):
        formula, free = parse_m2l("ex1 p: p in X")
        assert isinstance(formula, ast.Ex1)
        assert "p" not in free  # bound, not free
        assert "X" in free

    def test_multi_binder(self):
        formula, _ = parse_m2l("all1 a, b: a in X => b in X")
        assert isinstance(formula, ast.All1)
        assert isinstance(formula.body, ast.All1)

    def test_shadowing(self):
        formula, free = parse_m2l("p in X & (ex1 p: p = 0)")
        inner = formula.right
        assert isinstance(inner, ast.Ex1)
        assert inner.var is not free["p"]

    def test_shared_free_environment(self):
        first, free = parse_m2l("p in X")
        second, free = parse_m2l("p = 0", free)
        assert second.pos is first.pos


class TestErrors:
    def test_case_convention_enforced_in_binders(self):
        with pytest.raises(ParseError):
            parse_m2l("ex1 P: true")
        with pytest.raises(ParseError):
            parse_m2l("ex2 s: true")

    def test_kind_clash(self):
        with pytest.raises(ParseError):
            parse_m2l("p in X & X in Y")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_m2l("p in X q")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_m2l("p # q")

    def test_missing_relation(self):
        with pytest.raises(ParseError):
            parse_m2l("p q")


class TestSemantics:
    """Parsed formulas feed the compiler and decide correctly."""

    def test_transitivity(self):
        assert valid("a < b & b < c => a < c")

    def test_first_position_unique(self):
        assert valid("a = 0 & b = 0 => a = b")

    def test_induction(self):
        assert valid(
            "(ex1 z: z = 0 & z in X) "
            "& (all1 a, b: a in X & b = a + 1 => b in X) "
            "=> (ex1 l: l = $ & l in X)")

    def test_not_valid(self):
        assert not valid("a < b")

    def test_second_order_reachability(self):
        assert valid(
            "a <= b <=> (all2 S: (a in S & "
            "(all1 u, v: u in S & v = u + 1 => v in S)) => b in S)")
