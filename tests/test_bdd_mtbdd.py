"""Unit and property tests for the MTBDD package."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bdd import Mtbdd


@pytest.fixture
def mgr():
    return Mtbdd()


class TestBasics:
    def test_leaf_hash_consing(self, mgr):
        assert mgr.leaf("a") == mgr.leaf("a")
        assert mgr.leaf("a") != mgr.leaf("b")

    def test_leaf_value(self, mgr):
        assert mgr.leaf_value(mgr.leaf(42)) == 42

    def test_leaf_value_rejects_internal(self, mgr):
        node = mgr.node(0, mgr.leaf(1), mgr.leaf(2))
        with pytest.raises(ValueError):
            mgr.leaf_value(node)

    def test_redundant_node_collapses(self, mgr):
        leaf = mgr.leaf("x")
        assert mgr.node(0, leaf, leaf) == leaf

    def test_evaluate(self, mgr):
        f = mgr.node(0, mgr.leaf("lo"), mgr.leaf("hi"))
        assert mgr.evaluate(f, {0: True}) == "hi"
        assert mgr.evaluate(f, {0: False}) == "lo"
        assert mgr.evaluate(f, {}) == "lo"

    def test_is_leaf(self, mgr):
        assert mgr.is_leaf(mgr.leaf(0))
        assert not mgr.is_leaf(mgr.node(1, mgr.leaf(0), mgr.leaf(1)))

    def test_low_high_level(self, mgr):
        lo, hi = mgr.leaf("a"), mgr.leaf("b")
        f = mgr.node(5, lo, hi)
        assert mgr.level(f) == 5
        assert mgr.low(f) == lo
        assert mgr.high(f) == hi


class TestCombinators:
    def test_apply2_pairs(self, mgr):
        f = mgr.node(0, mgr.leaf(1), mgr.leaf(2))
        g = mgr.node(1, mgr.leaf(10), mgr.leaf(20))
        h = mgr.apply2("pair", lambda a, b: (a, b), f, g)
        assert mgr.evaluate(h, {0: True, 1: False}) == (2, 10)
        assert mgr.evaluate(h, {0: False, 1: True}) == (1, 20)

    def test_apply2_collapses_equal_results(self, mgr):
        f = mgr.node(0, mgr.leaf(1), mgr.leaf(2))
        g = mgr.node(0, mgr.leaf(2), mgr.leaf(1))
        total = mgr.apply2("sum", lambda a, b: a + b, f, g)
        assert mgr.is_leaf(total)
        assert mgr.leaf_value(total) == 3

    def test_map_leaves(self, mgr):
        f = mgr.node(0, mgr.leaf(1), mgr.leaf(2))
        g = mgr.map_leaves("double", lambda v: v * 2, f)
        assert mgr.evaluate(g, {0: True}) == 4

    def test_restrict(self, mgr):
        f = mgr.node(0, mgr.node(1, mgr.leaf("a"), mgr.leaf("b")),
                     mgr.leaf("c"))
        r = mgr.restrict(f, {0: False})
        assert mgr.evaluate(r, {1: True}) == "b"
        assert mgr.restrict(f, {}) == f

    def test_leaves(self, mgr):
        f = mgr.node(0, mgr.node(1, mgr.leaf("a"), mgr.leaf("b")),
                     mgr.leaf("a"))
        assert mgr.leaves(f) == frozenset({"a", "b"})

    def test_support(self, mgr):
        f = mgr.node(0, mgr.node(2, mgr.leaf(1), mgr.leaf(2)), mgr.leaf(3))
        assert mgr.support(f) == frozenset({0, 2})
        assert mgr.support(mgr.leaf(9)) == frozenset()

    def test_node_count(self, mgr):
        inner = mgr.node(1, mgr.leaf(1), mgr.leaf(2))
        f = mgr.node(0, inner, mgr.leaf(3))
        assert mgr.node_count(f) == 2
        assert mgr.node_count(mgr.leaf(1)) == 0

    def test_paths_cover_every_assignment(self, mgr):
        f = mgr.node(0, mgr.node(1, mgr.leaf("a"), mgr.leaf("b")),
                     mgr.leaf("c"))
        paths = list(mgr.paths(f))
        assert len(paths) == 3
        for assignment, value in paths:
            assert mgr.evaluate(f, assignment) == value

    def test_find_leaf(self, mgr):
        f = mgr.node(0, mgr.leaf("a"), mgr.leaf("b"))
        hit = mgr.find_leaf(f, lambda v: v == "b")
        assert hit == {0: True}
        assert mgr.find_leaf(f, lambda v: v == "z") is None


# ----------------------------------------------------------------------
# Property-based: MTBDDs as functions
# ----------------------------------------------------------------------

NUM_TRACKS = 3


def _tables():
    """A random function {0,1}^3 -> small int, as a lookup table."""
    return st.lists(st.integers(min_value=0, max_value=4),
                    min_size=2 ** NUM_TRACKS, max_size=2 ** NUM_TRACKS)


def _index(bits):
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def _from_table(mgr, table):
    from repro.automata.symbolic import delta_from_function
    return delta_from_function(
        mgr, range(NUM_TRACKS),
        lambda a: table[_index([a[t] for t in range(NUM_TRACKS)])])


@settings(max_examples=100, deadline=None)
@given(_tables())
def test_table_roundtrip(table):
    mgr = Mtbdd()
    f = _from_table(mgr, table)
    for bits in itertools.product([False, True], repeat=NUM_TRACKS):
        env = dict(enumerate(bits))
        assert mgr.evaluate(f, env) == table[_index(bits)]


@settings(max_examples=80, deadline=None)
@given(_tables(), _tables())
def test_apply2_pointwise(left, right):
    mgr = Mtbdd()
    f = _from_table(mgr, left)
    g = _from_table(mgr, right)
    h = mgr.apply2("add", lambda a, b: a + b, f, g)
    for bits in itertools.product([False, True], repeat=NUM_TRACKS):
        env = dict(enumerate(bits))
        index = _index(bits)
        assert mgr.evaluate(h, env) == left[index] + right[index]


@settings(max_examples=80, deadline=None)
@given(_tables())
def test_leaves_is_range(table):
    mgr = Mtbdd()
    f = _from_table(mgr, table)
    assert mgr.leaves(f) == frozenset(table)


@settings(max_examples=80, deadline=None)
@given(_tables())
def test_canonical_form(table):
    """Two constructions of the same function yield the same node."""
    mgr = Mtbdd()
    f = _from_table(mgr, table)
    g = _from_table(mgr, list(table))
    assert f == g
