"""Tests for the Pascal tokeniser."""

import pytest

from repro.errors import ParseError
from repro.pascal.lexer import Token, TokenKind, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_case_insensitive(self):
        tokens = tokenize("BEGIN End wHiLe")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])
        assert values("BEGIN End wHiLe") == ["begin", "end", "while"]

    def test_identifiers_keep_spelling(self):
        tokens = tokenize("Foo bar_Baz x1")
        assert [t.value for t in tokens[:-1]] == ["Foo", "bar_Baz", "x1"]
        assert all(t.kind is TokenKind.IDENT for t in tokens[:-1])

    def test_symbols(self):
        text = ":= : ; , . ^ ( ) = <>"
        expected = [TokenKind.ASSIGN, TokenKind.COLON, TokenKind.SEMI,
                    TokenKind.COMMA, TokenKind.DOT, TokenKind.CARET,
                    TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.EQ,
                    TokenKind.NEQ, TokenKind.EOF]
        assert kinds(text) == expected

    def test_assign_vs_colon(self):
        assert kinds("x := y")[1] is TokenKind.ASSIGN
        assert kinds("x : y")[1] is TokenKind.COLON

    def test_neq_vs_eq(self):
        assert kinds("a <> b")[1] is TokenKind.NEQ

    def test_pointer_traversal(self):
        assert kinds("p^.next")[:3] == [TokenKind.IDENT, TokenKind.CARET,
                                        TokenKind.DOT]


class TestAnnotationsAndComments:
    def test_annotation_token(self):
        tokens = tokenize("{x = nil}")
        assert tokens[0].kind is TokenKind.ANNOTATION
        assert tokens[0].value == "x = nil"

    def test_annotation_strips_whitespace(self):
        assert tokenize("{  data  }")[0].value == "data"

    def test_comment_skipped(self):
        assert kinds("(* a comment *) x") == [TokenKind.IDENT,
                                              TokenKind.EOF]

    def test_multiline_comment(self):
        text = "(* line one\nline two *) begin"
        tokens = tokenize(text)
        assert tokens[0].is_keyword("begin")

    def test_unterminated_comment(self):
        with pytest.raises(ParseError):
            tokenize("(* oops")

    def test_unterminated_annotation(self):
        with pytest.raises(ParseError):
            tokenize("{ oops")

    def test_annotation_keeps_inner_operators(self):
        token = tokenize("{x<next*>p & p^.next = nil}")[0]
        assert token.value == "x<next*>p & p^.next = nil"


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("begin\n  x := nil\nend")
        x_token = tokens[1]
        assert (x_token.line, x_token.column) == (2, 3)
        end_token = tokens[-2]
        assert end_token.line == 3

    def test_bad_character_reports_location(self):
        with pytest.raises(ParseError) as exc:
            tokenize("x @ y")
        assert exc.value.line == 1
        assert exc.value.column == 3

    def test_str_of_tokens(self):
        assert str(tokenize("begin")[0]) == "begin"
        assert str(tokenize("{inv}")[0]) == "{inv}"
        assert str(tokenize(";")[0]) == ";"

    def test_is_keyword_helper(self):
        token = tokenize("while")[0]
        assert token.is_keyword("while")
        assert not token.is_keyword("do")
        assert not tokenize("foo")[0].is_keyword("foo")
