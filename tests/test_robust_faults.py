"""Tests for deterministic fault injection (repro.robust.faults).

The matrix test drives every named fault site against a small corpus
through the real CLI entry point and asserts the cardinal robustness
property: no raw traceback ever escapes ``main()`` — every failure is
a structured outcome with a documented exit code.
"""

import json

import pytest

from repro.cli import main
from repro.robust import faults
from repro.robust.budget import BudgetExceeded
from repro.verify import Outcome, verify_source

from util import wrap_program


@pytest.fixture(autouse=True)
def _clean_plan():
    """Never leak an installed plan into other tests."""
    yield
    faults.install(None)


class TestSpecParsing:
    def test_site_kind(self):
        plan = faults.parse_plan("mso.compile:memory")
        with pytest.raises(MemoryError):
            plan.fire("mso.compile")
        plan.fire("exec.symbolic")  # other sites untouched

    def test_counted_rule_expires(self):
        plan = faults.parse_plan("verify.decide:error:2")
        for _ in range(2):
            with pytest.raises(RuntimeError):
                plan.fire("verify.decide")
        plan.fire("verify.decide")  # third reach: spent

    def test_unknown_site_rejected(self):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_plan("no.such.site:error")

    def test_unknown_kind_rejected(self):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_plan("mso.compile:frobnicate")

    def test_bad_count_rejected(self):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_plan("mso.compile:error:soon")

    def test_empty_env_clears_plan(self, monkeypatch):
        faults.install(faults.parse_plan("mso.compile:error"))
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.install_from_env()
        faults.fire("mso.compile")  # no plan left: silent

    def test_malformed_env_spec_is_a_usage_error(self, monkeypatch,
                                                 capsys):
        monkeypatch.setenv("REPRO_FAULTS", "bogus")
        assert main(["verify", "searchwf"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_every_kind_raises_expected_type(self):
        expectations = {
            "budget": BudgetExceeded,
            "timeout": BudgetExceeded,
            "memory": MemoryError,
            "error": RuntimeError,
            "recursion": RecursionError,
            "interrupt": KeyboardInterrupt,
        }
        # The crash kinds (exit/kill) terminate the process instead of
        # raising, so they cannot be fired in this test process; the
        # supervised-pool tests exercise them for real.
        assert (set(expectations) | set(faults.CRASH_KINDS)
                == set(faults.FAULT_KINDS))
        for kind, exc_type in expectations.items():
            plan = faults.parse_plan(f"mso.compile:{kind}")
            with pytest.raises(exc_type):
                plan.fire("mso.compile")

    def test_crash_kinds_parse(self):
        for kind in faults.CRASH_KINDS:
            faults.parse_plan(f"verify.decide:{kind}:1")

    def test_serve_sites_registered(self):
        assert set(faults.SERVE_SITES) == {
            "serve.worker_spawn", "serve.heartbeat",
            "serve.request_decode", "serve.cache_write"}
        for site in faults.SERVE_SITES:
            faults.parse_plan(f"{site}:error")


class TestPlanSerialisation:
    def test_to_spec_round_trips(self):
        spec = "mso.compile:memory,verify.decide:kill:2,exec.symbolic:error"
        plan = faults.parse_plan(spec)
        rebuilt = faults.parse_plan(plan.to_spec())
        assert rebuilt.to_spec() == plan.to_spec()
        assert "verify.decide:kill:2" in plan.to_spec()

    def test_to_spec_tracks_spent_counts(self):
        plan = faults.parse_plan("mso.compile:error:2")
        with pytest.raises(RuntimeError):
            plan.fire("mso.compile")
        assert plan.to_spec() == "mso.compile:error:1"

    def test_spent_rule_survives_round_trip_without_firing(self):
        plan = faults.parse_plan("mso.compile:error:1")
        with pytest.raises(RuntimeError):
            plan.fire("mso.compile")
        rebuilt = faults.parse_plan(plan.to_spec())
        rebuilt.fire("mso.compile")  # remaining 0: silent

    def test_consume_crash_decrements_counted_crash_rule(self):
        plan = faults.parse_plan("verify.decide:kill:1")
        assert plan.consume_crash() is True
        assert plan.consume_crash() is False
        plan.fire("verify.decide")  # spent: the respawned worker lives

    def test_consume_crash_ignores_unlimited_rules(self):
        # An unlimited crash rule means "every attempt dies" — the
        # quarantine path; the supervisor must not eat it.
        plan = faults.parse_plan("verify.decide:exit")
        assert plan.consume_crash() is False

    def test_consume_crash_ignores_non_crash_rules(self):
        plan = faults.parse_plan("mso.compile:error:3")
        assert plan.consume_crash() is False
        assert plan.to_spec() == "mso.compile:error:3"


from repro.programs import ALL_PROGRAMS

#: Sites that fire on every run.  ``verify.counterexample`` is only
#: reached when a subgoal fails, so it gets the failing programs;
#: the ``serve.*`` sites only fire on serving/supervision paths
#: (worker pools, the daemon, cache writes) and are driven by
#: :class:`TestServeSiteFaults` plus the supervised-pool and daemon
#: suites instead of the whole-corpus matrix.
_ALWAYS_SITES = tuple(site for site in faults.FAULT_SITES
                      if site != "verify.counterexample"
                      and site not in faults.SERVE_SITES)
_FAILING_PROGRAMS = ("swap", "fumble")

_MATRIX = ([(site, program) for site in _ALWAYS_SITES
            for program in sorted(ALL_PROGRAMS)]
           + [("verify.counterexample", program)
              for program in _FAILING_PROGRAMS])


class TestFaultMatrix:
    """Every site x the whole corpus: main() returns a documented exit
    code and, with --json, a parseable structured report — never a
    traceback."""

    @pytest.mark.parametrize("site,program", _MATRIX)
    def test_error_fault_yields_structured_outcome(self, site, program,
                                                   monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", f"{site}:error")
        code = main(["verify", program, "--json"])
        assert code in (0, 1, 3), (site, program)
        document = json.loads(capsys.readouterr().out)
        assert document["outcome"] in ("VERIFIED", "FAILED", "ERROR")
        if code == 3:
            degraded = [s for s in document["subgoals"]
                        if s["outcome"] == "ERROR"]
            assert degraded
            for subgoal in degraded:
                assert "injected fault" in subgoal["error"]

    @pytest.mark.parametrize("kind,outcome", [
        ("budget", "BUDGET_EXCEEDED"),
        ("timeout", "TIMEOUT"),
        ("memory", "ERROR"),
        ("error", "ERROR"),
        ("recursion", "ERROR"),
    ])
    def test_each_kind_maps_to_outcome(self, kind, outcome,
                                       monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", f"mso.compile:{kind}")
        assert main(["verify", "reverse", "--json"]) == 3
        document = json.loads(capsys.readouterr().out)
        assert document["outcome"] == outcome
        assert document["subgoals"][0]["outcome"] == outcome

    def test_interrupt_fault_exits_130_with_partial_json(
            self, monkeypatch, capsys):
        # Fire once, at the second subgoal: the first decides cleanly,
        # then Ctrl-C arrives; the partial report must still flush.
        monkeypatch.setenv("REPRO_FAULTS", "exec.symbolic:interrupt")
        assert main(["verify", "reverse", "--json"]) == 130
        document = json.loads(capsys.readouterr().out)
        assert document["interrupted"] is True
        assert document["outcome"] == "INTERRUPTED"
        assert document["valid"] is False

    def test_interrupt_outside_engine_exits_130(self, monkeypatch,
                                                capsys):
        monkeypatch.setenv("REPRO_FAULTS", "exec.symbolic:interrupt")
        assert main(["table", "reverse", "--json"]) == 130
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["interrupted"] is True


class TestServeSiteFaults:
    """The serving sites degrade gracefully where they fire: a failed
    cache write skips the store, a failed worker spawn is retried.
    (``serve.request_decode`` and ``serve.heartbeat`` are driven by
    the daemon and supervised-pool suites, where those paths exist.)"""

    def test_cache_write_fault_skips_store_not_run(self, tmp_path,
                                                   monkeypatch,
                                                   capsys):
        monkeypatch.setenv("REPRO_FAULTS", "serve.cache_write:error")
        assert main(["verify", "searchwf", "--json",
                     "--cache-dir", str(tmp_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["outcome"] == "VERIFIED"
        # Every store failed silently: nothing cached on disk.
        assert not list(tmp_path.rglob("*.pkl"))

    def test_worker_spawn_fault_is_retried(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_FAULTS", "serve.worker_spawn:error:1")
        assert main(["verify", "searchwf", "--json", "-j", "2"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["outcome"] == "VERIFIED"


class TestDegradationLadder:
    def test_one_shot_fault_recovers_on_retry(self):
        with faults.injected("verify.decide:error:1"):
            result = verify_source(
                wrap_program("  p := x", post="p = x"))
        (subgoal,) = result.results
        assert subgoal.valid
        assert subgoal.outcome is Outcome.VERIFIED
        assert subgoal.attempts == 2

    def test_persistent_fault_degrades(self):
        with faults.injected("verify.decide:error"):
            result = verify_source(
                wrap_program("  p := x", post="p = x"))
        (subgoal,) = result.results
        assert not subgoal.valid
        assert subgoal.outcome is Outcome.ERROR
        assert subgoal.attempts == 2
        assert "injected fault" in subgoal.error

    def test_retry_toggles_reduction_and_preserves_verdict(self):
        """The ladder's alternate attempt (reduction toggled) must
        reach the same verdicts, for a valid and a failing program."""
        for body, post, expected in (("  p := x", "p = x", True),
                                     ("  p := x", "p = nil", False)):
            source = wrap_program(body, post=post)
            baseline = verify_source(source)
            for reduce in (True, False):
                with faults.injected("verify.decide:budget:1"):
                    retried = verify_source(source, reduce=reduce)
                (subgoal,) = retried.results
                assert subgoal.attempts == 2
                assert retried.valid is baseline.valid is expected

    def test_timeout_fault_skips_retry(self):
        with faults.injected("verify.decide:timeout"):
            result = verify_source(
                wrap_program("  p := x", post="p = x"))
        (subgoal,) = result.results
        assert subgoal.outcome is Outcome.TIMEOUT
        assert subgoal.attempts == 1

    def test_counterexample_fault_degrades_failing_subgoal(self):
        with faults.injected("verify.counterexample:memory"):
            result = verify_source(
                wrap_program("  p := x", post="p = nil"))
        (subgoal,) = result.results
        assert subgoal.outcome is Outcome.ERROR
        assert "out-of-memory" in subgoal.error
