"""Tests for statement-level backward slicing of subgoals."""

from repro.analysis import (dropped_statements, slice_statements,
                            statement_count)
from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS
from repro.verify.engine import Verifier

HEADER = """\
program t;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
"""


def typed(body: str):
    return check_program(parse_program(HEADER + body + "\nend.\n"))


def run_slice(body: str, seeds=()):
    program = typed(body)
    return program, slice_statements(program.body, seeds,
                                     program.schema)


class TestSliceStatements:
    def test_dead_pure_copies_dropped(self):
        # Neither value reaches a check; both copies are step-free.
        _, result = run_slice("  p := nil;\n  q := x")
        assert (result.before, result.after) == (2, 0)
        assert result.statements == ()
        assert result.dropped == 2

    def test_check_seed_keeps_its_chain(self):
        _, result = run_slice("  p := nil;\n  q := x", seeds=["q"])
        assert result.after == 1
        assert "q := x" in str(result.statements[0])

    def test_data_variables_always_live(self):
        # x is a data variable: an assignment into it is never dead.
        _, result = run_slice("  x := q")
        assert result.after == 1

    def test_dereference_never_dropped(self):
        # q := p^.next can fail, and ~error observes the failure.
        _, result = run_slice("  p := x;\n  q := p^.next")
        assert result.after == 2

    def test_heap_write_never_dropped(self):
        _, result = run_slice("  p := x;\n  p^.next := nil")
        assert result.after == 2

    def test_new_never_dropped_but_later_copy_is(self):
        _, result = run_slice("  new(p, red);\n  q := p")
        assert result.after == 1
        assert "new" in str(result.statements[0])

    def test_dispose_disables_slicing_entirely(self):
        # dispose makes every final value observable (dangling
        # pointers fail wf_graph), so the slice is the identity.
        _, result = run_slice("  q := x;\n  p := x;\n"
                              "  dispose(p, red)")
        assert (result.before, result.after) == (3, 3)

    def test_conditional_dropped_whole(self):
        # Both branches slice empty and the guard cannot fail.
        _, result = run_slice("  if p = x then q := x else q := nil")
        assert (result.before, result.after) == (3, 0)

    def test_failing_guard_keeps_conditional(self):
        # A variant test dereferences, so the guard itself can error:
        # the conditional survives with empty branches.
        _, result = run_slice("  p := x;\n"
                              "  if p^.tag = red then q := x"
                              " else q := nil")
        assert result.after == 2  # p := x (guard var) + empty if

    def test_dereferencing_guard_keeps_conditional(self):
        _, result = run_slice("  p := x;\n"
                              "  if p^.next = nil then q := x"
                              " else q := nil")
        assert result.after == 2

    def test_branch_local_liveness(self):
        # q is live out of the conditional; both assignments stay.
        _, result = run_slice("  if p = x then q := x else q := nil",
                              seeds=["q"])
        assert result.after == 3


class TestDroppedStatements:
    def test_leaf_diff_in_source_order(self):
        # p := nil stays (it feeds the dereference); the final copy
        # into p is dead.
        program, result = run_slice("  p := nil;\n  q := p^.next;\n"
                                    "  p := x")
        dropped = dropped_statements(program.body, result.statements)
        assert [statement.line for statement in dropped] == [11]
        assert result.after == 2

    def test_conditional_branches_diffed(self):
        program, result = run_slice(
            "  p := x;\n"
            "  if p^.tag = red then q := x else q := nil")
        dropped = dropped_statements(program.body, result.statements)
        assert [statement.line for statement in dropped] == [10, 10]

    def test_nothing_dropped_is_empty(self):
        program, result = run_slice("  q := p^.next", seeds=["q"])
        assert dropped_statements(program.body,
                                  result.statements) == []


class TestStatementCount:
    def test_counts_recursively(self):
        program = typed("  p := x;\n"
                        "  if p = x then q := x else q := nil")
        assert statement_count(program.body) == 4


class TestVerifierSlicing:
    """The bundled scan program is the slicing showcase: its scratch
    variable t feeds no obligation."""

    def test_scan_subgoals_slice(self):
        program = check_program(parse_program(ALL_PROGRAMS["scan"]))
        result = Verifier(program).verify()
        assert result.outcome.value == "VERIFIED"
        assert result.statements_after < result.statements_before
        for subgoal_result in result.results:
            assert subgoal_result.statements_after <= \
                subgoal_result.statements_before

    def test_scan_verdict_identical_without_slicing(self):
        program = check_program(parse_program(ALL_PROGRAMS["scan"]))
        baseline = Verifier(program, slice=False, order=False).verify()
        sliced = Verifier(program).verify()
        assert baseline.outcome is sliced.outcome
        assert baseline.valid is sliced.valid
        assert baseline.statements_before == baseline.statements_after

    def test_corpus_slicing_never_grows(self):
        for name, source in ALL_PROGRAMS.items():
            program = check_program(parse_program(source))
            verifier = Verifier(program)
            for subgoal in verifier.collect_subgoals():
                plan = verifier._plan_subgoal(subgoal, verifier.reduce,
                                              True, False)
                assert plan.sliced.after <= plan.sliced.before, name
