"""Tests for the two well-formedness predicates.

``wf_string``'s language must be exactly the canonical encodings of
well-formed stores: every encoding of a well-formed store is accepted,
every accepted word decodes to a well-formed store, and hand-mutated
ill-formed words are rejected.  ``wf_graph`` over the initial
interpretation must be implied by ``wf_string``.
"""

import random

import pytest

from repro.errors import StoreError
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.stores.encode import (LABEL_GARB, LABEL_LIM, LABEL_NIL, Symbol,
                                 decode_store, encode_store, record_label)
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_graph, wf_string

from util import list_schema, random_store, terminator_schema


@pytest.fixture(scope="module")
def setting():
    schema = list_schema()
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    automaton = compiler.compile(wf_string(layout))
    return schema, compiler, layout, automaton


def _word(layout, compiler, symbols):
    return layout.symbols_to_word(symbols, compiler.tracks())


class TestAcceptsWellFormed:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_well_formed_encodings_accepted(self, setting, seed):
        schema, compiler, layout, automaton = setting
        store = random_store(schema, random.Random(seed))
        word = _word(layout, compiler, encode_store(store))
        assert automaton.accepts(word)


class TestLanguageIsDecodable:
    def test_accepted_words_decode_to_well_formed_stores(self, setting):
        """Enumerate shortest accepted words via product automata and
        check a sample decodes."""
        schema, compiler, layout, automaton = setting
        shortest = automaton.shortest_accepted()
        assert shortest is not None
        symbols = layout.word_to_symbols(shortest, compiler.tracks())
        store = decode_store(schema, symbols)
        assert store.is_well_formed()

    @pytest.mark.parametrize("seed", range(15))
    def test_mutated_encodings_match_decoder(self, setting, seed):
        """Random single-symbol mutations: the automaton accepts iff
        the decoder produces a well-formed store."""
        schema, compiler, layout, automaton = setting
        rng = random.Random(seed)
        store = random_store(schema, rng)
        symbols = list(encode_store(store))
        index = rng.randrange(len(symbols))
        labels = [LABEL_NIL, LABEL_LIM, LABEL_GARB,
                  record_label("Item", "red"),
                  record_label("Item", "blue")]
        names = list(schema.all_vars())
        bitmap = frozenset(n for n in names if rng.random() < 0.3)
        symbols[index] = Symbol(rng.choice(labels), bitmap)
        try:
            decoded = decode_store(schema, symbols)
            expected = decoded.is_well_formed()
        except StoreError:
            expected = False
        word = _word(layout, compiler, symbols)
        assert automaton.accepts(word) == expected, symbols


class TestRejections:
    def test_empty_word_rejected(self, setting):
        _, _, _, automaton = setting
        assert not automaton.accepts([])

    def test_missing_variable_rejected(self, setting):
        schema, compiler, layout, automaton = setting
        symbols = [Symbol(LABEL_NIL, frozenset({"x", "y", "p"})),
                   Symbol(LABEL_LIM, frozenset()),
                   Symbol(LABEL_LIM, frozenset())]  # q missing
        assert not automaton.accepts(_word(layout, compiler, symbols))

    def test_garbage_before_lim_rejected(self, setting):
        schema, compiler, layout, automaton = setting
        symbols = [Symbol(LABEL_NIL, frozenset(schema.all_vars())),
                   Symbol(LABEL_GARB, frozenset()),
                   Symbol(LABEL_LIM, frozenset()),
                   Symbol(LABEL_LIM, frozenset())]
        assert not automaton.accepts(_word(layout, compiler, symbols))

    def test_two_labels_on_one_position_rejected(self, setting):
        schema, compiler, layout, automaton = setting
        store = random_store(schema, random.Random(1))
        word = _word(layout, compiler, encode_store(store))
        lim_track = compiler.tracks()[layout.label_vars[LABEL_LIM]]
        word[0][lim_track] = True  # nil position also labelled lim
        assert not automaton.accepts(word)

    def test_no_label_rejected(self, setting):
        schema, compiler, layout, automaton = setting
        store = random_store(schema, random.Random(2))
        word = _word(layout, compiler, encode_store(store))
        nil_track = compiler.tracks()[layout.label_vars[LABEL_NIL]]
        word[0][nil_track] = False
        assert not automaton.accepts(word)


class TestTerminatorVariants:
    def test_nofield_cell_must_end_segment(self):
        schema = terminator_schema()
        compiler = Compiler()
        layout = TrackLayout(schema)
        layout.register(compiler)
        automaton = compiler.compile(wf_string(layout))
        good = [Symbol(LABEL_NIL, frozenset({"p"})),
                Symbol(record_label("Node", "cons"), frozenset({"x"})),
                Symbol(record_label("Node", "leaf"), frozenset()),
                Symbol(LABEL_LIM, frozenset())]
        bad = [Symbol(LABEL_NIL, frozenset({"p"})),
               Symbol(record_label("Node", "leaf"), frozenset({"x"})),
               Symbol(record_label("Node", "cons"), frozenset()),
               Symbol(LABEL_LIM, frozenset())]
        tracks = compiler.tracks()
        assert automaton.accepts(layout.symbols_to_word(good, tracks))
        assert not automaton.accepts(layout.symbols_to_word(bad, tracks))


class TestWfGraph:
    def test_wf_string_implies_wf_graph_of_initial(self):
        schema = list_schema()
        compiler = Compiler()
        layout = TrackLayout(schema)
        layout.register(compiler)
        state = initial_store(schema, layout)
        implication = F.implies(wf_string(layout), wf_graph(state))
        assert compiler.is_valid(implication)

    def test_wf_graph_alone_not_equivalent(self):
        """wf_graph over the initial interpretation is weaker than the
        canonical-encoding constraint (it ignores e.g. variable
        singleton-ness)."""
        schema = list_schema()
        compiler = Compiler()
        layout = TrackLayout(schema)
        layout.register(compiler)
        state = initial_store(schema, layout)
        reverse = F.implies(wf_graph(state), wf_string(layout))
        assert not compiler.is_valid(reverse)
