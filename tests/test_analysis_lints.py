"""Tests for the pointer lints: one positive and one negative case per
lint, plus the known-clean sweep over the bundled examples."""

import pathlib

import pytest

from repro.analysis import Severity, lint_source
from repro.programs import ALL_PROGRAMS

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

HEADER = """\
program t;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
"""


def lint(body: str):
    return lint_source(HEADER + body)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestNilDeref:
    def test_assigned_nil_then_dereferenced(self):
        found = lint("begin\n  p := nil;\n  p^.next := nil\nend.\n")
        assert "nil-deref" in codes(found)
        diagnostic = next(d for d in found if d.code == "nil-deref")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.line == 10
        assert "'p'" in diagnostic.message

    def test_precondition_fact(self):
        found = lint("begin\n  {p = nil}\n  q := p^.next\nend.\n")
        assert "nil-deref" in codes(found)

    def test_guard_refinement_flags_then_branch(self):
        found = lint("begin\n  p := x;\n"
                     "  if p = nil then q := p^.next else q := p\nend.\n")
        assert "nil-deref" in codes(found)

    def test_negative_guard_protects_dereference(self):
        found = lint("begin\n  p := nil;\n"
                     "  if p <> nil then q := p^.next\nend.\n")
        assert "nil-deref" not in codes(found)

    def test_negative_short_circuit_guard(self):
        # The right conjunct only evaluates once p <> nil held.
        found = lint("begin\n  p := nil;\n"
                     "  while p <> nil and p^.tag = red do\n"
                     "    p := p^.next\nend.\n")
        assert "nil-deref" not in codes(found)

    def test_negative_unknown_value(self):
        found = lint("begin\n  p := x;\n  q := p^.next\nend.\n")
        assert "nil-deref" not in codes(found)


class TestUseBeforeAssign:
    def test_read_of_unassigned_pointer(self):
        found = lint("begin\n  q := p\nend.\n")
        assert codes(found) == ["use-before-assign"]
        assert found[0].severity is Severity.WARNING
        assert found[0].line == 9
        assert "'p'" in found[0].message

    def test_reported_once_per_variable(self):
        found = lint("begin\n  q := p;\n  x := p\nend.\n")
        assert codes(found).count("use-before-assign") == 1

    def test_negative_annotated_variables_are_inputs(self):
        found = lint("begin\n  {p <> nil}\n  q := p\nend.\n")
        assert "use-before-assign" not in codes(found)

    def test_variable_free_annotation_exempts_nothing(self):
        # {true} mentions no variables, so it must not be treated as
        # annotating all of them (an empty set is a real answer, not
        # a parse failure).
        found = lint("begin\n  {true}\n  q := p\nend.\n")
        assert "use-before-assign" in codes(found)

    def test_negative_assignment_first(self):
        found = lint("begin\n  p := x;\n  q := p\nend.\n")
        assert "use-before-assign" not in codes(found)

    def test_positive_one_branch_only(self):
        found = lint("begin\n  if x = nil then p := x;\n  q := p\nend.\n")
        assert "use-before-assign" in codes(found)


class TestDeadAssignment:
    def test_value_never_used(self):
        found = lint("begin\n  p := x;\n  q := x\n  {x = nil}\nend.\n")
        dead = [d for d in found if d.code == "dead-assignment"]
        assert [d.line for d in dead] == [9, 10]
        assert all(d.severity is Severity.WARNING for d in dead)

    def test_overwritten_before_use(self):
        found = lint("begin\n  p := x;\n  p := nil\n  {p = nil}\nend.\n")
        dead = [d for d in found if d.code == "dead-assignment"]
        assert [d.line for d in dead] == [9]

    def test_negative_read_later(self):
        found = lint("begin\n  p := x;\n  q := p^.next\n"
                     "  {x = nil}\nend.\n")
        assert [d.line for d in found
                if d.code == "dead-assignment"] == [10]  # q, not p

    def test_negative_no_postcondition_keeps_all_live(self):
        found = lint("begin\n  p := x;\n  q := x\nend.\n")
        assert "dead-assignment" not in codes(found)

    def test_negative_annotation_counts_as_use(self):
        found = lint("begin\n  p := x\n  {p = nil}\nend.\n")
        assert "dead-assignment" not in codes(found)


class TestUnreachable:
    def test_infeasible_branch(self):
        found = lint("begin\n  p := nil;\n"
                     "  if p <> nil then q := x else q := nil\nend.\n")
        assert "unreachable" in codes(found)
        diagnostic = next(d for d in found if d.code == "unreachable")
        assert diagnostic.severity is Severity.WARNING
        assert diagnostic.line == 10

    def test_only_region_head_reported(self):
        found = lint("begin\n  p := nil;\n"
                     "  if p <> nil then begin\n"
                     "    q := x;\n    q := q^.next;\n    x := q\n"
                     "  end\nend.\n")
        assert codes(found).count("unreachable") == 1

    def test_negative_both_branches_possible(self):
        found = lint("begin\n  p := x;\n"
                     "  if p <> nil then q := x else q := nil\nend.\n")
        assert "unreachable" not in codes(found)


class TestBadAssertion:
    def test_unknown_variable(self):
        found = lint("begin\n  {nosuch = nil}\n  p := x\nend.\n")
        assert "bad-assertion" in codes(found)
        diagnostic = next(d for d in found if d.code == "bad-assertion")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.line == 9
        assert "nosuch" in diagnostic.message

    def test_unparseable_assertion(self):
        found = lint("begin\n  p := x\n  {p = }\nend.\n")
        assert "bad-assertion" in codes(found)

    def test_invariant_checked_too(self):
        found = lint("begin\n  while x <> nil do\n"
                     "    {x<wrongfield*>p}\n    x := x^.next\nend.\n")
        assert "bad-assertion" in codes(found)

    def test_negative_valid_annotations(self):
        found = lint("begin\n  {x <> nil}\n  p := x\n"
                     "  {x<next*>p}\nend.\n")
        assert "bad-assertion" not in codes(found)


class TestLostCell:
    def test_overwrite_last_reference(self):
        found = lint("begin\n  new(p, red);\n  p := nil\nend.\n")
        assert "lost-cell" in codes(found)
        diagnostic = next(d for d in found if d.code == "lost-cell")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.line == 10
        assert "line 9" in diagnostic.message

    def test_reallocation_leaks_previous_cell(self):
        found = lint("begin\n  new(p, red);\n  new(p, blue);\n"
                     "  q := p\nend.\n")
        lost = [d for d in found if d.code == "lost-cell"]
        assert [d.line for d in lost] == [10]
        assert "line 9" in lost[0].message

    def test_negative_surviving_alias(self):
        found = lint("begin\n  new(p, red);\n  q := p;\n"
                     "  p := nil;\n  x := q\nend.\n")
        assert "lost-cell" not in codes(found)

    def test_negative_escaped_through_heap(self):
        # p^.next := p publishes the address; the heap may be the
        # only remaining route, so overwriting p is not a leak.
        found = lint("begin\n  new(p, red);\n  p^.next := p;\n"
                     "  p := nil\nend.\n")
        assert "lost-cell" not in codes(found)

    def test_negative_disposed_before_overwrite(self):
        found = lint("begin\n  new(p, red);\n  dispose(p, red);\n"
                     "  p := nil\nend.\n")
        assert "lost-cell" not in codes(found)

    def test_negative_may_alias_on_one_branch(self):
        # The may-set keeps q after the join, so no definite leak.
        found = lint("begin\n  new(p, red);\n"
                     "  if x = nil then q := p else q := nil;\n"
                     "  p := nil;\n  x := q\nend.\n")
        assert "lost-cell" not in codes(found)

    def test_negative_allocation_into_heap_field(self):
        # A cell allocated at p^.next is heap-reachable by
        # construction; nothing to track.
        found = lint("begin\n  new(p, red);\n  new(p^.next, red);\n"
                     "  q := p\nend.\n")
        assert "lost-cell" not in codes(found)


class TestFrontEnd:
    def test_parse_error_becomes_diagnostic(self):
        found = lint_source("program broken; begin x := ; end.")
        assert codes(found) == ["front-end"]
        assert found[0].severity is Severity.ERROR
        assert found[0].line > 0


class TestCleanSweep:
    """No false positives on the bundled corpus (satellite task)."""

    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_bundled_program_is_clean(self, name):
        assert lint_source(ALL_PROGRAMS[name]) == []

    def test_examples_directory_matches_bundled_programs(self):
        on_disk = {path.stem: path.read_text(encoding="utf-8")
                   for path in EXAMPLES.glob("*.pas")}
        assert on_disk == ALL_PROGRAMS

    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_example_file_is_clean(self, name):
        source = (EXAMPLES / f"{name}.pas").read_text(encoding="utf-8")
        assert lint_source(source) == []
