"""Tests for the supervised worker pool (repro.parallel.supervise).

The pool's contract is *every submitted task is answered*: by a
worker reply, a quarantine notice (:class:`CrashReply`) or a shutdown
notice — never silence.  These tests kill, hang and starve workers in
every way the fault model names and assert that contract holds with
no orphan processes left behind.
"""

import os
import queue
import time

import pytest

from repro.parallel.supervise import (CrashReply, SupervisedPool,
                                      run_supervised)
from repro.robust import faults

from diffcheck import assert_no_orphans


# ----------------------------------------------------------------------
# Module-level task functions (must be importable from worker
# processes)
# ----------------------------------------------------------------------

def echo_task(payload):
    return ("echo", payload)


def slow_echo_task(payload):
    time.sleep(0.3)
    return ("echo", payload)


def crash_task(payload):
    """Dies hard — no reply, no cleanup — when told to."""
    if payload == "die":
        os._exit(7)
    return ("ok", payload)


def crash_once_task(payload):
    """Dies on the first attempt only: ``payload`` is a sentinel path
    that survives the crash and pacifies the retry."""
    if not os.path.exists(payload):
        with open(payload, "w") as handle:
            handle.write("seen")
        os._exit(7)
    return ("ok", payload)


def sleep_task(payload):
    time.sleep(30.0)
    return ("never", payload)


def fire_decide_task(payload):
    """Runs the worker's installed fault plan at the decide site —
    the unit-level analogue of the engine's per-attempt hook."""
    faults.fire("verify.decide")
    return ("ok", payload)


@pytest.fixture(autouse=True)
def _no_orphans():
    yield
    assert_no_orphans()


class TestHappyPath:
    def test_every_task_answered(self):
        pool = SupervisedPool(echo_task, jobs=2)
        out = queue.Queue()
        try:
            for index in range(8):
                pool.submit(index, key=index, on_done=out.put)
            replies = [out.get(timeout=30) for _ in range(8)]
        finally:
            pool.close()
        assert sorted(payload for _, payload in replies) == list(range(8))
        assert pool.outstanding == 0

    def test_stats_shape(self):
        pool = SupervisedPool(echo_task, jobs=2)
        out = queue.Queue()
        try:
            pool.submit("x", key="x", on_done=out.put)
            out.get(timeout=30)
            stats = pool.stats()
        finally:
            pool.close()
        assert stats["jobs"] == 2
        assert stats["quarantined"] == 0
        for worker in stats["workers"]:
            assert worker["state"] in ("busy", "idle")
            assert worker["pid"] > 0

    def test_batch_wrapper_preserves_replies(self):
        replies = []
        interrupted = run_supervised(
            ["a", "b", "c"], [0, 1, 2], echo_task, 2,
            lambda reply: replies.append(reply) and False)
        assert interrupted is False
        assert sorted(payload for _, payload in replies) == \
            ["a", "b", "c"]


class TestCrashRecovery:
    def test_poison_task_quarantined_others_survive(self):
        pool = SupervisedPool(crash_task, jobs=2, max_attempts=2)
        out = queue.Queue()
        try:
            pool.submit("die", key="poison", on_done=out.put)
            for index in range(4):
                pool.submit(f"ok-{index}", key=index, on_done=out.put)
            replies = [out.get(timeout=60) for _ in range(5)]
        finally:
            pool.close()
        crashes = [r for r in replies if isinstance(r, CrashReply)]
        healthy = [r for r in replies if not isinstance(r, CrashReply)]
        assert len(crashes) == 1
        assert crashes[0].key == "poison"
        assert crashes[0].attempts == 2
        assert crashes[0].reason == "crashed"
        assert crashes[0].exitcode == 7
        assert "quarantined" in crashes[0].describe()
        assert sorted(p for _, p in healthy) == \
            [f"ok-{i}" for i in range(4)]
        assert pool.stats()["quarantined"] == 1

    def test_crash_once_retried_to_success(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        pool = SupervisedPool(crash_once_task, jobs=1, max_attempts=3)
        out = queue.Queue()
        try:
            pool.submit(sentinel, key=0, on_done=out.put)
            reply = out.get(timeout=60)
        finally:
            pool.close()
        assert reply == ("ok", sentinel)
        assert pool.stats()["restarts"] >= 1

    def test_hung_worker_detected_and_quarantined(self):
        # An injected heartbeat fault silently kills each worker's
        # beat thread; a busy worker without a heartbeat is exactly
        # what a deadlocked or SIGSTOPped worker looks like from the
        # supervisor's chair.
        pool = SupervisedPool(sleep_task, jobs=1, max_attempts=2,
                              faults_spec="serve.heartbeat:error",
                              hang_timeout=0.8)
        out = queue.Queue()
        try:
            pool.submit("x", key="hung", on_done=out.put)
            reply = out.get(timeout=60)
        finally:
            pool.close()
        assert isinstance(reply, CrashReply)
        assert reply.reason == "hung"
        assert reply.attempts == 2

    def test_counted_kill_rule_consumed_on_respawn(self):
        # verify.decide:kill:1 must mean "exactly one crash", not
        # "every fresh worker crashes once": the supervisor accounts
        # the observed death against the rule before respawning.
        pool = SupervisedPool(fire_decide_task, jobs=1, max_attempts=3,
                              faults_spec="verify.decide:kill:1")
        out = queue.Queue()
        try:
            for index in range(3):
                pool.submit(index, key=index, on_done=out.put)
            replies = [out.get(timeout=60) for _ in range(3)]
        finally:
            pool.close()
        assert all(reply[0] == "ok" for reply in replies)
        assert pool.stats()["restarts"] == 1


class TestSpawnFailure:
    def test_unspawnable_pool_answers_everything(self):
        with faults.injected("serve.worker_spawn:error"):
            pool = SupervisedPool(echo_task, jobs=2, max_attempts=2)
            out = queue.Queue()
            try:
                for index in range(3):
                    pool.submit(index, key=index, on_done=out.put)
                replies = [out.get(timeout=60) for _ in range(3)]
            finally:
                pool.close(drain=False)
        assert all(isinstance(r, CrashReply) for r in replies)
        assert {r.reason for r in replies} <= {"spawn-failed",
                                               "shutdown"}

    def test_spawn_fault_retried_once_recovers(self):
        with faults.injected("serve.worker_spawn:error:1"):
            pool = SupervisedPool(echo_task, jobs=1)
            out = queue.Queue()
            try:
                pool.submit("x", key=0, on_done=out.put)
                reply = out.get(timeout=60)
            finally:
                pool.close()
        assert reply == ("echo", "x")


class TestShutdown:
    def test_terminate_answers_outstanding_with_shutdown(self):
        pool = SupervisedPool(sleep_task, jobs=1)
        out = queue.Queue()
        pool.submit("a", key="a", on_done=out.put)
        pool.submit("b", key="b", on_done=out.put)
        time.sleep(0.3)  # let the first task start
        pool.terminate()
        replies = [out.get(timeout=30) for _ in range(2)]
        assert all(isinstance(r, CrashReply) for r in replies)
        assert {r.reason for r in replies} == {"shutdown"}

    def test_submit_after_close_answers_immediately(self):
        pool = SupervisedPool(echo_task, jobs=1)
        pool.close()
        out = queue.Queue()
        pool.submit("late", key="late", on_done=out.put)
        reply = out.get(timeout=5)
        assert isinstance(reply, CrashReply)
        assert reply.reason == "shutdown"

    def test_drain_close_finishes_queued_work(self):
        pool = SupervisedPool(slow_echo_task, jobs=2)
        out = queue.Queue()
        for index in range(4):
            pool.submit(index, key=index, on_done=out.put)
        pool.close(drain=True)
        replies = [out.get(timeout=5) for _ in range(4)]
        assert sorted(p for _, p in replies) == list(range(4))

    def test_close_is_idempotent(self):
        pool = SupervisedPool(echo_task, jobs=1)
        pool.close()
        pool.close()
        pool.terminate()
