"""Tests for the command-line driver."""

import pytest

from repro.cli import main
from repro.programs import ALL_PROGRAMS


class TestListAndShow:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("reverse", "swap", "zip"):
            assert name in out

    def test_show(self, capsys):
        assert main(["show", "reverse"]) == 0
        out = capsys.readouterr().out
        assert out == ALL_PROGRAMS["reverse"]

    def test_show_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["show", "nonexistent"])


class TestVerify:
    def test_verify_bundled_valid(self, capsys):
        assert main(["verify", "searchwf"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_bundled_invalid(self, capsys):
        assert main(["verify", "swap", "--no-simulate"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "counterexample" in out

    def test_verify_file(self, tmp_path, capsys):
        path = tmp_path / "prog.pas"
        path.write_text(ALL_PROGRAMS["swapfix"])
        assert main(["verify", str(path)]) == 0

    def test_verbose_flag(self, capsys):
        assert main(["verify", "searchwf", "--verbose"]) == 0
        assert "check:" in capsys.readouterr().out

    def test_front_end_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "broken.pas"
        path.write_text("program broken; begin x := ; end.")
        assert main(["verify", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self):
        with pytest.raises(OSError):
            main(["verify", "/nonexistent/path.pas"])


class TestTable:
    def test_table_subset(self, capsys):
        assert main(["table", "searchwf"]) == 0
        out = capsys.readouterr().out
        assert "Program" in out
        assert "searchwf" in out

    def test_table_reports_failures(self, capsys):
        assert main(["table", "searchwf", "fumble"]) == 1
        assert "NO" in capsys.readouterr().out


class TestSynth:
    def test_synthesizes_smallest_store(self, capsys):
        assert main(["synth", "x<next*>p & <(List:blue)?>p"]) == 0
        out = capsys.readouterr().out
        assert "string:" in out
        assert "(Item:blue)" in out

    def test_unsatisfiable(self, capsys):
        assert main(["synth", "x <> x"]) == 1
        assert "unsatisfiable" in capsys.readouterr().out

    def test_schema_from_file(self, tmp_path, capsys):
        path = tmp_path / "prog.pas"
        path.write_text(ALL_PROGRAMS["triple"])
        assert main(["synth", "q <> nil", "--program", str(path)]) == 0
        assert "q" in capsys.readouterr().out

    def test_bad_formula_reports_error(self, capsys):
        assert main(["synth", "x <"]) == 2
        assert "error:" in capsys.readouterr().err
