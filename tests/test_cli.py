"""Tests for the command-line driver."""

import json

import pytest

from repro.cli import main
from repro.programs import ALL_PROGRAMS


class TestListAndShow:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("reverse", "swap", "zip"):
            assert name in out

    def test_show(self, capsys):
        assert main(["show", "reverse"]) == 0
        out = capsys.readouterr().out
        assert out == ALL_PROGRAMS["reverse"]

    def test_show_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["show", "nonexistent"])


class TestVerify:
    def test_verify_bundled_valid(self, capsys):
        assert main(["verify", "searchwf"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_verify_bundled_invalid(self, capsys):
        assert main(["verify", "swap", "--no-simulate"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "counterexample" in out

    def test_verify_file(self, tmp_path, capsys):
        path = tmp_path / "prog.pas"
        path.write_text(ALL_PROGRAMS["swapfix"])
        assert main(["verify", str(path)]) == 0

    def test_verbose_flag(self, capsys):
        assert main(["verify", "searchwf", "--verbose"]) == 0
        assert "check:" in capsys.readouterr().out

    def test_front_end_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "broken.pas"
        path.write_text("program broken; begin x := ; end.")
        assert main(["verify", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self):
        with pytest.raises(OSError):
            main(["verify", "/nonexistent/path.pas"])


class TestObservabilityFlags:
    def test_json_report(self, capsys):
        assert main(["verify", "searchwf", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 2
        assert document["program"] == "searchwf"
        assert document["valid"] is True
        assert document["outcome"] == "VERIFIED"
        assert document["stats"]["bdd_apply_hits"] > 0
        assert document["stats"]["bdd_apply_misses"] > 0
        assert document["stats"]["peak_nodes"] > 0
        for subgoal in document["subgoals"]:
            assert subgoal["span"]["name"] == "subgoal"

    def test_json_failing_program_still_valid_json(self, capsys):
        assert main(["verify", "swap", "--no-simulate", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["valid"] is False
        assert any(subgoal["counterexample"]
                   for subgoal in document["subgoals"])

    def test_profile_prints_timing_tree(self, capsys):
        assert main(["verify", "searchwf", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert "timing (" in out
        for phase in ("exec.symbolic", "translate", "compile",
                      "universality"):
            assert phase in out

    def test_trace_records_operation_spans(self, capsys):
        assert main(["verify", "searchwf", "--trace", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        names = set()

        def collect(span):
            names.add(span["name"])
            for child in span["children"]:
                collect(child)

        for subgoal in document["subgoals"]:
            collect(subgoal["span"])
        assert "automata.product" in names
        assert "automata.minimize" in names

    def test_repro_trace_env_acts_like_trace(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert main(["verify", "searchwf", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        spans = json.dumps(out["subgoals"])
        assert "automata.product" in spans

    def test_repro_trace_zero_is_disabled(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert main(["verify", "searchwf"]) == 0
        out = capsys.readouterr().out
        assert "timing (" not in out

    def test_table_json(self, capsys):
        assert main(["table", "searchwf", "--json"]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [doc["program"] for doc in documents] == ["searchwf"]
        assert documents[0]["valid"] is True


class TestTable:
    def test_table_subset(self, capsys):
        assert main(["table", "searchwf"]) == 0
        out = capsys.readouterr().out
        assert "Program" in out
        assert "searchwf" in out

    def test_table_reports_failures(self, capsys):
        assert main(["table", "searchwf", "fumble"]) == 1
        assert "NO" in capsys.readouterr().out


class TestBudgetFlags:
    def test_timeout_degrades_to_exit_3(self, capsys):
        assert main(["verify", "reverse", "--timeout", "0"]) == 3
        out = capsys.readouterr().out
        assert "TIMEOUT" in out

    def test_timeout_json_is_structured(self, capsys):
        assert main(["verify", "reverse", "--timeout", "0",
                     "--json"]) == 3
        document = json.loads(capsys.readouterr().out)
        assert document["outcome"] == "TIMEOUT"
        assert document["valid"] is False
        assert document["budget"]["timeout"] == 0.0
        for subgoal in document["subgoals"]:
            assert subgoal["outcome"] == "TIMEOUT"
            assert subgoal["error"]

    def test_max_states_cap_trips_budget(self, capsys):
        assert main(["verify", "reverse", "--max-states", "2",
                     "--json"]) == 3
        document = json.loads(capsys.readouterr().out)
        assert document["outcome"] == "BUDGET_EXCEEDED"
        tripped = document["subgoals"][0]["budget"]["tripped"]
        assert tripped["limit"] == "automaton_states"

    def test_generous_budget_keeps_verdict(self, capsys):
        assert main(["verify", "searchwf", "--timeout", "600",
                     "--max-bdd-nodes", "100000000"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_table_timeout_keep_going(self, capsys):
        assert main(["table", "searchwf", "--timeout", "0",
                     "--keep-going", "--json"]) == 3
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["outcome"] == "TIMEOUT"

    def test_table_keep_going_records_error_rows(self, capsys):
        assert main(["table", "searchwf", "/nonexistent/x.pas",
                     "--keep-going"]) == 3
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert "yes" in out

    def test_exit_code_table_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["verify", "--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "130" in out


class TestJobsFlag:
    def test_verify_parallel_matches_sequential_shape(self, capsys):
        assert main(["verify", "searchwf", "--json"]) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert main(["verify", "searchwf", "--json", "-j", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["schema_version"] == 2
        assert set(parallel) == set(sequential)
        assert parallel["valid"] is sequential["valid"] is True
        assert parallel["stats"] == sequential["stats"]
        assert len(parallel["subgoals"]) == len(sequential["subgoals"])

    def test_jobs_zero_resolves_to_cpu_count(self, capsys):
        assert main(["verify", "searchwf", "--jobs", "0"]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_table_jobs_flag(self, capsys):
        assert main(["table", "searchwf", "fumble", "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert "searchwf" in out
        assert "NO" in out

    def test_table_jobs_keep_going_error_rows(self, capsys):
        assert main(["table", "searchwf", "/nonexistent/x.pas",
                     "--keep-going", "--jobs", "2"]) == 3
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert "yes" in out

    def test_negative_jobs_rejected(self, capsys):
        assert main(["verify", "searchwf", "-j", "-2"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_parallel_interrupt_exits_130_with_partial_json(
            self, capsys, monkeypatch):
        # Ctrl-C inside a worker: the pool is terminated (no orphan
        # outlives the run), the partial --json report is still
        # flushed, and the driver exits 130 like the sequential path.
        import multiprocessing
        monkeypatch.setenv("REPRO_FAULTS", "exec.symbolic:interrupt")
        code = main(["verify", "reverse", "--json", "-j", "2"])
        assert code == 130
        document = json.loads(capsys.readouterr().out)
        assert document["interrupted"] is True
        assert document["outcome"] == "INTERRUPTED"
        assert multiprocessing.active_children() == []


class TestSynth:
    def test_synthesizes_smallest_store(self, capsys):
        assert main(["synth", "x<next*>p & <(List:blue)?>p"]) == 0
        out = capsys.readouterr().out
        assert "string:" in out
        assert "(Item:blue)" in out

    def test_unsatisfiable(self, capsys):
        assert main(["synth", "x <> x"]) == 1
        assert "unsatisfiable" in capsys.readouterr().out

    def test_schema_from_file(self, tmp_path, capsys):
        path = tmp_path / "prog.pas"
        path.write_text(ALL_PROGRAMS["triple"])
        assert main(["synth", "q <> nil", "--program", str(path)]) == 0
        assert "q" in capsys.readouterr().out

    def test_bad_formula_reports_error(self, capsys):
        assert main(["synth", "x <"]) == 2
        assert "error:" in capsys.readouterr().err


BAD_PROGRAM = """\
program bad;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
  p := nil;
  q := p^.next
end.
"""

WARN_PROGRAM = """\
program warn;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
  q := p
end.
"""


class TestLint:
    def test_clean_bundled_program(self, capsys):
        assert main(["lint", "searchwf"]) == 0
        assert capsys.readouterr().out == ""

    def test_clean_example_files(self, capsys):
        import pathlib
        examples = sorted(str(path) for path in
                          (pathlib.Path(__file__).resolve().parent.parent
                           / "examples").glob("*.pas"))
        assert examples
        assert main(["lint"] + examples) == 0
        assert capsys.readouterr().out == ""

    def test_error_diagnostic_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.pas"
        path.write_text(BAD_PROGRAM)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "nil-deref" in out
        assert f"{path}:10:" in out
        assert "1 error(s)" in out

    def test_warnings_exit_zero_without_strict(self, tmp_path, capsys):
        path = tmp_path / "warn.pas"
        path.write_text(WARN_PROGRAM)
        assert main(["lint", str(path)]) == 0
        assert "use-before-assign" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        path = tmp_path / "warn.pas"
        path.write_text(WARN_PROGRAM)
        assert main(["lint", "--strict", str(path)]) == 1

    def test_json_envelope(self, tmp_path, capsys):
        path = tmp_path / "bad.pas"
        path.write_text(BAD_PROGRAM)
        assert main(["lint", "--json", str(path), "searchwf"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == 1
        assert report["errors"] == 1
        assert [t["file"] for t in report["targets"]] == \
            [str(path), "searchwf"]
        diagnostic = report["targets"][0]["diagnostics"][0]
        assert diagnostic["code"] == "nil-deref"
        assert diagnostic["severity"] == "error"
        assert diagnostic["line"] == 10
        assert report["targets"][1]["diagnostics"] == []

    def test_front_end_error_is_a_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "broken.pas"
        path.write_text("program broken; begin x := ; end.")
        assert main(["lint", str(path)]) == 1
        assert "front-end" in capsys.readouterr().out


class TestAnalyze:
    def test_text_report_shows_slice_and_order(self, capsys):
        assert main(["analyze", "scan"]) == 0
        out = capsys.readouterr().out
        assert "program scan" in out
        assert "statements: " in out
        assert "- line " in out  # scan's dead copies of t
        assert "tracks: " in out
        assert "fingerprint: " in out

    def test_json_report(self, capsys):
        assert main(["analyze", "scan", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1
        assert document["program"] == "scan"
        assert document["options"] == {"reduce": True, "slice": True,
                                       "order": True}
        assert document["subgoals"]
        assert any(entry["statements_after"] <
                   entry["statements_before"]
                   for entry in document["subgoals"])
        for entry in document["subgoals"]:
            assert len(entry["fingerprint"]) == 64
            dropped = (entry["statements_before"]
                       - entry["statements_after"])
            assert len(entry["dropped_statements"]) == dropped

    def test_no_slice_drops_nothing(self, capsys):
        assert main(["analyze", "scan", "--json",
                     "--no-slice"]) == 0
        document = json.loads(capsys.readouterr().out)
        for entry in document["subgoals"]:
            assert entry["statements_after"] == \
                entry["statements_before"]
            assert entry["dropped_statements"] == []

    def test_no_order_is_declaration_order(self, capsys):
        assert main(["analyze", "scan", "--json",
                     "--no-order"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert all(not entry["reordered"]
                   for entry in document["subgoals"])

    def test_analyze_file(self, tmp_path, capsys):
        path = tmp_path / "prog.pas"
        path.write_text(ALL_PROGRAMS["reverse"])
        assert main(["analyze", str(path)]) == 0
        assert "subgoal(s)" in capsys.readouterr().out


class TestCacheFlags:
    def test_cold_then_warm_verify(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["verify", "scan", "--json",
                     "--cache-dir", cache]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache_hits"] == 0
        assert main(["verify", "scan", "--json",
                     "--cache-dir", cache]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["valid"] is True
        assert warm["cache_hits"] == len(warm["subgoals"])
        assert warm["stats"] == cold["stats"]
        for subgoal in warm["subgoals"]:
            assert subgoal["cache"]["hit"] is True

    def test_no_cache_forces_cold_run(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["verify", "scan", "--json",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["verify", "scan", "--json",
                     "--cache-dir", cache, "--no-cache"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["cache_hits"] == 0
        for subgoal in document["subgoals"]:
            assert subgoal["cache"] is None

    def test_corrupt_cache_is_ignored(self, tmp_path, capsys):
        import pathlib
        cache = tmp_path / "cache"
        assert main(["verify", "scan", "--json",
                     "--cache-dir", str(cache)]) == 0
        capsys.readouterr()
        entries = list(pathlib.Path(cache).rglob("*.pkl"))
        assert entries
        for entry in entries:
            entry.write_bytes(b"garbage")
        assert main(["verify", "scan", "--json",
                     "--cache-dir", str(cache)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["valid"] is True
        assert document["cache_hits"] == 0

    def test_warm_hit_marked_in_text_report(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["verify", "scan", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["verify", "scan", "--cache-dir", cache]) == 0
        assert ", cached" in capsys.readouterr().out

    def test_table_cache_flags(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["table", "searchwf", "--json",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["table", "searchwf", "--json",
                     "--cache-dir", cache]) == 0
        documents = json.loads(capsys.readouterr().out)
        assert documents[0]["cache_hits"] == \
            len(documents[0]["subgoals"])

    def test_parallel_workers_share_the_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["verify", "scan", "--json",
                     "--cache-dir", cache, "-j", "2"]) == 0
        capsys.readouterr()
        assert main(["verify", "scan", "--json",
                     "--cache-dir", cache, "-j", "2"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["cache_hits"] == len(document["subgoals"])


class TestNoReduce:
    def test_verify_no_reduce(self, capsys):
        assert main(["verify", "searchwf", "--no-reduce", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tracks_before"] == report["tracks_after"] > 0

    def test_verify_reduce_default_drops_tracks(self, capsys):
        assert main(["verify", "reverse", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tracks_after"] < report["tracks_before"]
        for subgoal in report["subgoals"]:
            assert subgoal["tracks_after"] <= subgoal["tracks_before"]
