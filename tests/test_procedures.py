"""Tests for (non-recursive) procedures — the paper's §2 note that
"recursive procedures are easily accommodated" covers the mechanism:
parameterless procedures over the globals, inlined at check time."""

import pytest

from repro.errors import TypeError_
from repro.pascal import ast, check_program, parse_program
from repro.pascal.pretty import pretty_program
from repro.pascal import typed
from repro.exec.interpreter import Interpreter
from repro.stores import Store
from repro.verify import verify_source

WITH_PROCS = """
program procs;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x, y: List;
{pointer} var p: List;
procedure step;
begin
  p := x^.next;
  x^.next := y;
  y := x;
  x := p
end;
begin
  {y = nil}
  while x <> nil do
    step
  {x = nil}
end.
"""


class TestParsing:
    def test_procedure_parsed(self):
        program = parse_program(WITH_PROCS)
        assert len(program.procedures) == 1
        assert program.procedures[0].name == "step"
        assert len(program.procedures[0].body) == 4

    def test_call_parsed(self):
        program = parse_program(WITH_PROCS)
        loop = program.body[0]
        assert loop.body == (ast.ProcCall("step", loop.body[0].line),)

    def test_pretty_roundtrip(self):
        once = pretty_program(parse_program(WITH_PROCS))
        assert pretty_program(parse_program(once)) == once
        assert "procedure step;" in once


class TestInlining:
    def test_call_splices_body(self):
        program = check_program(parse_program(WITH_PROCS))
        loop = program.body[0]
        assert isinstance(loop, typed.TWhile)
        assert len(loop.body) == 4
        assert all(isinstance(s, typed.TAssign) for s in loop.body)

    def test_nested_procedures(self):
        source = WITH_PROCS.replace(
            "begin\n  {y = nil}",
            "procedure twice;\nbegin\n  step;\n  step\nend;\n"
            "begin\n  {y = nil}").replace(
            "  while x <> nil do\n    step", "  twice")
        program = check_program(parse_program(source))
        assert len(program.body) == 8  # two inlined copies of step

    def test_unknown_procedure(self):
        source = WITH_PROCS.replace("    step", "    missing")
        with pytest.raises(TypeError_, match="unknown procedure"):
            check_program(parse_program(source))

    def test_recursion_rejected(self):
        source = WITH_PROCS.replace(
            "procedure step;\nbegin\n  p := x^.next;",
            "procedure step;\nbegin\n  step;\n  p := x^.next;")
        with pytest.raises(TypeError_, match="recursive"):
            check_program(parse_program(source))

    def test_mutual_recursion_rejected(self):
        source = WITH_PROCS.replace(
            "begin\n  {y = nil}",
            "procedure other;\nbegin\n  step\nend;\n"
            "begin\n  {y = nil}").replace(
            "  p := x^.next;", "  other;\n  p := x^.next;")
        with pytest.raises(TypeError_, match="recursive"):
            check_program(parse_program(source))

    def test_name_collision_with_variable(self):
        source = WITH_PROCS.replace("procedure step;", "procedure x;") \
            .replace("    step", "    x")
        with pytest.raises(TypeError_, match="collides"):
            check_program(parse_program(source))

    def test_duplicate_procedure(self):
        source = WITH_PROCS.replace(
            "begin\n  {y = nil}",
            "procedure step;\nbegin\n  p := nil\nend;\n"
            "begin\n  {y = nil}")
        with pytest.raises(TypeError_, match="twice"):
            check_program(parse_program(source))

    def test_body_is_type_checked(self):
        source = WITH_PROCS.replace("p := x^.next;", "p := x^.prev;")
        with pytest.raises(TypeError_):
            check_program(parse_program(source))


class TestSemantics:
    def test_verifies_like_reverse(self):
        result = verify_source(WITH_PROCS)
        assert result.valid

    def test_concrete_execution(self):
        program = check_program(parse_program(WITH_PROCS))
        store = Store(program.schema)
        store.make_list("x", ["red", "blue"])
        Interpreter(program).run(store)
        variants = [store.cell(i).variant for i in store.list_of("y")]
        assert variants == ["blue", "red"]

    def test_procedures_with_assertions_inside(self):
        source = """
program cut;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p: List;
procedure reset;
begin
  p := nil
  {p = nil}
end;
begin
  reset;
  p := x
  {p = x}
end.
"""
        result = verify_source(source)
        assert result.valid
        assert len(result.results) == 2  # the inlined cut point splits
