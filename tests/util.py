"""Shared helpers for the test suite.

Provides the paper's canonical list schema, store builders, random
store/program generators for differential tests, and small brute-force
oracles.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.stores.model import NIL_ID, Store
from repro.stores.schema import FieldInfo, RecordType, Schema

VARIANTS = ("red", "blue")


def list_schema(data_vars: Tuple[str, ...] = ("x", "y"),
                pointer_vars: Tuple[str, ...] = ("p", "q")) -> Schema:
    """The paper's Color/List/Item schema with the given variables."""
    schema = Schema(
        enums={"Color": VARIANTS},
        records={"Item": RecordType(
            "Item", "tag", "Color",
            {"red": FieldInfo("next", "Item"),
             "blue": FieldInfo("next", "Item")})},
        data_vars={name: "Item" for name in data_vars},
        pointer_vars={name: "Item" for name in pointer_vars},
        pointer_aliases={"List": "Item"},
    )
    schema.validate()
    return schema


def terminator_schema() -> Schema:
    """A schema whose ``leaf`` variant has no pointer field."""
    schema = Schema(
        enums={"Kind": ("cons", "leaf")},
        records={"Node": RecordType(
            "Node", "tag", "Kind",
            {"cons": FieldInfo("next", "Node"), "leaf": None})},
        data_vars={"x": "Node"},
        pointer_vars={"p": "Node"},
        pointer_aliases={"NodePtr": "Node"},
    )
    schema.validate()
    return schema


def store_with_lists(schema: Schema,
                     lists: Dict[str, List[str]],
                     pointers: Optional[Dict[str, Tuple[str, int]]] = None,
                     garbage: int = 0) -> Store:
    """Build a well-formed store.

    ``lists`` maps each data variable to its variant sequence;
    ``pointers`` maps pointer variables to (data var, index) cells
    (omitted pointer variables stay nil); ``garbage`` adds that many
    garbage cells.
    """
    store = Store(schema)
    cell_ids: Dict[str, List[int]] = {}
    for name in schema.data_vars:
        cell_ids[name] = store.make_list(name, lists.get(name, []))
    for name, binding in (pointers or {}).items():
        owner, index = binding
        store.set_var(name, cell_ids[owner][index])
    for _ in range(garbage):
        store.add_garbage()
    return store


def random_store(schema: Schema, rng: random.Random,
                 max_len: int = 3, max_garbage: int = 2) -> Store:
    """A random well-formed store over the schema."""
    store = Store(schema)
    cells: List[int] = [NIL_ID]
    for name in schema.data_vars:
        length = rng.randint(0, max_len)
        variants = [rng.choice(VARIANTS) for _ in range(length)]
        cells.extend(store.make_list(name, variants))
    for name in schema.pointer_vars:
        store.set_var(name, rng.choice(cells))
    for _ in range(rng.randint(0, max_garbage)):
        store.add_garbage()
    assert store.is_well_formed(), store.violations()
    return store


PROGRAM_HEADER = """\
program {name};
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{{data}} var x, y: List;
{{pointer}} var p, q: List;
begin
{body}
end.
"""


def wrap_program(body: str, name: str = "t",
                 pre: str = "", post: str = "") -> str:
    """Wrap a statement body in the canonical program skeleton."""
    lines = []
    if pre:
        lines.append(f"  {{{pre}}}")
    lines.append(body.rstrip())
    if post:
        lines.append(f"  {{{post}}}")
    return PROGRAM_HEADER.format(name=name, body="\n".join(lines))


_STATEMENT_TEMPLATES = [
    "{v} := {w}",
    "{v} := nil",
    "{v} := {w}^.next",
    "{v}^.next := {w}",
    "{v}^.next := nil",
    "new({pq}, {variant})",
    "dispose({v}, {variant})",
]

_GUARD_TEMPLATES = [
    "{v} = {w}",
    "{v} <> nil",
    "{v} = nil",
    "{v}^.tag = {variant}",
    "{v}^.next = {w}",
]

ALL_VARS = ("x", "y", "p", "q")


def random_statement(rng: random.Random, depth: int = 0) -> str:
    """One random statement (possibly a conditional)."""
    if depth < 1 and rng.random() < 0.25:
        guard = _random_guard(rng)
        then_branch = random_statement(rng, depth + 1)
        if rng.random() < 0.5:
            else_branch = random_statement(rng, depth + 1)
            return (f"if {guard} then begin {then_branch} end "
                    f"else begin {else_branch} end")
        return f"if {guard} then begin {then_branch} end"
    template = rng.choice(_STATEMENT_TEMPLATES)
    return template.format(v=rng.choice(ALL_VARS),
                           w=rng.choice(ALL_VARS),
                           pq=rng.choice(("p", "q")),
                           variant=rng.choice(VARIANTS))


def _random_guard(rng: random.Random) -> str:
    guard = rng.choice(_GUARD_TEMPLATES).format(
        v=rng.choice(ALL_VARS), w=rng.choice(ALL_VARS),
        variant=rng.choice(VARIANTS))
    if rng.random() < 0.3:
        other = rng.choice(_GUARD_TEMPLATES).format(
            v=rng.choice(ALL_VARS), w=rng.choice(ALL_VARS),
            variant=rng.choice(VARIANTS))
        joiner = rng.choice(("and", "or"))
        return f"{guard} {joiner} {other}"
    return guard


def random_body(rng: random.Random, length: int) -> str:
    """A random loop-free statement sequence."""
    statements = [random_statement(rng) for _ in range(length)]
    return ";\n".join("  " + statement for statement in statements)
