"""Tests for the error hierarchy and error propagation through the
public entry points."""

import pytest

from repro.errors import (ExecutionError, ParseError, ReproError,
                          StoreError, TranslationError, TypeError_,
                          VerificationError)
from repro.verify import verify_source

from util import wrap_program


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ParseError, TypeError_, StoreError, ExecutionError,
        TranslationError, VerificationError])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_parse_error_formats_location(self):
        error = ParseError("bad token", line=3, column=7)
        assert "3:7" in str(error)
        assert error.line == 3
        assert error.column == 7

    def test_parse_error_without_location(self):
        error = ParseError("just a message")
        assert str(error) == "just a message"
        assert error.line == 0

    def test_parse_error_column_only(self):
        """line=0 with a real column must not drop the position."""
        error = ParseError("bad char", line=0, column=5)
        assert "0:5" in str(error)
        assert error.column == 5

    def test_parse_error_line_only(self):
        error = ParseError("bad line", line=4)
        assert "4:0" in str(error)
        assert error.line == 4


class TestPropagation:
    def test_syntax_error_in_program(self):
        with pytest.raises(ParseError):
            verify_source("program broken; begin x := ; end.")

    def test_type_error_in_program(self):
        with pytest.raises(TypeError_):
            verify_source(wrap_program("  z := nil"))

    def test_syntax_error_in_assertion(self):
        with pytest.raises(ParseError):
            verify_source(wrap_program("  x := nil", pre="x = "))

    def test_unknown_variable_in_assertion(self):
        with pytest.raises(TranslationError):
            verify_source(wrap_program("  x := nil", pre="w = nil"))

    def test_unknown_variant_in_assertion(self):
        with pytest.raises(TranslationError):
            verify_source(wrap_program("  x := nil",
                                       post="<(List:green)?>x"))

    def test_loop_in_branch_reports_verification_error(self):
        source = wrap_program(
            "  if x = nil then begin\n"
            "    while p <> nil do p := p^.next\n"
            "  end")
        with pytest.raises(VerificationError):
            verify_source(source)

    def test_single_repro_error_catch_all(self):
        """Clients can catch ReproError alone, as the CLI does."""
        for source in ("program broken; begin x := ; end.",
                       wrap_program("  z := nil"),
                       wrap_program("  x := nil", pre="w = nil")):
            with pytest.raises(ReproError):
                verify_source(source)
