"""Property-based differential testing of the store-logic pipeline.

Hypothesis generates random assertions; each is (a) pretty-printed and
re-parsed (round-trip), and (b) translated to M2L and compiled, with
the automaton compared against the concrete evaluator on a pool of
well-formed stores.  This is the same oracle discipline as
``test_storelogic_translate.py`` but over a much wilder formula space.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.storelogic import ast, check_formula, parse_formula
from repro.storelogic.eval import eval_formula
from repro.storelogic.pretty import pretty_formula
from repro.storelogic.translate import translate_formula
from repro.stores.encode import encode_store
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_string

from util import list_schema, random_store

SCHEMA = list_schema()

_VAR_NAMES = ("x", "y", "p", "q")
_BOUND_NAMES = ("c", "d")


def _terms(depth=2):
    base = st.one_of(
        st.sampled_from(_VAR_NAMES).map(ast.TermVar),
        st.just(ast.TermNil()),
    )
    if depth == 0:
        return base
    return st.one_of(
        base,
        _terms(depth - 1).map(lambda t: ast.TermDeref(t, "next")),
    )


def _routes():
    atom = st.one_of(
        st.just(ast.RouteField("next")),
        st.just(ast.RouteTestNil()),
        st.just(ast.RouteTestGarb()),
        st.sampled_from(["red", "blue"]).map(
            lambda v: ast.RouteTestVariant("Item", v)),
    )
    return st.recursive(
        atom,
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda t: ast.RouteCat(*t)),
            st.tuples(children, children).map(
                lambda t: ast.RouteUnion(*t)),
            children.map(ast.RouteStar),
        ),
        max_leaves=3)


def _bound_term():
    return st.sampled_from(_BOUND_NAMES).map(ast.TermVar)


def _atoms(allow_bound):
    term = st.one_of(_terms(), _bound_term()) if allow_bound \
        else _terms()
    return st.one_of(
        st.tuples(term, term).map(lambda t: ast.SEq(*t)),
        st.tuples(term, _routes(), term).map(
            lambda t: ast.SRoute(t[0], t[1], t[2])),
        st.just(ast.STrue()),
    )


def _formulas():
    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda t: ast.SAnd(*t)),
            st.tuples(children, children).map(lambda t: ast.SOr(*t)),
            st.tuples(children, children).map(
                lambda t: ast.SImplies(*t)),
            children.map(ast.SNot),
        )

    quantified = st.builds(
        lambda name, universal, body:
            ast.SAll((name,), body) if universal
            else ast.SEx((name,), body),
        st.sampled_from(_BOUND_NAMES),
        st.booleans(),
        st.recursive(_atoms(allow_bound=True), extend, max_leaves=3))
    return st.recursive(st.one_of(_atoms(allow_bound=False), quantified),
                        extend, max_leaves=3)


def _close(formula):
    """Bind any stray bound-pool names so the formula is closed."""
    free_bound = set()

    def scan(node, bound):
        if isinstance(node, ast.TermVar):
            if node.name in _BOUND_NAMES and node.name not in bound:
                free_bound.add(node.name)
        elif isinstance(node, ast.TermDeref):
            scan(node.base, bound)
        elif isinstance(node, (ast.SEq,)):
            scan(node.left, bound)
            scan(node.right, bound)
        elif isinstance(node, ast.SRoute):
            scan(node.left, bound)
            scan(node.right, bound)
        elif isinstance(node, ast.SNot):
            scan(node.inner, bound)
        elif isinstance(node, (ast.SAnd, ast.SOr, ast.SImplies,
                               ast.SIff)):
            scan(node.left, bound)
            scan(node.right, bound)
        elif isinstance(node, (ast.SEx, ast.SAll)):
            scan(node.body, bound | set(node.names))

    scan(formula, set())
    for name in sorted(free_bound):
        formula = ast.SEx((name,), formula)
    return formula


@pytest.fixture(scope="module")
def stores():
    rng = random.Random(99)
    return [random_store(SCHEMA, rng) for _ in range(6)]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(_formulas())
def test_pretty_parse_roundtrip(formula):
    closed = _close(formula)
    text = pretty_formula(closed)
    reparsed = parse_formula(text)
    assert pretty_formula(reparsed) == text


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(formula=_formulas())
def test_translation_matches_eval(stores, formula):
    closed = check_formula(_close(formula), SCHEMA)
    compiler = Compiler()
    layout = TrackLayout(SCHEMA)
    layout.register(compiler)
    state = initial_store(SCHEMA, layout)
    automaton = compiler.compile(
        F.and_(wf_string(layout), translate_formula(closed, state)))
    tracks = compiler.tracks()
    for store in stores:
        word = layout.symbols_to_word(encode_store(store), tracks)
        assert automaton.accepts(word) == eval_formula(closed, store), \
            pretty_formula(closed)
