"""Tests for M2L formula representation, builders and printing."""

import pytest

from repro.errors import TranslationError
from repro.mso import ast
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.mso.pretty import pretty

X = ast.Var.second("X")
Y = ast.Var.second("Y")
p = ast.Var.first("p")
q = ast.Var.first("q")


class TestVars:
    def test_kinds(self):
        assert ast.Var.first("a").kind is ast.VarKind.FIRST
        assert ast.Var.second("A").kind is ast.VarKind.SECOND

    def test_identity_semantics(self):
        assert ast.Var.first("a") is not ast.Var.first("a")

    def test_fresh_are_distinct(self):
        a = ast.Var.fresh("t", ast.VarKind.FIRST)
        b = ast.Var.fresh("t", ast.VarKind.FIRST)
        assert a.name != b.name

    def test_repr(self):
        assert repr(ast.Var.first("a")) == "a"
        assert repr(ast.Var.second("A")) == "$A"


class TestQuantifierKinds:
    def test_ex1_requires_first_order(self):
        with pytest.raises(ValueError):
            ast.Ex1(X, ast.TRUE)

    def test_all1_requires_first_order(self):
        with pytest.raises(ValueError):
            ast.All1(X, ast.TRUE)

    def test_ex2_requires_second_order(self):
        with pytest.raises(ValueError):
            ast.Ex2(p, ast.TRUE)

    def test_all2_requires_second_order(self):
        with pytest.raises(ValueError):
            ast.All2(p, ast.TRUE)


class TestBuilders:
    def test_constant_folding_and(self):
        f = F.mem(p, X)
        assert F.and_(ast.TRUE, f) is f
        assert F.and_(f, ast.TRUE) is f
        assert F.and_(ast.FALSE, f) is ast.FALSE

    def test_constant_folding_or(self):
        f = F.mem(p, X)
        assert F.or_(ast.FALSE, f) is f
        assert F.or_(f, ast.TRUE) is ast.TRUE

    def test_not_folding(self):
        f = F.mem(p, X)
        assert F.not_(ast.TRUE) is ast.FALSE
        assert F.not_(F.not_(f)) is f

    def test_implies_folding(self):
        f = F.mem(p, X)
        assert F.implies(ast.TRUE, f) is f
        assert F.implies(ast.FALSE, f) is ast.TRUE
        assert isinstance(F.implies(f, ast.FALSE), ast.Not)

    def test_iff_folding(self):
        f = F.mem(p, X)
        assert F.iff(ast.TRUE, f) is f
        assert isinstance(F.iff(ast.FALSE, f), ast.Not)

    def test_conj_disj(self):
        parts = [F.mem(p, X), F.mem(p, Y)]
        assert isinstance(F.conj(parts), ast.And)
        assert F.conj([]) is ast.TRUE
        assert F.disj([]) is ast.FALSE

    def test_quantifier_blocks(self):
        a, b = ast.Var.first("a"), ast.Var.first("b")
        f = F.ex1([a, b], ast.TRUE)
        assert isinstance(f, ast.Ex1) and isinstance(f.body, ast.Ex1)
        g = F.all2([ast.Var.second("S")], ast.TRUE)
        assert isinstance(g, ast.All2)

    def test_leq(self):
        f = F.leq(p, q)
        assert isinstance(f, ast.Or)


class TestMetrics:
    def test_size_counts_distinct_nodes(self):
        atom = F.mem(p, X)
        f = ast.And(atom, atom)  # shared subformula counts once
        assert f.size() == 2

    def test_free_vars(self):
        body = F.and_(F.mem(p, X), F.mem(q, X))
        f = ast.Ex1(p, body)
        assert f.free_vars() == frozenset({q, X})

    def test_free_vars_all_bound(self):
        r = ast.Var.first("r")
        f = ast.Ex1(r, F.first(r))
        assert f.free_vars() == frozenset()

    def test_str_uses_pretty(self):
        assert "in" in str(F.mem(p, X))


class TestPretty:
    def test_atoms(self):
        assert pretty(F.mem(p, X)) == "p in $X"
        assert pretty(F.sub(X, Y)) == "$X sub $Y"
        assert pretty(F.less(p, q)) == "p < q"
        assert pretty(F.succ(p, q)) == "q = p + 1"
        assert pretty(F.first(p)) == "p = 0"
        assert pretty(F.last(p)) == "p = $"
        assert pretty(F.empty(X)) == "empty($X)"
        assert pretty(F.singleton(X)) == "singleton($X)"
        assert pretty(ast.TRUE) == "true"
        assert pretty(ast.FALSE) == "false"

    def test_connectives(self):
        f = F.and_(F.mem(p, X), F.or_(F.mem(q, X), F.mem(q, Y)))
        assert pretty(f) == "p in $X & (q in $X | q in $Y)"

    def test_quantifiers(self):
        f = ast.All1(p, ast.Implies(F.mem(p, X), F.mem(p, Y)))
        assert pretty(f) == "all1 p: p in $X => p in $Y"

    def test_negation(self):
        assert pretty(ast.Not(F.mem(p, X))) == "~p in $X"


class TestRebindingCheck:
    def test_double_binding_rejected(self):
        r = ast.Var.first("r")
        inner = ast.Ex1(r, F.first(r))
        outer = ast.Ex1(r, F.and_(F.first(r), inner))
        with pytest.raises(TranslationError):
            Compiler().compile(outer)

    def test_shared_quantifier_node_is_fine(self):
        r = ast.Var.first("r")
        shared = ast.Ex1(r, F.first(r))
        f = ast.And(shared, shared)
        dfa = Compiler().compile(f)
        assert dfa.accepts([{}])
        assert not dfa.accepts([])
