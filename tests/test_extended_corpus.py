"""The extended corpus (append, split, copy): verification and
concrete behaviour.

``split`` is by far the heaviest program in the repository (a
two-quantifier invariant flowing through a conditional body — around
a minute of reduction), so its verification sits in its own test.
"""

import pytest

from repro.exec.interpreter import Interpreter
from repro.pascal import check_program, parse_program
from repro.programs import APPEND, COPY, SPLIT
from repro.stores.model import NIL_ID, Store
from repro.verify import verify_source

pytestmark = pytest.mark.slow


class TestAppend:
    def test_verifies(self):
        assert verify_source(APPEND).valid

    def test_appends_concretely(self):
        program = check_program(parse_program(APPEND))
        store = Store(program.schema)
        store.make_list("x", ["red", "blue"])
        store.make_list("y", ["blue"])
        Interpreter(program).run(store)
        variants = [store.cell(i).variant for i in store.list_of("x")]
        assert variants == ["red", "blue", "blue"]
        assert store.var("y") == NIL_ID
        assert store.is_well_formed()

    def test_append_empty_y(self):
        program = check_program(parse_program(APPEND))
        store = Store(program.schema)
        store.make_list("x", ["red"])
        Interpreter(program).run(store)
        assert [store.cell(i).variant
                for i in store.list_of("x")] == ["red"]


class TestCopy:
    def test_verifies(self):
        assert verify_source(COPY).valid

    def test_copies_shape_and_colours(self):
        program = check_program(parse_program(COPY))
        store = Store(program.schema)
        store.make_list("x", ["red", "blue", "red"])
        for _ in range(3):
            store.add_garbage()
        Interpreter(program).run(store)
        original = [store.cell(i).variant for i in store.list_of("x")]
        duplicate = [store.cell(i).variant for i in store.list_of("y")]
        assert original == duplicate == ["red", "blue", "red"]
        assert store.is_well_formed()

    def test_copy_of_empty_is_empty(self):
        program = check_program(parse_program(COPY))
        store = Store(program.schema)
        store.add_garbage()
        Interpreter(program).run(store)
        assert store.var("y") == NIL_ID


class TestSplit:
    def test_verifies(self):
        """The heavyweight: ~1 minute of reduction."""
        assert verify_source(SPLIT).valid

    def test_partitions_concretely(self):
        program = check_program(parse_program(SPLIT))
        store = Store(program.schema)
        store.make_list("x", ["red", "blue", "red", "red", "blue"])
        Interpreter(program).run(store)
        assert store.var("x") == NIL_ID
        reds = [store.cell(i).variant for i in store.list_of("y")]
        blues = [store.cell(i).variant for i in store.list_of("z")]
        assert reds == ["red"] * 3
        assert blues == ["blue"] * 2
        assert store.is_well_formed()

    def test_split_empty(self):
        program = check_program(parse_program(SPLIT))
        store = Store(program.schema)
        Interpreter(program).run(store)
        assert store.var("y") == store.var("z") == NIL_ID
