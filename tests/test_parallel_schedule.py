"""Tests for repro.parallel.schedule: the deterministic
work-stealing order (under a seeded fake clock) and deadline
partitioning, which guarantees one stuck subgoal can never consume
its siblings' share of a ``--timeout`` budget."""

import random

from hypothesis import given, strategies as st

from repro.parallel.schedule import (Task, WorkStealingScheduler,
                                     partition_deadline)


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestWorkStealing:
    def test_longest_pending_is_stolen_first(self):
        clock = FakeClock()
        scheduler = WorkStealingScheduler(clock=clock)
        scheduler.add("early", cost=1)
        clock.advance(5)
        scheduler.add("middle", cost=100)
        clock.advance(5)
        scheduler.add("late", cost=100)
        clock.advance(1)
        # "early" has waited 11s; cost never outranks waiting time.
        assert scheduler.steal().key == "early"
        assert scheduler.steal().key == "middle"
        assert scheduler.steal().key == "late"

    def test_cost_breaks_age_ties(self):
        # All enqueued at the same instant: the costliest goes first
        # (LPT order minimizes makespan for the final stragglers).
        clock = FakeClock()
        scheduler = WorkStealingScheduler(clock=clock)
        scheduler.add("small", cost=1)
        scheduler.add("large", cost=50)
        scheduler.add("medium", cost=10)
        assert [scheduler.steal().key for _ in range(3)] == \
            ["large", "medium", "small"]

    def test_index_breaks_full_ties(self):
        clock = FakeClock()
        scheduler = WorkStealingScheduler(clock=clock)
        for key in ("a", "b", "c"):
            scheduler.add(key, cost=7)
        assert [task.key for task in scheduler.drain()] == \
            ["a", "b", "c"]

    def test_drain_empties_scheduler(self):
        scheduler = WorkStealingScheduler(clock=FakeClock())
        scheduler.add("x", cost=1)
        assert len(scheduler) == 1
        scheduler.drain()
        assert len(scheduler) == 0

    def test_seeded_random_arrivals_are_deterministic(self):
        def run(seed):
            rng = random.Random(seed)
            clock = FakeClock()
            scheduler = WorkStealingScheduler(clock=clock)
            for index in range(20):
                scheduler.add(index, cost=rng.randrange(100))
                clock.advance(rng.random())
            return [task.key for task in scheduler.drain()]

        assert run(1997) == run(1997)
        first = run(1997)
        # Oldest-first: the steal order is exactly arrival order when
        # every enqueue instant is distinct.
        assert first == sorted(first)


class TestPartitionDeadline:
    def test_no_deadline_passes_through(self):
        assert partition_deadline(None, pending=10, workers=4) is None

    def test_exhausted_deadline_is_zero(self):
        assert partition_deadline(0.0, pending=10, workers=4) == 0.0
        assert partition_deadline(-1.0, pending=10, workers=4) == 0.0

    def test_nothing_pending_is_zero(self):
        assert partition_deadline(60.0, pending=0, workers=4) == 0.0

    def test_even_split_across_waves(self):
        # 8 subgoals over 4 workers = 2 waves; each task gets half
        # the remaining deadline.
        assert partition_deadline(60.0, pending=8, workers=4) == 30.0

    def test_single_wave_gets_everything(self):
        assert partition_deadline(60.0, pending=3, workers=4) == 60.0

    @given(remaining=st.floats(min_value=0.001, max_value=10_000),
           pending=st.integers(min_value=1, max_value=512),
           workers=st.integers(min_value=1, max_value=64))
    def test_slice_never_exceeds_remaining(self, remaining, pending,
                                           workers):
        piece = partition_deadline(remaining, pending, workers)
        assert 0.0 < piece <= remaining

    @given(remaining=st.floats(min_value=0.001, max_value=10_000),
           pending=st.integers(min_value=1, max_value=512),
           workers=st.integers(min_value=1, max_value=64))
    def test_no_task_starves_siblings(self, remaining, pending,
                                      workers):
        # The starvation guarantee: even if one task burns its whole
        # slice, the waves in aggregate still fit the run deadline
        # (slice * wave-count <= remaining, up to float rounding).
        piece = partition_deadline(remaining, pending, workers)
        waves = -(-pending // max(1, workers))  # ceil division
        assert piece * waves <= remaining * (1 + 1e-9)


class TestTaskShape:
    def test_task_records_enqueue_time(self):
        clock = FakeClock(start=42.0)
        scheduler = WorkStealingScheduler(clock=clock)
        scheduler.add("k", cost=3)
        task = scheduler.steal()
        assert isinstance(task, Task)
        assert task.enqueued == 42.0
        assert task.cost == 3
