"""In-process unit tests for the serving layer (repro.serve).

Protocol decoding, admission control and the job table are tested
here without a real socket; the end-to-end daemon (subprocess over a
unix socket) lives in ``test_serve_daemon.py``.
"""

import json
import threading
import time

import pytest

from repro.serve.admission import (AdmissionController, Draining,
                                   QueueFull)
from repro.serve.jobs import JobTable
from repro.serve.protocol import (MAX_BODY_BYTES, BudgetCaps,
                                  ProtocolError, parse_batch_request,
                                  parse_verify_request)
from repro.robust import faults


def _body(document) -> bytes:
    return json.dumps(document).encode("utf-8")


def _parse(document, caps=None, defaults=None):
    return parse_verify_request(_body(document),
                                caps or BudgetCaps(), defaults)


class TestProtocolDecoding:
    def test_bundled_program_accepted(self):
        request = _parse({"program": "reverse"})
        assert request.label == "reverse"
        assert "program" in request.source
        assert request.background is False

    def test_inline_source_accepted(self):
        request = _parse({"source": "program p; begin end."})
        assert request.label == "<inline>"
        assert request.source.startswith("program")

    @pytest.mark.parametrize("document,status,code", [
        ({}, 400, "bad-request"),
        ({"program": "reverse", "source": "x"}, 400, "bad-request"),
        ({"program": 7}, 400, "bad-request"),
        ({"program": "no-such-program"}, 404, "unknown-program"),
        ({"source": "   "}, 400, "bad-request"),
        ({"program": "reverse", "options": ["fast"]}, 400,
         "bad-request"),
        ({"program": "reverse", "options": {"warp": True}}, 400,
         "bad-request"),
        ({"program": "reverse", "options": {"reduce": "yes"}}, 400,
         "bad-request"),
        ({"program": "reverse", "budget": {"fuel": 3}}, 400,
         "bad-request"),
        ({"program": "reverse", "budget": {"timeout": -1}}, 400,
         "bad-request"),
        ({"program": "reverse", "budget": {"timeout": True}}, 400,
         "bad-request"),
        ({"program": "reverse", "async": "please"}, 400,
         "bad-request"),
    ])
    def test_invalid_requests_rejected(self, document, status, code):
        with pytest.raises(ProtocolError) as excinfo:
            _parse(document)
        assert excinfo.value.status == status
        assert excinfo.value.code == code
        rendered = excinfo.value.to_dict()
        assert rendered["error"]["code"] == code
        assert rendered["error"]["message"]

    def test_not_json_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_verify_request(b"{nope", BudgetCaps())
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-json"

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_verify_request(b"[1, 2]", BudgetCaps())
        assert excinfo.value.status == 400

    def test_oversized_body_rejected_before_parsing(self):
        blob = b"x" * (MAX_BODY_BYTES + 1)
        with pytest.raises(ProtocolError) as excinfo:
            parse_verify_request(blob, BudgetCaps())
        assert excinfo.value.status == 413
        assert excinfo.value.code == "body-too-large"

    def test_budget_clamped_to_server_caps(self):
        caps = BudgetCaps(timeout=10.0, max_bdd_nodes=1000)
        request = _parse({"program": "reverse",
                          "budget": {"timeout": 99.0,
                                     "max_bdd_nodes": 500}}, caps)
        assert request.timeout == 10.0       # capped
        assert request.max_bdd_nodes == 500  # under the cap: honoured
        assert request.max_states is None

    def test_caps_are_the_defaults(self):
        caps = BudgetCaps(timeout=7.0, max_states=123)
        request = _parse({"program": "reverse"}, caps)
        assert request.timeout == 7.0
        assert request.max_states == 123

    def test_options_merge_over_server_defaults(self):
        request = _parse({"program": "reverse",
                          "options": {"slice": False}},
                         defaults={"reduce": False, "slice": True})
        assert request.reduce is False   # server default
        assert request.slice is False    # request override
        assert request.order is True     # built-in default

    def test_decode_fault_site_fires(self):
        with faults.injected("serve.request_decode:error"):
            with pytest.raises(RuntimeError):
                _parse({"program": "reverse"})

    def test_batch_decoded_per_item(self):
        requests = parse_batch_request(
            _body({"requests": [{"program": "reverse"},
                                {"program": "swap"}]}),
            BudgetCaps())
        assert [r.label for r in requests] == ["reverse", "swap"]

    def test_batch_error_names_offending_item(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_batch_request(
                _body({"requests": [{"program": "reverse"},
                                    {"program": "bogus"}]}),
                BudgetCaps())
        assert excinfo.value.status == 404
        assert "requests[1]" in excinfo.value.message

    def test_batch_requires_nonempty_list(self):
        for document in ({}, {"requests": []}, {"requests": "x"}):
            with pytest.raises(ProtocolError) as excinfo:
                parse_batch_request(_body(document), BudgetCaps())
            assert excinfo.value.status == 400

    def test_batch_size_capped(self):
        items = [{"program": "reverse"}] * 5
        with pytest.raises(ProtocolError) as excinfo:
            parse_batch_request(_body({"requests": items}),
                                BudgetCaps(), max_items=4)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "batch-too-large"


class TestAdmissionController:
    def test_serial_admission(self):
        control = AdmissionController(max_concurrent=2, max_queue=0)
        with control.admitted():
            with control.admitted():
                pass
        assert control.snapshot()["active"] == 0

    def test_queue_full_rejects_with_retry_after(self):
        control = AdmissionController(max_concurrent=1, max_queue=0)
        release = threading.Event()
        started = threading.Event()

        def occupy():
            with control.admitted():
                started.set()
                release.wait(10)

        thread = threading.Thread(target=occupy)
        thread.start()
        try:
            assert started.wait(5)
            with pytest.raises(QueueFull) as excinfo:
                with control.admitted():
                    pass
            assert excinfo.value.retry_after >= 1
        finally:
            release.set()
            thread.join()

    def test_waiter_admitted_when_slot_frees(self):
        control = AdmissionController(max_concurrent=1, max_queue=4)
        release = threading.Event()
        started = threading.Event()
        order = []

        def occupy():
            with control.admitted():
                started.set()
                release.wait(10)
            order.append("first")

        def wait_in_queue():
            with control.admitted():
                order.append("second")

        first = threading.Thread(target=occupy)
        first.start()
        assert started.wait(5)
        second = threading.Thread(target=wait_in_queue)
        second.start()
        time.sleep(0.1)  # let the second request join the queue
        assert control.snapshot()["waiting"] == 1
        release.set()
        first.join(5)
        second.join(5)
        assert order == ["first", "second"]

    def test_draining_rejects_new_requests(self):
        control = AdmissionController(max_concurrent=2, max_queue=2)
        control.start_draining()
        with pytest.raises(Draining):
            with control.admitted():
                pass
        assert control.draining is True

    def test_draining_wakes_and_rejects_waiters(self):
        control = AdmissionController(max_concurrent=1, max_queue=2)
        release = threading.Event()
        started = threading.Event()
        outcome = []

        def occupy():
            with control.admitted():
                started.set()
                release.wait(10)

        def waiter():
            try:
                with control.admitted():
                    outcome.append("admitted")
            except Draining:
                outcome.append("drained")

        first = threading.Thread(target=occupy)
        first.start()
        assert started.wait(5)
        second = threading.Thread(target=waiter)
        second.start()
        time.sleep(0.1)
        control.start_draining()
        second.join(5)
        assert outcome == ["drained"]
        release.set()
        first.join(5)

    def test_wait_idle(self):
        control = AdmissionController(max_concurrent=1, max_queue=0)
        assert control.wait_idle(0.1) is True
        release = threading.Event()
        started = threading.Event()

        def occupy():
            with control.admitted():
                started.set()
                release.wait(10)

        thread = threading.Thread(target=occupy)
        thread.start()
        assert started.wait(5)
        assert control.wait_idle(0.1) is False
        release.set()
        assert control.wait_idle(5.0) is True
        thread.join()

    def test_retry_after_scales_with_backlog(self):
        slow = AdmissionController(max_concurrent=1, max_queue=0,
                                   initial_estimate=30.0)
        fast = AdmissionController(max_concurrent=1, max_queue=0,
                                   initial_estimate=0.1)
        # An empty controller still answers with a sane minimum.
        assert fast.retry_after() >= 1
        assert slow.retry_after() >= fast.retry_after()


class TestJobTable:
    def test_lifecycle(self):
        table = JobTable()
        job = table.create("reverse")
        assert table.get(job.id) is job
        assert job.to_dict()["state"] == "queued"
        table.start(job)
        assert job.to_dict()["state"] == "running"
        table.finish(job, 200, {"outcome": "VERIFIED"})
        document = job.to_dict()
        assert document["state"] == "done"
        assert document["status"] == 200
        assert document["result"] == {"outcome": "VERIFIED"}
        assert "finished" in document

    def test_failed_state(self):
        table = JobTable()
        job = table.create("bad")
        table.finish(job, 422, {"error": {}}, failed=True)
        assert job.to_dict()["state"] == "failed"

    def test_unknown_id_is_none(self):
        assert JobTable().get("deadbeef") is None

    def test_finished_jobs_evicted_beyond_retention(self):
        table = JobTable(retention=2)
        jobs = [table.create(f"job-{index}") for index in range(4)]
        for job in jobs:
            table.finish(job, 200, {})
        remaining = [job for job in jobs if table.get(job.id)]
        assert len(remaining) == 2
        assert remaining == jobs[2:]  # oldest finished dropped first

    def test_unfinished_jobs_never_evicted(self):
        table = JobTable(retention=1)
        live = [table.create(f"live-{index}") for index in range(3)]
        done = table.create("done")
        table.finish(done, 200, {})
        assert all(table.get(job.id) for job in live)
        snapshot = table.snapshot()
        assert snapshot["queued"] == 3

    def test_result_hidden_when_not_requested(self):
        table = JobTable()
        job = table.create("reverse")
        table.finish(job, 200, {"outcome": "VERIFIED"})
        assert "result" not in job.to_dict(with_result=False)
