"""Property-based differential testing of the tree-logic compiler.

Random tree formulas over a fixed variable pool are compiled and
compared against brute-force evaluation on all trees up to 3 nodes —
the same oracle discipline as the string engine's hypothesis tests.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.mso.ast import Var, VarKind
from repro.treemso import ast
from repro.treemso.compile import TreeCompiler
from repro.treemso.interp import tree_evaluate, tree_with_assignment
from repro.treemso.trees import all_shapes

FO = [Var.first(name) for name in ("u", "v")]
SO = [Var.second(name) for name in ("A", "B")]


def _atoms():
    fo = st.sampled_from(FO)
    so = st.sampled_from(SO)
    return st.one_of(
        st.tuples(fo, so).map(lambda t: ast.TMem(*t)),
        st.tuples(so, so).map(lambda t: ast.TSub(*t)),
        st.tuples(so, so).map(lambda t: ast.TEqS(*t)),
        st.tuples(fo, fo).map(lambda t: ast.EqF(*t)),
        st.tuples(fo, fo).map(lambda t: ast.Child0(*t)),
        st.tuples(fo, fo).map(lambda t: ast.Child1(*t)),
        st.tuples(fo, fo).map(lambda t: ast.Anc(*t)),
        fo.map(ast.Root),
        so.map(ast.TEmptyS),
        so.map(ast.TSingletonS),
        st.just(ast.TTRUE),
    )


def _quantify(child, kind):
    if kind in ("ex1", "all1"):
        fresh = Var.fresh("b", VarKind.FIRST)
        link = ast.TOr(ast.TMem(fresh, SO[0]), ast.EqF(fresh, FO[0]))
        body = ast.TAnd(link, child) if kind == "ex1" \
            else ast.TImplies(link, child)
        return ast.TEx1(fresh, body) if kind == "ex1" \
            else ast.TAll1(fresh, body)
    fresh = Var.fresh("S", VarKind.SECOND)
    link = ast.TSub(fresh, SO[1])
    if kind == "ex2":
        return ast.TEx2(fresh, ast.TAnd(link, child))
    return ast.TAll2(fresh, ast.TImplies(link, child))


def _formulas():
    return st.recursive(
        _atoms(),
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda t: ast.TAnd(*t)),
            st.tuples(children, children).map(
                lambda t: ast.TOr(*t)),
            st.tuples(children, children).map(
                lambda t: ast.TImplies(*t)),
            children.map(ast.TNot),
            st.tuples(children, st.sampled_from(
                ["ex1", "all1", "ex2", "all2"])).map(
                lambda t: _quantify(t[0], t[1])),
        ),
        max_leaves=4)


def _assignments(free, nodes):
    fo = [v for v in free if v.kind is VarKind.FIRST]
    so = [v for v in free if v.kind is VarKind.SECOND]
    subsets = [frozenset(c) for size in range(len(nodes) + 1)
               for c in itertools.combinations(nodes, size)]
    for fo_values in itertools.product(nodes, repeat=len(fo)):
        for so_values in itertools.product(subsets, repeat=len(so)):
            env = dict(zip(fo, fo_values))
            env.update(zip(so, so_values))
            yield env


@settings(max_examples=60, deadline=None)
@given(_formulas())
def test_tree_compiler_matches_bruteforce(formula):
    compiler = TreeCompiler()
    dfa = compiler.compile(formula)
    tracks = compiler.tracks()
    free = sorted(formula.free_vars(), key=lambda v: v.name)
    needs_node = any(v.kind is VarKind.FIRST for v in free)
    for size in range(4):
        if size == 0 and needs_node:
            continue
        for shape in all_shapes(size):
            nodes = shape.nodes() if shape else []
            for env in _assignments(free, nodes):
                expected = tree_evaluate(formula, shape, env)
                labeled = tree_with_assignment(shape, env, tracks)
                assert dfa.accepts(labeled) == expected


@settings(max_examples=30, deadline=None)
@given(_formulas())
def test_tree_negation_flips(formula):
    compiler = TreeCompiler()
    dfa = compiler.compile(formula)
    negated = TreeCompiler()
    ndfa = negated.compile(ast.TNot(formula))
    free = sorted(formula.free_vars(), key=lambda v: v.name)
    needs_node = any(v.kind is VarKind.FIRST for v in free)
    for size in range(3):
        if size == 0 and needs_node:
            continue
        for shape in all_shapes(size):
            nodes = shape.nodes() if shape else []
            for env in _assignments(free, nodes):
                a = dfa.accepts(tree_with_assignment(
                    shape, env, compiler.tracks()))
                b = ndfa.accepts(tree_with_assignment(
                    shape, env, negated.tracks()))
                assert a != b
