"""Reduction soundness: verification results must be identical with
and without the cone-of-influence track reduction, and the reduced
run must never build bigger automata."""

import pytest

from repro.pascal import check_program, parse_program
from repro.programs import ALL_PROGRAMS
from repro.verify.engine import Verifier


@pytest.fixture(scope="module")
def results():
    """name -> (reduced result, unreduced result).

    Track ordering is pinned off: the size-monotonicity property
    below (dropping tracks never grows automata) only holds under a
    fixed variable order, and the affinity pass legitimately chooses
    different orders for the reduced and unreduced track sets.
    """
    out = {}
    for name, source in ALL_PROGRAMS.items():
        program = check_program(parse_program(source))
        reduced = Verifier(program, order=False).verify()
        unreduced = Verifier(program, reduce=False,
                             order=False).verify()
        out[name] = (reduced, unreduced)
    return out


@pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
class TestEquivalence:
    def test_same_verdicts(self, results, name):
        reduced, unreduced = results[name]
        assert reduced.valid == unreduced.valid
        assert [s.valid for s in reduced.results] == \
            [s.valid for s in unreduced.results]

    def test_same_counterexamples(self, results, name):
        reduced, unreduced = results[name]
        for with_coi, without in zip(reduced.results,
                                     unreduced.results):
            assert (with_coi.counterexample is None) == \
                (without.counterexample is None)
            if with_coi.counterexample is not None:
                assert with_coi.counterexample.explanation == \
                    without.counterexample.explanation

    def test_reduction_never_grows_automata(self, results, name):
        reduced, unreduced = results[name]
        assert reduced.max_nodes <= unreduced.max_nodes
        assert reduced.max_states <= unreduced.max_states

    def test_track_accounting(self, results, name):
        reduced, unreduced = results[name]
        for subgoal in reduced.results:
            assert subgoal.tracks_before >= subgoal.tracks_after > 0
        for subgoal in unreduced.results:
            assert subgoal.tracks_before == subgoal.tracks_after > 0


def test_reverse_actually_drops_tracks(results):
    reduced, _ = results["reverse"]
    assert reduced.tracks_after < reduced.tracks_before


ASSUME_KILLED = """\
program assumekilled;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p, q: List;
begin
  {p <> nil}
  p := nil
  {q = nil}
end.
"""


def test_assume_vars_survive_kills():
    """An assignment must not drop the track of a variable an assume
    formula reads from the initial store: pinning p to nil would make
    the assumption {p <> nil} unsatisfiable and the subgoal vacuously
    valid (regression: reduction reported VERIFIED, --no-reduce
    FAILED)."""
    program = check_program(parse_program(ASSUME_KILLED))
    reduced = Verifier(program).verify()
    unreduced = Verifier(program, reduce=False).verify()
    assert not unreduced.valid
    assert not reduced.valid
    assert reduced.counterexample is not None
    assert reduced.counterexample.explanation == \
        unreduced.counterexample.explanation
