"""Tests with several record types and richer enums.

The paper's examples use one record type with two variants; the
implementation is generic over the schema, and these tests pin that
down: multiple record types, cross-type type errors, enums with more
than two constants, and variants without pointer fields.
"""

import pytest

from repro.errors import TypeError_
from repro.exec.interpreter import Interpreter
from repro.pascal import check_program, parse_program
from repro.stores import Store
from repro.verify import verify_source

TWO_TYPES = """
program twotypes;
type
  Color = (red, blue);
  Shade = (light, dark);
  IList = ^Item;
  JList = ^Joint;
  Item = record case tag: Color of red, blue: (next: IList) end;
  Joint = record case tone: Shade of light, dark: (link: JList) end;
{data} var x: IList; y: JList;
{pointer} var p: IList; q: JList;
begin
  {true}
  p := x;
  q := y;
  if q <> nil then q := q^.link
  {true}
end.
"""


class TestTwoRecordTypes:
    def test_checks_and_verifies(self):
        result = verify_source(TWO_TYPES)
        assert result.valid

    def test_schema_contents(self):
        program = check_program(parse_program(TWO_TYPES))
        schema = program.schema
        assert set(schema.records) == {"Item", "Joint"}
        assert schema.variant_labels() == [
            ("Item", "red"), ("Item", "blue"),
            ("Joint", "light"), ("Joint", "dark")]
        assert schema.data_vars == {"x": "Item", "y": "Joint"}

    def test_cross_type_assignment_rejected(self):
        bad = TWO_TYPES.replace("p := x;", "p := y;")
        with pytest.raises(TypeError_):
            check_program(parse_program(bad))

    def test_cross_type_comparison_rejected(self):
        bad = TWO_TYPES.replace("q := y;", "q := y; if p = q then p := x;")
        with pytest.raises(TypeError_):
            check_program(parse_program(bad))

    def test_wrong_field_rejected(self):
        bad = TWO_TYPES.replace("q := q^.link", "q := q^.next")
        with pytest.raises(TypeError_):
            check_program(parse_program(bad))

    def test_variant_of_other_type_rejected(self):
        bad = TWO_TYPES.replace("p := x;", "new(p, light);")
        with pytest.raises(TypeError_):
            check_program(parse_program(bad))

    def test_concrete_execution(self):
        program = check_program(parse_program(TWO_TYPES))
        store = Store(program.schema)
        store.make_list("x", ["red"])
        store.make_list("y", ["dark", "light"])
        Interpreter(program).run(store)
        assert store.is_well_formed()
        assert store.cell(store.var("q")).variant == "light"

    def test_verifier_separates_the_heaps(self):
        """A Joint cell can never be reached from x: the verifier
        proves type segregation as a free theorem of wf."""
        source = TWO_TYPES.replace(
            "  {true}\nend.",
            "  {all c: x<next*>c => "
            "~(<(Joint:light)?>c | <(Joint:dark)?>c)}\nend.")
        assert verify_source(source).valid


THREE_COLORS = """
program tricolor;
type
  Color = (red, green, blue);
  List = ^Item;
  Item = record case tag: Color of red, green, blue: (next: List) end;
{data} var x: List;
{pointer} var p: List;
begin
  {<(List:red)?>x & ~(ex g: <garb?>g) & p = nil}
  p := x^.next;
  dispose(x, red);
  new(x, green);
  x^.next := p;
  p := nil
  {<(List:green)?>x}
end.
"""


class TestThreeConstantEnum:
    def test_verifies(self):
        assert verify_source(THREE_COLORS).valid

    def test_labels(self):
        program = check_program(parse_program(THREE_COLORS))
        assert program.schema.enums["Color"] == ("red", "green", "blue")
        assert len(program.schema.variant_labels()) == 3


MIXED_VARIANTS = """
program mixed;
type
  Kind = (cons, leaf);
  P = ^Node;
  Node = record case tag: Kind of
    cons: (next: P);
    leaf: ()
  end;
{data} var x: P;
{pointer} var p: P;
begin
  {true}
  p := x;
  while p <> nil and p^.tag = cons do
    p := p^.next
  {p = nil | <(P:leaf)?>p}
end.
"""


class TestTerminatorVariants:
    def test_walk_to_leaf_verifies(self):
        assert verify_source(MIXED_VARIANTS).valid

    def test_leaf_deref_is_error(self):
        bad = MIXED_VARIANTS.replace(
            "while p <> nil and p^.tag = cons do\n    p := p^.next",
            "while p <> nil do\n    p := p^.next")
        result = verify_source(bad)
        assert not result.valid  # dereferencing a leaf's missing field

    def test_concrete_leaf_terminated_list(self):
        program = check_program(parse_program(MIXED_VARIANTS))
        store = Store(program.schema)
        store.make_list("x", ["cons", "cons", "leaf"])
        Interpreter(program).run(store)
        assert store.cell(store.var("p")).variant == "leaf"
