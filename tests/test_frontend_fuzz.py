"""Fuzzing the front ends: random inputs never crash the parsers.

Every parser in the system must either return a result or raise the
library's own :class:`ParseError` — never an uncontrolled exception —
whatever bytes arrive.  Hypothesis drives both random text and
mutations of valid sources.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.errors import ReproError
from repro.pascal import parse_program
from repro.pascal.lexer import tokenize
from repro.programs import ALL_PROGRAMS
from repro.storelogic import parse_formula
from repro.mso.parser import parse_m2l

ALPHABET = ("program begin end if then else while do var type record "
            "case of new dispose nil not and or x y p q next red blue "
            "{ } ( ) ; : := = <> ^ . , * + < > & | ~ => <=> ex all "
            "data pointer true false garb ?").split()


def _soups():
    return st.lists(st.sampled_from(ALPHABET), max_size=40).map(
        " ".join)


@settings(max_examples=150, deadline=None)
@given(_soups())
@example("")
@example("program")
@example("{unterminated")
@example("(* unterminated")
def test_pascal_parser_total(text):
    try:
        parse_program(text)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.text(max_size=60))
def test_pascal_lexer_total(text):
    try:
        tokenize(text)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(_soups())
@example("x <")
@example("<>")
@example("ex :")
def test_storelogic_parser_total(text):
    try:
        parse_formula(text)
    except ReproError:
        pass


@settings(max_examples=150, deadline=None)
@given(_soups())
@example("p +")
@example("ex1")
def test_m2l_parser_total(text):
    try:
        parse_m2l(text)
    except ReproError:
        pass


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(sorted(ALL_PROGRAMS)),
       st.integers(min_value=0, max_value=2000),
       st.sampled_from(ALPHABET))
def test_mutated_programs_never_crash(name, position, junk):
    """Splice junk into a valid program: parse or ParseError/TypeError,
    never a crash."""
    source = ALL_PROGRAMS[name]
    position = min(position, len(source))
    mutated = source[:position] + " " + junk + " " + source[position:]
    from repro.pascal import check_program
    try:
        check_program(parse_program(mutated))
    except ReproError:
        pass
