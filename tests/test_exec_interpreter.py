"""Tests for the concrete interpreter (the reference semantics)."""

import pytest

from repro.errors import ExecutionError
from repro.exec.interpreter import (AssertionFailure, Interpreter,
                                    OutOfMemory, Trace)
from repro.pascal import check_program, parse_program
from repro.stores.model import NIL_ID, CellKind

from util import list_schema, store_with_lists, wrap_program


def build(body, pre="", post=""):
    return check_program(parse_program(wrap_program(body, pre=pre,
                                                    post=post)))


def run(body, store, **kwargs):
    program = build(body)
    Interpreter(program, **kwargs).run(store)
    return store


@pytest.fixture
def schema():
    return list_schema()


class TestAssignment:
    def test_var_assign(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        run("  p := x", store)
        assert store.var("p") == store.var("x")

    def test_nil_assign(self, schema):
        store = store_with_lists(schema, {"x": ["red"]},
                                 {"p": ("x", 0)})
        run("  p := nil", store)
        assert store.var("p") == NIL_ID

    def test_field_assign(self, schema):
        store = store_with_lists(schema, {"x": ["red", "blue"]})
        run("  x^.next := nil", store)
        assert store.cell(store.var("x")).next == NIL_ID

    def test_deep_path_read(self, schema):
        store = store_with_lists(schema, {"x": ["red", "blue", "red"]})
        run("  p := x^.next^.next", store)
        assert store.var("p") == store.list_of("x")[2]

    def test_nil_dereference_raises(self, schema):
        store = store_with_lists(schema, {})
        with pytest.raises(ExecutionError, match="nil"):
            run("  p := x^.next", store)

    def test_dangling_dereference_raises(self, schema):
        store = store_with_lists(schema, {})
        garbage = store.add_garbage()
        store.set_var("p", garbage)
        with pytest.raises(ExecutionError, match="dangling"):
            run("  q := p^.next", store)

    def test_uninitialised_field_read_raises(self, schema):
        store = store_with_lists(schema, {}, garbage=1)
        program = build("  new(p, red);\n  q := p^.next")
        with pytest.raises(ExecutionError, match="uninitialised"):
            Interpreter(program).run(store)

    def test_write_field_of_nil_raises(self, schema):
        store = store_with_lists(schema, {})
        with pytest.raises(ExecutionError):
            run("  x^.next := nil", store)


class TestNewDispose:
    def test_new_converts_first_garbage(self, schema):
        store = store_with_lists(schema, {"x": ["red"]}, garbage=2)
        expected = store.first_garbage()
        run("  new(p, blue)", store)
        assert store.var("p") == expected
        cell = store.cell(expected)
        assert cell.kind is CellKind.RECORD
        assert cell.variant == "blue"
        assert cell.next is None

    def test_new_without_memory_raises_oom(self, schema):
        store = store_with_lists(schema, {})
        with pytest.raises(OutOfMemory):
            run("  new(p, red)", store)

    def test_new_into_field(self, schema):
        store = store_with_lists(schema, {"x": ["red"]}, garbage=1)
        run("  new(x^.next, blue)", store)
        target = store.cell(store.var("x")).next
        assert store.cell(target).variant == "blue"

    def test_dispose_makes_garbage(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        cell_id = store.var("x")
        run("  p := x;\n  x := nil;\n  dispose(p, red)", store)
        cell = store.cell(cell_id)
        assert cell.kind is CellKind.GARBAGE
        assert cell.next is None

    def test_dispose_wrong_variant_raises(self, schema):
        store = store_with_lists(schema, {"x": ["blue"]})
        with pytest.raises(ExecutionError, match="dispose"):
            run("  dispose(x, red)", store)

    def test_dispose_nil_raises(self, schema):
        store = store_with_lists(schema, {})
        with pytest.raises(ExecutionError):
            run("  dispose(x, red)", store)


class TestGuards:
    def test_short_circuit_and(self, schema):
        store = store_with_lists(schema, {})
        # p = nil: p^.tag would error if evaluated
        run("  if p <> nil and p^.tag = red then x := nil "
            "else y := nil", store)

    def test_short_circuit_or(self, schema):
        store = store_with_lists(schema, {})
        run("  if p = nil or p^.tag = red then y := nil", store)

    def test_tag_of_nil_raises(self, schema):
        store = store_with_lists(schema, {})
        with pytest.raises(ExecutionError, match="tag"):
            run("  if p^.tag = red then x := nil", store)

    def test_variant_test_value(self, schema):
        store = store_with_lists(schema, {"x": ["blue"]})
        run("  if x^.tag = blue then p := x", store)
        assert store.var("p") == store.var("x")

    def test_not_guard(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        run("  if not x = nil then p := x", store)
        assert store.var("p") == store.var("x")


class TestLoops:
    def test_loop_runs_to_completion(self, schema):
        store = store_with_lists(schema, {"x": ["red", "blue", "red"]})
        run("  while x <> nil do x := x^.next", store)
        assert store.var("x") == NIL_ID

    def test_loop_iteration_limit(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        store.cell(store.var("x")).next = store.var("x")  # cycle
        program = build("  while x <> nil do x := x^.next")
        with pytest.raises(ExecutionError, match="iterations"):
            Interpreter(program, max_loop_iterations=10).run(store)

    def test_invariant_checked_when_enabled(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        program = build(
            "  while x <> nil do {x = nil} x := x^.next")
        with pytest.raises(AssertionFailure):
            Interpreter(program, check_assertions=True).run(store)
        # without the flag the invariant is ignored
        Interpreter(build(
            "  while x <> nil do {x = nil} x := x^.next"),
            check_assertions=False).run(
            store_with_lists(schema, {"x": ["red"]}))


class TestAssertions:
    def test_cut_point_assertion_failure(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        program = build("  x := nil\n  {x <> nil}\n  y := nil")
        with pytest.raises(AssertionFailure):
            Interpreter(program).run(store)

    def test_cut_point_assertion_success(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        program = build("  x := nil\n  {x = nil}\n  y := nil")
        Interpreter(program).run(store)


class TestTrace:
    def test_trace_records_steps(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        program = build("  p := x;\n  x := nil")
        trace = Trace()
        Interpreter(program).run(store, trace)
        assert len(trace.steps) == 2
        assert trace.steps[0].statement == "p := x"
        assert trace.failure is None
        assert "[0] p := x" in trace.render()

    def test_trace_records_failure(self, schema):
        store = store_with_lists(schema, {})
        program = build("  p := x^.next")
        trace = Trace()
        with pytest.raises(ExecutionError):
            Interpreter(program).run(store, trace)
        assert trace.failure is not None
        assert "FAILURE" in trace.render()

    def test_run_statements_subset(self, schema):
        store = store_with_lists(schema, {"x": ["red"]})
        program = build("  p := x;\n  x := nil")
        Interpreter(program).run_statements(store, program.body[:1])
        assert store.var("p") != NIL_ID
        assert store.var("x") != NIL_ID

    def test_reverse_program_end_to_end(self, schema):
        from repro.programs import REVERSE
        program = check_program(parse_program(REVERSE))
        from repro.stores.model import Store
        store = Store(program.schema)
        store.make_list("x", ["red", "blue", "red"])
        Interpreter(program).run(store)
        assert store.var("x") == NIL_ID
        variants = [store.cell(i).variant for i in store.list_of("y")]
        assert variants == ["red", "blue", "red"]
        assert store.is_well_formed()
