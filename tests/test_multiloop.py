"""Multi-loop programs: sequential loops, nested loops, and the
double-reverse identity."""

import pytest

from repro.exec.interpreter import Interpreter
from repro.pascal import check_program, parse_program
from repro.stores import Store
from repro.verify import verify_source

DOUBLE_REVERSE = """
program doublerev;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x, y, z: List;
{pointer} var p: List;
begin
  {y = nil & z = nil}
  while x <> nil do
    {z = nil}
    begin
    p := x^.next;
    x^.next := y;
    y := x;
    x := p
  end
  {x = nil & z = nil}
  while y <> nil do
    {x = nil}
    begin
    p := y^.next;
    y^.next := z;
    z := y;
    y := p
  end
  {x = nil & y = nil}
end.
"""


class TestDoubleReverse:
    def test_verifies(self):
        result = verify_source(DOUBLE_REVERSE)
        assert result.valid
        # two loops -> entry/preservation per loop + mid assertion +
        # final postcondition
        assert len(result.results) >= 5

    def test_identity_concretely(self):
        program = check_program(parse_program(DOUBLE_REVERSE))
        store = Store(program.schema)
        store.make_list("x", ["red", "blue", "blue", "red"])
        Interpreter(program).run(store)
        variants = [store.cell(i).variant for i in store.list_of("z")]
        assert variants == ["red", "blue", "blue", "red"]
        assert store.is_well_formed()


NESTED = """
program nested;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
  {true}
  p := x;
  while p <> nil do begin
    q := x;
    while q <> nil do
      {x<next*>p & p <> nil}
      q := q^.next;
    p := p^.next
  end
  {p = nil}
end.
"""


class TestNestedLoops:
    def test_nested_traversal_verifies(self):
        result = verify_source(NESTED)
        assert result.valid

    def test_five_subgoals(self):
        from repro.verify import Verifier
        program = check_program(parse_program(NESTED))
        assert len(Verifier(program).collect_subgoals()) == 5

    def test_concrete_quadratic_walk(self):
        program = check_program(parse_program(NESTED))
        store = Store(program.schema)
        store.make_list("x", ["red", "red", "blue"])
        Interpreter(program).run(store)
        assert store.var("p") == 0


THREE_PHASES = """
program phases;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
  {q = nil}
  p := x;
  while p <> nil do {q = nil} p := p^.next
  {p = nil & q = nil}
  p := x;
  while p <> nil do
    {q = nil | q^.next = p}
    begin q := p; p := p^.next end
  {p = nil & (q = nil | q^.next = nil)}
  while q <> nil do {p = nil} q := nil
  {p = nil & q = nil}
end.
"""


class TestSequentialLoops:
    def test_three_loops_verify(self):
        result = verify_source(THREE_PHASES)
        assert result.valid
        assert len(result.results) == 3 * 2 + 3  # 2 per loop + cuts

    def test_descriptions_are_ordered(self):
        from repro.verify import Verifier
        program = check_program(parse_program(THREE_PHASES))
        descriptions = [s.description
                        for s in Verifier(program).collect_subgoals()]
        entries = [d for d in descriptions if "loop entry" in d]
        assert len(entries) == 3
