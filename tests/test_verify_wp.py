"""Tests for the weakest-precondition automata (paper §4).

Cross-validates the paper's two formulations of triple validity —
implication checking (the engine) and language inclusion
``L(pre) ∩ L(alloc) ⊆ L(wp)`` — and checks the paper's concrete claim
that the wp of the §4 triple equals ``pre & alloc``.
"""

import pytest

from repro.pascal import check_program, parse_program
from repro.programs import TRIPLE
from repro.stores.encode import encode_store
from repro.verify import verify_source
from repro.verify.wp import (triple_is_valid_by_inclusion, wp_automaton)

from util import list_schema, store_with_lists, wrap_program


def build(body, pre="", post=""):
    return check_program(parse_program(wrap_program(body, pre=pre,
                                                    post=post)))


class TestWpMembership:
    def test_wp_of_skip_is_wellformedness(self):
        program = build("  x := x")
        result = wp_automaton(program, program.body)
        schema = program.schema
        good = store_with_lists(schema, {"x": ["red"]})
        assert result.accepts_store(good)

    def test_wp_excludes_error_stores(self):
        program = build("  p := x^.next")
        result = wp_automaton(program, program.body)
        schema = program.schema
        empty = store_with_lists(schema, {})          # x = nil: error
        full = store_with_lists(schema, {"x": ["red", "red"]})
        assert not result.accepts_store(empty)
        assert result.accepts_store(full)

    def test_wp_respects_postcondition(self):
        program = build("  p := x")
        result = wp_automaton(program, program.body, "p <> nil")
        schema = program.schema
        assert result.accepts_store(
            store_with_lists(schema, {"x": ["red"]}))
        assert not result.accepts_store(store_with_lists(schema, {}))

    def test_oom_stores_are_excused(self):
        program = build("  new(p, red);\n  p^.next := x;\n  x := p")
        result = wp_automaton(program, program.body)
        schema = program.schema
        no_memory = store_with_lists(schema, {"x": ["red"]})
        with_memory = store_with_lists(schema, {"x": ["red"]},
                                       garbage=1)
        assert result.accepts_store(no_memory)   # excused
        assert result.accepts_store(with_memory)
        word = result.layout.symbols_to_word(
            encode_store(no_memory), result.compiler.tracks())
        assert result.oom_automaton.accepts(word)

    def test_smallest_store_synthesis(self):
        program = build("  p := x^.next", post="p <> nil")
        result = wp_automaton(program, program.body, "p <> nil")
        store = result.smallest_store(program.schema)
        assert store is not None
        # needs at least two cells: x -> c1 -> c2 so p = c2 != nil
        assert len(store.list_of("x")) >= 2


class TestInclusionFormulation:
    @pytest.mark.parametrize("pre,post,expected", [
        ("x <> nil", "p <> nil", True),    # p := x inherits x <> nil
        ("x <> nil", "p = x^.next | p = nil", False),
        (None, "p = x", True),
        ("x = nil", "p = nil", True),
    ])
    def test_assignment_triples(self, pre, post, expected):
        program = build("  p := x")
        assert triple_is_valid_by_inclusion(
            program, program.body, pre, post) is expected

    def test_agrees_with_engine_on_valid_triple(self):
        source = wrap_program("  p := x", pre="x <> nil",
                              post="p = x & p <> nil")
        assert verify_source(source).valid
        program = check_program(parse_program(source))
        assert triple_is_valid_by_inclusion(
            program, program.body, "x <> nil", "p = x & p <> nil")

    def test_agrees_with_engine_on_invalid_triple(self):
        source = wrap_program("  p := x^.next", post="p <> nil")
        assert not verify_source(source).valid
        program = check_program(parse_program(source))
        assert not triple_is_valid_by_inclusion(
            program, program.body, None, "p <> nil")


class TestPaperTriple:
    """§4's worked example: its wp equals pre & alloc."""

    @pytest.fixture(scope="class")
    def setup(self):
        program = check_program(parse_program(TRIPLE))
        result = wp_automaton(
            program, program.body,
            "x<next*>q & q^.next = nil & p <> q")
        return program, result

    def test_triple_valid_by_inclusion(self, setup):
        program, _ = setup
        assert triple_is_valid_by_inclusion(
            program, program.body,
            "x<next*>p & p^.next = nil",
            "x<next*>q & q^.next = nil & p <> q")

    def test_wp_contains_pre_and_alloc_stores(self, setup):
        program, result = setup
        schema = program.schema
        store = store_with_lists(schema, {"x": ["red", "blue"]},
                                 {"p": ("x", 1)}, garbage=1)
        assert result.accepts_store(store)

    def test_wp_rejects_pre_violations_with_memory(self, setup):
        """With memory available (not excused), a store violating the
        paper's precondition (p not last) is outside the wp."""
        program, result = setup
        schema = program.schema
        store = store_with_lists(schema, {"x": ["red", "blue"]},
                                 {"p": ("x", 0)}, garbage=1)
        assert not result.accepts_store(store)
