"""Tests for concrete store-logic evaluation (the paper's semantics)."""

import pytest

from repro.storelogic import parse_formula, check_formula
from repro.storelogic.eval import eval_formula, eval_term
from repro.storelogic.ast import TermDeref, TermVar
from repro.stores.model import NIL_ID

from util import list_schema, store_with_lists, terminator_schema


@pytest.fixture
def schema():
    return list_schema()


@pytest.fixture
def store(schema):
    # x: red -> red -> blue -> red, p at the blue cell, y empty, q nil
    return store_with_lists(schema,
                            {"x": ["red", "red", "blue", "red"]},
                            {"p": ("x", 2)})


def holds(text, store):
    formula = check_formula(parse_formula(text), store.schema)
    return eval_formula(formula, store)


class TestTerms:
    def test_variables_and_nil(self, store):
        assert eval_term(TermVar("y"), store) == NIL_ID
        assert eval_term(TermVar("p"), store) == store.var("p")

    def test_traversal(self, store):
        term = TermDeref(TermVar("x"), "next")
        assert eval_term(term, store) == store.list_of("x")[1]

    def test_traversal_from_nil_is_undefined(self, store):
        term = TermDeref(TermVar("y"), "next")
        assert eval_term(term, store) is None

    def test_traversal_from_garbage_is_undefined(self, store):
        garbage = store.add_garbage()
        store.set_var("q", garbage)
        assert eval_term(TermDeref(TermVar("q"), "next"), store) is None

    def test_traversal_past_end_is_undefined(self, store):
        term = TermVar("p")
        for _ in range(3):
            term = TermDeref(term, "next")
        assert eval_term(term, store) is None

    def test_missing_variant_field_is_undefined(self):
        schema = terminator_schema()
        from repro.stores.model import Store
        store = Store(schema)
        leaf = store.add_record("Node", "leaf")
        store.set_var("x", leaf)
        assert eval_term(TermDeref(TermVar("x"), "next"), store) is None

    def test_uninitialised_field_is_undefined(self, store):
        fresh = store.add_record("Item", "red")  # next is None
        store.set_var("q", fresh)
        assert eval_term(TermDeref(TermVar("q"), "next"), store) is None


class TestAtoms:
    def test_equality(self, store):
        assert holds("x = x", store)
        assert holds("y = nil", store)
        assert not holds("x = p", store)

    def test_equality_false_on_undefined(self, store):
        # y = nil, so y^.next is undefined: both = and <> variants of
        # the atom are false / true respectively under ~(=).
        assert not holds("y^.next = nil", store)
        assert holds("y^.next <> nil", store)  # ~(undefined = nil)

    def test_last_cell_next_nil(self, store):
        assert holds("p^.next^.next = nil", store)


class TestRouting:
    def test_reachability(self, store):
        assert holds("x<next*>p", store)
        assert not holds("p<next*>x", store)
        assert holds("x<next+>p", store)
        assert not holds("x<next+>x", store)
        assert holds("x<next*>x", store)

    def test_reach_nil(self, store):
        assert holds("x<next*>nil", store)
        assert holds("p<next.next>nil", store)

    def test_empty_list_routing(self, store):
        assert holds("y<next*>nil", store)   # zero steps from nil
        assert not holds("y<next+>nil", store)

    def test_tests_along_route(self, store):
        assert holds("x<next.next.(List:blue)?>p", store)
        assert not holds("x<next.(List:blue)?>p", store)
        assert holds("<(Item:blue)?>p", store)
        assert not holds("<(Item:red)?>p", store)

    def test_union_route(self, store):
        assert holds("x<(next+(List:red)?)*>p", store)

    def test_garb_test(self, store):
        assert not holds("ex g: <garb?>g", store)
        store.add_garbage()
        assert holds("ex g: <garb?>g", store)
        assert holds("ex g: <garb?>g & (all r: <garb?>r => r = g)",
                     store)
        store.add_garbage()
        assert not holds("ex g: <garb?>g & (all r: <garb?>r => r = g)",
                         store)

    def test_nil_test(self, store):
        assert holds("<nil?>nil", store)
        assert not holds("<nil?>p", store)

    def test_route_does_not_leave_nil(self, store):
        assert not holds("nil<next>x", store)


class TestPaperFormulas:
    """The three example formulas of §3, on the §3 store."""

    def test_not_red_implies_reachable(self, store):
        assert holds("~<(List:red)?>p => x<next*>p", store)

    def test_no_pointers_into_garbage(self, store):
        store.add_garbage()
        assert holds("all c, d: c<next>d => ~<garb?>d", store)

    def test_at_most_one_incoming(self, store):
        assert holds(
            "all c, q, r: (c <> nil & q<next>c & r<next>c) => q = r",
            store)


class TestQuantifiers:
    def test_domain_includes_nil_and_garbage(self, store):
        store.add_garbage()
        assert holds("ex c: <nil?>c", store)
        assert holds("ex c: <garb?>c", store)

    def test_shadowing_program_variable(self, store):
        # q the program variable is nil; the bound q ranges over cells
        assert holds("ex q: <(Item:blue)?>q", store)

    def test_nested_quantifiers(self, store):
        assert holds("all c: (ex d: c<next*>d & <nil?>d) | <garb?>c",
                     store)

    def test_multi_name_quantifier(self, store):
        assert holds("ex c, d: c<next>d & <(Item:blue)?>d", store)


class TestConnectives:
    def test_iff_and_implies(self, store):
        # x = nil is false; y^.next = p is false (undefined term)
        assert holds("x = nil <=> y^.next = p", store)
        assert holds("x = x <=> y^.next = p", store) is False
        assert holds("(x = x <=> y = nil) & true", store)
        assert holds("false => x = nil", store)
        assert holds("true | false", store)
        assert not holds("false", store)
