"""Pytest configuration: make the shared helpers importable and
register the ``slow`` marker used by the heavyweight integration
tests."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full-pipeline verification tests (seconds each)")
