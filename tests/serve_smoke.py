"""CI smoke test for the serving daemon.

Starts a real ``repro serve`` subprocess on a unix socket, drives the
whole corpus through it from several concurrent clients under a tight
per-request budget, and asserts the serving robustness contract:

* every response is a structured JSON document with a documented
  status — no raw traceback, no hung request;
* the daemon drains cleanly on SIGTERM (exit code 0, socket
  unlinked);
* no orphaned worker process survives the run.

Run from the repository root (CI's ``serve-smoke`` job)::

    PYTHONPATH=src python tests/serve_smoke.py --clients 4 --budget 1
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import List, Optional, Tuple

from repro.programs import ALL_PROGRAMS
from repro.serve.client import ServeClient

STRUCTURED_OUTCOMES = frozenset({
    "VERIFIED", "FAILED", "TIMEOUT", "BUDGET_EXCEEDED", "ERROR",
    "INTERRUPTED",
})

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def start_daemon(sock: str, workers: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--unix-socket", sock, "--workers", str(workers),
         "--max-concurrent", str(workers), "--max-queue", "16"],
        env=env, cwd=_REPO, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def wait_healthy(process: subprocess.Popen, client: ServeClient,
                 timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"daemon died during startup "
                             f"(exit {process.returncode}):\n"
                             f"{process.stderr.read()}")
        try:
            status, _, _ = client.health()
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.05)
    raise SystemExit("daemon never became healthy")


def drive_clients(sock: str, clients: int, budget: float
                  ) -> Tuple[List[Tuple[str, int, object]], List[str]]:
    """Round-robin the corpus across ``clients`` concurrent threads;
    returns (responses, problems)."""
    names = sorted(ALL_PROGRAMS)
    responses: List[Tuple[str, int, object]] = []
    problems: List[str] = []
    lock = threading.Lock()

    def one_client(offset: int) -> None:
        client = ServeClient(unix_socket=sock, timeout=300.0)
        for name in names[offset::clients]:
            try:
                status, _, document = client.verify(
                    program=name, budget={"timeout": budget})
            except Exception as exc:  # noqa: BLE001 — a transport
                # failure is exactly what this harness must surface.
                with lock:
                    problems.append(f"{name}: transport error: {exc}")
                continue
            with lock:
                responses.append((name, status, document))

    threads = [threading.Thread(target=one_client, args=(index,))
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, problems


def check_responses(responses, problems, expected: int) -> None:
    if len(responses) != expected:
        problems.append(f"expected {expected} responses, "
                        f"got {len(responses)}")
    for name, status, document in responses:
        if status != 200:
            problems.append(f"{name}: status {status}: {document}")
            continue
        if not isinstance(document, dict):
            problems.append(f"{name}: non-object body")
            continue
        if "Traceback" in repr(document):
            problems.append(f"{name}: raw traceback in response")
        if document.get("schema_version") != 2:
            problems.append(f"{name}: wrong schema_version")
        if document.get("outcome") not in STRUCTURED_OUTCOMES:
            problems.append(f"{name}: unstructured outcome "
                            f"{document.get('outcome')!r}")
        for subgoal in document.get("subgoals", ()):
            if subgoal.get("outcome") not in STRUCTURED_OUTCOMES:
                problems.append(f"{name}: unstructured subgoal "
                                f"outcome {subgoal.get('outcome')!r}")


def check_error_paths(sock: str, problems: List[str]) -> None:
    """Protocol-level failures must be structured too."""
    client = ServeClient(unix_socket=sock, timeout=60.0)
    for label, (status, _, body), expected in (
            ("unknown program", client.verify(program="no-such"), 404),
            ("bad field type",
             client.request("POST", "/v1/verify", {"program": [1]}),
             400),
            ("unknown job", client.job("not-a-job"), 404),
            ("unrouted path", client.request("GET", "/nope"), 404)):
        if status != expected:
            problems.append(f"{label}: status {status} != {expected}")
        elif not isinstance(body, dict) or "error" not in body:
            problems.append(f"{label}: unstructured error body")


def shutdown(process: subprocess.Popen, sock: str,
             problems: List[str]) -> None:
    process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(60)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(10)
        problems.append("daemon did not stop within 60s of SIGTERM")
        return
    if code != 0:
        problems.append(f"daemon exited {code}, expected 0:\n"
                        f"{process.stderr.read()}")
    if os.path.exists(sock):
        problems.append("daemon left its socket behind")
    probe = subprocess.run(["pgrep", "-f", sock],
                           capture_output=True, text=True)
    if probe.returncode == 0:
        problems.append(f"orphaned processes survive: {probe.stdout}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent-client smoke test against a real "
                    "repro serve daemon.")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--budget", type=float, default=1.0,
                        help="per-request timeout budget in seconds")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as root:
        sock = os.path.join(root, "d.sock")
        process = start_daemon(sock, args.workers)
        try:
            wait_healthy(process, ServeClient(unix_socket=sock,
                                              timeout=10.0))
            started = time.monotonic()
            responses, problems = drive_clients(sock, args.clients,
                                                args.budget)
            elapsed = time.monotonic() - started
            check_responses(responses, problems, len(ALL_PROGRAMS))
            check_error_paths(sock, problems)
            shutdown(process, sock, problems)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(10)

    for line in problems:
        print(f"PROBLEM: {line}", file=sys.stderr)
    outcomes = sorted((name, document.get("outcome")
                       if isinstance(document, dict) else None)
                      for name, _, document in responses)
    print(f"serve smoke: {len(responses)} responses from "
          f"{args.clients} clients in {elapsed:.1f}s: "
          f"{'OK' if not problems else f'{len(problems)} problems'}")
    print(f"outcomes: {outcomes}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
