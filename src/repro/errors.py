"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
clients can catch a single type.  Sub-hierarchies mirror the pipeline
stages: parsing, type checking, logic translation, and verification.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class ParseError(ReproError):
    """A source text (Pascal program or store-logic formula) is malformed.

    Attributes:
        line: 1-based line of the offending token, or 0 if unknown.
        column: 1-based column of the offending token, or 0 if unknown.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        # The raw (un-prefixed) message is kept so pickling can rebuild
        # the exception through __init__ without double-prefixing.
        self._raw_message = message
        # A position with line 0 but a real column (a lexer error on a
        # synthetic first line) still deserves its prefix.
        if line or column:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column

    def __reduce__(self):
        return (type(self), (self._raw_message, self.line, self.column))


class TypeError_(ReproError):
    """A Pascal program or a store-logic formula is ill-typed."""


class StoreError(ReproError):
    """A concrete store is malformed or an operation on it is invalid."""


class ExecutionError(ReproError):
    """The concrete interpreter hit a runtime error (nil dereference,
    dangling dereference, dispose of a wrong variant, out of memory).

    These are exactly the errors the verifier proves absent.
    """


class TranslationError(ReproError):
    """A store-logic formula could not be translated to M2L (for
    example, it mentions an undeclared variable or field)."""


class VerificationError(ReproError):
    """The verification engine was used incorrectly (for example, a
    triple was built from an unchecked program).

    Attributes:
        line: 1-based line of the offending statement, or 0 if unknown.
        column: 1-based column of the offending statement, or 0 if
            unknown.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self._raw_message = message
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)
        self.line = line
        self.column = column

    def __reduce__(self):
        return (type(self), (self._raw_message, self.line, self.column))
