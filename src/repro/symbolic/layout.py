"""The store alphabet as M2L tracks.

A position of the encoded store string carries a label (``nil``,
``lim``, ``garb``, or a record ``(T:v)``) and a variable bitmap.  In
the logic this becomes one free second-order variable — one automaton
*track* — per label and per program variable: position ``p`` has label
``l`` iff ``p`` belongs to the label's set.

:class:`TrackLayout` owns these variables, converts between
:class:`Symbol` strings and automaton words, and registers the tracks
with a compiler in a deterministic order (labels first, then program
variables) so BDD variable orders are reproducible.

A layout may be *reduced* to a subset of the program variables
(cone-of-influence reduction, :mod:`repro.analysis.coi`): variables
outside the subset get no track at all, shrinking every automaton's
alphabet.  Data variables are never dropped — their segments carry the
string's structure — so only pointer variables can be reduced away.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import StoreError
from repro.mso.ast import Var
from repro.mso.compile import Compiler
from repro.stores.encode import (LABEL_GARB, LABEL_LIM, LABEL_NIL, Label,
                                 Symbol, record_label)
from repro.stores.schema import Schema


class TrackLayout:
    """Second-order track variables for one program's store alphabet.

    Args:
        schema: the program's store schema.
        variables: the program variables to keep a track for (default:
            all of them).  Data variables are always kept regardless of
            this argument; the remaining pointer variables keep the
            schema's declaration order.
        order: the registration (and therefore BDD level) order of the
            kept variables (default: declaration order).  Names outside
            the kept set are ignored; kept names missing from ``order``
            are appended in declaration order.  The order renames BDD
            levels only — semantics are unchanged (see
            :mod:`repro.analysis.order`).
    """

    def __init__(self, schema: Schema,
                 variables: Optional[Iterable[str]] = None,
                 order: Optional[Iterable[str]] = None) -> None:
        self.schema = schema
        self.labels: List[Label] = [LABEL_NIL, LABEL_LIM, LABEL_GARB]
        self.labels += [record_label(type_name, variant)
                        for type_name, variant in schema.variant_labels()]
        self.label_vars: Dict[Label, Var] = {
            label: Var.second(_label_name(label)) for label in self.labels}
        if variables is None:
            kept = list(schema.all_vars())
        else:
            keep = set(variables) | set(schema.data_vars)
            kept = [name for name in schema.all_vars() if name in keep]
        if order is not None:
            kept_set = set(kept)
            ordered = [name for name in order if name in kept_set]
            ordered += [name for name in kept if name not in set(ordered)]
            kept = ordered
        self.var_vars: Dict[str, Var] = {
            name: Var.second(f"${name}") for name in kept}

    # ------------------------------------------------------------------

    def var_names(self) -> List[str]:
        """The program variables this layout keeps a track for."""
        return list(self.var_vars)

    def dropped_vars(self) -> List[str]:
        """The program variables reduced away (no track)."""
        return [name for name in self.schema.all_vars()
                if name not in self.var_vars]

    def free_vars(self) -> List[Var]:
        """All track variables, in canonical order."""
        return list(self.label_vars.values()) + list(self.var_vars.values())

    def register(self, compiler: Compiler) -> None:
        """Allocate this layout's tracks first in the given compiler."""
        for var in self.free_vars():
            compiler.track(var)

    def record_labels(self) -> List[Label]:
        """All record-cell labels."""
        return self.labels[3:]

    def labels_with_field(self, field: Optional[str] = None) -> List[Label]:
        """Record labels whose variant has a pointer field.

        With ``field`` given, only labels whose field has that name.
        """
        result = []
        for label in self.record_labels():
            info = self.schema.record(label[1]).field_of(label[2])
            if info is not None and (field is None or info.name == field):
                result.append(label)
        return result

    def labels_without_field(self) -> List[Label]:
        """Record labels whose variant has no pointer field."""
        with_field = set(self.labels_with_field())
        return [label for label in self.record_labels()
                if label not in with_field]

    def labels_of_type(self, record_name: str) -> List[Label]:
        """Record labels of the given record type."""
        return [label for label in self.record_labels()
                if label[1] == record_name]

    # ------------------------------------------------------------------
    # Words <-> symbol strings
    # ------------------------------------------------------------------

    def symbols_to_word(self, symbols: Sequence[Symbol],
                        tracks: Mapping[Var, int]) -> List[Dict[int, bool]]:
        """Encode a symbol string as an automaton word."""
        word = []
        for symbol in symbols:
            assignment: Dict[int, bool] = {}
            for label, var in self.label_vars.items():
                assignment[tracks[var]] = (symbol.label == label)
            for name, var in self.var_vars.items():
                assignment[tracks[var]] = (name in symbol.bitmap)
            word.append(assignment)
        return word

    def word_to_symbols(self, word: Sequence[Mapping[int, bool]],
                        tracks: Mapping[Var, int]) -> List[Symbol]:
        """Decode an automaton word into a symbol string.

        Tracks missing from a symbol's assignment are don't-cares and
        read as False.  Raises StoreError when a position does not
        carry exactly one label.
        """
        symbols = []
        for index, assignment in enumerate(word):
            found = [label for label, var in self.label_vars.items()
                     if assignment.get(tracks[var], False)]
            if len(found) != 1:
                raise StoreError(
                    f"position {index} carries {len(found)} labels")
            bitmap = frozenset(
                name for name, var in self.var_vars.items()
                if assignment.get(tracks[var], False))
            symbols.append(Symbol(found[0], bitmap))
        return symbols


def _label_name(label: Label) -> str:
    if label[0] == "rec":
        return f"L({label[1]}:{label[2]})"
    return f"L{label[0]}"
