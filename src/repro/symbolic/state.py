"""Symbolic stores: interpretations of the basic store relations.

The paper's transduction technique (§4): "all basic relationships,
such as the successor relation between cells, are accounted for in a
predicate after each program statement".  A :class:`SymbolicStore`
holds exactly those predicates, each as a function from M2L position
variables to formulas *over the initial store string*:

* ``var_pos[v](P)`` — variable ``v`` points at position ``P`` (the nil
  cell is position 0);
* ``next_to(P, Q)`` — the cell at ``P`` has its pointer field set to
  the cell at ``Q``;
* ``next_nil(P)`` — the cell at ``P`` has its pointer field set to nil;
* ``label_of[(T, v)](P)`` — ``P`` is a record cell of type T, variant v;
* ``garb(P)`` — ``P`` is (currently) a garbage cell.

Statements produce new stores whose predicates wrap the old ones
(:mod:`repro.symbolic.exec`); positions never change, only their
interpretation — that is what makes the weakest-precondition
computation a formula rewriting.

All predicate functions are memoised on their argument variables, so
repeated queries share formula objects and the compiler's cache hits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from repro.mso.ast import Formula, Var, VarKind
from repro.mso.build import FormulaBuilder as F
from repro.stores.encode import Label
from repro.stores.schema import Schema
from repro.symbolic.layout import TrackLayout

PosFn = Callable[[Var], Formula]
Rel1 = Callable[[Var], Formula]
Rel2 = Callable[[Var, Var], Formula]


def memo1(fn: Rel1) -> Rel1:
    """Memoise a unary predicate on its argument variable."""
    cache: Dict[Var, Formula] = {}

    def wrapped(p: Var) -> Formula:
        found = cache.get(p)
        if found is None:
            found = fn(p)
            cache[p] = found
        return found

    return wrapped


def memo2(fn: Rel2) -> Rel2:
    """Memoise a binary predicate on its argument variables."""
    cache: Dict[tuple, Formula] = {}

    def wrapped(p: Var, q: Var) -> Formula:
        key = (p, q)
        found = cache.get(key)
        if found is None:
            found = fn(p, q)
            cache[key] = found
        return found

    return wrapped


def fresh_pos(prefix: str) -> Var:
    """A fresh first-order position variable."""
    return Var.fresh(prefix, VarKind.FIRST)


#: Process-wide store generation numbers.  Unlike ``id()``, a
#: generation is never reused after garbage collection, so it is a
#: safe cache key for formulas derived from a store (see
#: ``Verifier._eval_guard_cached``).
_generations = itertools.count()


@dataclass
class SymbolicStore:
    """One interpretation of the basic store relations."""

    schema: Schema
    layout: TrackLayout
    var_pos: Dict[str, PosFn]
    next_to: Rel2
    next_nil: Rel1
    label_of: Dict[Label, Rel1]
    garb: Rel1

    # ------------------------------------------------------------------
    # Derived predicates (memoised lazily per store)
    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        self._derived1: Dict[object, Rel1] = {}
        self._derived2: Dict[object, Rel2] = {}
        #: Stable identity (``updated()`` copies get fresh ones too).
        self.generation = next(_generations)

    def is_nil(self, p: Var) -> Formula:
        """Position ``p`` is the nil cell (always position 0)."""
        return F.first(p)

    def is_record(self, p: Var) -> Formula:
        """``p`` is currently a record cell (any label)."""
        return self._rel1("is_record", lambda q: F.disj(
            fn(q) for fn in self.label_of.values()))(p)

    def is_cell(self, p: Var) -> Formula:
        """``p`` is a cell: nil, a record, or garbage (not a lim)."""
        return self._rel1("is_cell", lambda q: F.disj(
            [self.is_nil(q), self.is_record(q), self.garb(q)]))(p)

    def rec_of_type(self, record_name: str) -> Rel1:
        """``p`` is a record cell of the given type."""
        return self._rel1(("rec_of_type", record_name), lambda q: F.disj(
            self.label_of[label](q)
            for label in self.layout.labels_of_type(record_name)))

    def has_field(self, field_name: Optional[str] = None) -> Rel1:
        """``p`` is a record cell whose variant has a pointer field
        (of the given name, when one is supplied)."""
        labels = self.layout.labels_with_field(field_name)
        return self._rel1(("has_field", field_name), lambda q: F.disj(
            self.label_of[label](q) for label in labels))

    def deref(self, field_name: str) -> Rel2:
        """``deref(P, Q)``: traversing ``field_name`` from the cell at
        ``P`` is defined and reaches the cell at ``Q`` (``Q`` is
        position 0 when the field holds nil)."""
        def build(p: Var, q: Var) -> Formula:
            return F.and_(
                self.has_field(field_name)(p),
                F.or_(self.next_to(p, q),
                      F.and_(self.next_nil(p), F.first(q))))
        return self._rel2(("deref", field_name), build)

    def deref_defined(self, field_name: str) -> Rel1:
        """``p`` is a record cell whose variant has the field and whose
        field value is defined (a cell or nil)."""
        def build(p: Var) -> Formula:
            target = fresh_pos("dd")
            return F.and_(
                self.has_field(field_name)(p),
                F.or_(self.next_nil(p),
                      F.ex1([target], self.next_to(p, target))))
        return self._rel1(("deref_defined", field_name), build)

    def first_garbage(self, p: Var) -> Formula:
        """``p`` is the lowest-position garbage cell (the allocator's
        deterministic choice)."""
        def build(q: Var) -> Formula:
            earlier = fresh_pos("fg")
            return F.and_(
                self.garb(q),
                F.not_(F.ex1([earlier], F.and_(self.garb(earlier),
                                               F.less(earlier, q)))))
        return self._rel1("first_garbage", build)(p)

    def some_garbage(self) -> Formula:
        """Some garbage cell exists (allocation can proceed)."""
        p = fresh_pos("sg")
        return F.ex1([p], self.garb(p))

    # ------------------------------------------------------------------

    def updated(self, **changes: object) -> "SymbolicStore":
        """A copy with some predicates replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def _rel1(self, key: object, fn: Rel1) -> Rel1:
        found = self._derived1.get(key)
        if found is None:
            found = memo1(fn)
            self._derived1[key] = found
        return found

    def _rel2(self, key: object, fn: Rel2) -> Rel2:
        found = self._derived2.get(key)
        if found is None:
            found = memo2(fn)
            self._derived2[key] = found
        return found


def initial_store(schema: Schema, layout: TrackLayout) -> SymbolicStore:
    """The interpretation reading a canonical store string directly.

    Variable positions are the bitmap tracks; the successor relation
    follows string adjacency (a record cell's next is the following
    position, or nil when that position is a lim).
    """
    label_of: Dict[Label, Rel1] = {}
    for label in layout.record_labels():
        track_var = layout.label_vars[label]
        label_of[label] = memo1(
            lambda p, tv=track_var: F.mem(p, tv))
    garb = memo1(lambda p: F.mem(p, layout.label_vars[("garb",)]))
    lim_var = layout.label_vars[("lim",)]

    record_labels = list(layout.record_labels())
    field_labels = set(layout.labels_with_field())

    def is_rec(p: Var) -> Formula:
        return F.disj(label_of[label](p) for label in record_labels)

    def has_field(p: Var) -> Formula:
        return F.disj(label_of[label](p) for label in field_labels)

    def next_to(p: Var, q: Var) -> Formula:
        return F.conj([has_field(p), F.succ(p, q), is_rec(q)])

    def next_nil(p: Var) -> Formula:
        successor = fresh_pos("nn")
        return F.and_(has_field(p),
                      F.ex1([successor],
                            F.and_(F.succ(p, successor),
                                   F.mem(successor, lim_var))))

    # Variables reduced away by a cone-of-influence layout have no
    # track; their initial interpretation is simply "at nil" (position
    # 0), which every well-formed store can realise, so transduction
    # and wf_graph work on them unchanged.
    var_pos: Dict[str, PosFn] = {}
    for name in schema.all_vars():
        track_var = layout.var_vars.get(name)
        if track_var is None:
            var_pos[name] = memo1(lambda p: F.first(p))
        else:
            var_pos[name] = memo1(lambda p, tv=track_var: F.mem(p, tv))

    return SymbolicStore(schema=schema, layout=layout, var_pos=var_pos,
                         next_to=memo2(next_to), next_nil=memo1(next_nil),
                         label_of=label_of, garb=garb)
