"""The two well-formedness predicates (paper §3).

``wf_string`` constrains the *tracks of the initial string* to be a
canonical encoding of a well-formed store: exactly one label per
position, nil exactly at position 0, one list segment per data
variable (in declaration order) each terminated by a ``lim``, garbage
cells at the end, every variable in exactly one bitmap at the right
place, and the type discipline along segments.

``wf_graph`` states well-formedness of an *arbitrary interpretation*
(a :class:`SymbolicStore` after transduction), where lists need not be
string-consecutive: every variable on nil or a record cell of its
type, no pointers into garbage, next defined and type-correct, at most
one incoming pointer per cell, data roots with no incoming pointer and
mutually distinct, acyclicity, and every record cell owned by some
data variable's list.  Acyclicity and coverage each use a single
second-order quantifier:

* acyclic: every nonempty set of positions has an element whose
  successor lies outside the set;
* coverage: every set containing all data roots and closed under the
  successor relation contains every record cell.
"""

from __future__ import annotations

from typing import List

from repro.mso.ast import FALSE, Formula, Var, VarKind
from repro.mso.build import FormulaBuilder as F
from repro.stores.encode import LABEL_GARB, LABEL_LIM, LABEL_NIL
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import SymbolicStore, fresh_pos


def _fresh_set(prefix: str) -> Var:
    return Var.fresh(prefix, VarKind.SECOND)


# ----------------------------------------------------------------------
# wf_string
# ----------------------------------------------------------------------

def wf_string(layout: TrackLayout) -> Formula:
    """Canonical-encoding constraint over the layout's tracks."""
    schema = layout.schema
    parts: List[Formula] = [
        _one_label_each(layout),
        _nil_at_first(layout),
        _garbage_tail(layout),
        _lim_count(layout, len(schema.data_vars)),
        _records_before_last_lim(layout),
        _nofield_cells_end_segments(layout),
        _adjacent_type_correct(layout),
    ]
    # A reduced layout keeps tracks for a subset of the variables (all
    # data variables are always kept); dropped variables simply have no
    # constraints here.
    for name in layout.var_names():
        parts.append(F.singleton(layout.var_vars[name]))
    for index, name in enumerate(schema.data_vars):
        parts.append(_data_var_placement(layout, index, name))
    for name, target in schema.pointer_vars.items():
        if name in layout.var_vars:
            parts.append(_pointer_var_placement(layout, name, target))
    return F.conj(parts)


def _mem_label(layout: TrackLayout, p: Var, label) -> Formula:
    return F.mem(p, layout.label_vars[label])


def _is_rec(layout: TrackLayout, p: Var) -> Formula:
    return F.disj(_mem_label(layout, p, label)
                  for label in layout.record_labels())


def _rec_of_type(layout: TrackLayout, p: Var, record_name: str) -> Formula:
    return F.disj(_mem_label(layout, p, label)
                  for label in layout.labels_of_type(record_name))


def _one_label_each(layout: TrackLayout) -> Formula:
    p = fresh_pos("ol")
    options = []
    for label in layout.labels:
        others = [F.not_(_mem_label(layout, p, other))
                  for other in layout.labels if other != label]
        options.append(F.conj([_mem_label(layout, p, label)] + others))
    return F.all1([p], F.disj(options))


def _nil_at_first(layout: TrackLayout) -> Formula:
    p = fresh_pos("nf")
    return F.all1([p], F.iff(_mem_label(layout, p, LABEL_NIL), F.first(p)))


def _garbage_tail(layout: TrackLayout) -> Formula:
    p, q = fresh_pos("gt"), fresh_pos("gt")
    return F.all1([p, q], F.implies(
        F.and_(_mem_label(layout, p, LABEL_GARB), F.less(p, q)),
        _mem_label(layout, q, LABEL_GARB)))


def _lims_before(layout: TrackLayout, p: Var, count: int) -> Formula:
    """Exactly ``count`` lim positions lie strictly before ``p``."""
    lim_var = layout.label_vars[LABEL_LIM]
    if count == 0:
        r = fresh_pos("lb")
        return F.not_(F.ex1([r], F.and_(F.mem(r, lim_var), F.less(r, p))))
    marks = [fresh_pos("lb") for _ in range(count)]
    ordered = [F.less(a, b) for a, b in zip(marks, marks[1:])]
    ordered.append(F.less(marks[-1], p))
    lims = [F.mem(m, lim_var) for m in marks]
    r = fresh_pos("lb")
    covered = F.all1([r], F.implies(
        F.and_(F.mem(r, lim_var), F.less(r, p)),
        F.disj(F.eq_pos(r, m) for m in marks)))
    return F.ex1(marks, F.conj(lims + ordered + [covered]))


def _lim_count(layout: TrackLayout, count: int) -> Formula:
    """Exactly ``count`` lim symbols in the whole string."""
    lim_var = layout.label_vars[LABEL_LIM]
    if count == 0:
        q = fresh_pos("lc")
        return F.not_(F.ex1([q], F.mem(q, lim_var)))
    marks = [fresh_pos("lc") for _ in range(count)]
    ordered = [F.less(a, b) for a, b in zip(marks, marks[1:])]
    lims = [F.mem(m, lim_var) for m in marks]
    q = fresh_pos("lc")
    covered = F.all1([q], F.implies(
        F.mem(q, lim_var),
        F.disj(F.eq_pos(q, m) for m in marks)))
    return F.ex1(marks, F.conj(lims + ordered + [covered]))


def _records_before_last_lim(layout: TrackLayout) -> Formula:
    """Every record cell is followed by a later lim symbol."""
    p, q = fresh_pos("rl"), fresh_pos("rl")
    return F.all1([p], F.implies(
        _is_rec(layout, p),
        F.ex1([q], F.and_(F.less(p, q),
                          _mem_label(layout, q, LABEL_LIM)))))


def _nofield_cells_end_segments(layout: TrackLayout) -> Formula:
    """A record cell without a pointer field ends its segment."""
    nofield = layout.labels_without_field()
    if not nofield:
        return F.conj([])
    p, q = fresh_pos("nc"), fresh_pos("nc")
    is_nofield = F.disj(_mem_label(layout, p, label) for label in nofield)
    return F.all1([p, q], F.implies(
        F.and_(is_nofield, F.succ(p, q)),
        _mem_label(layout, q, LABEL_LIM)))


def _adjacent_type_correct(layout: TrackLayout) -> Formula:
    """String adjacency (the initial next relation) respects types."""
    parts = []
    p, q = fresh_pos("tc"), fresh_pos("tc")
    for label in layout.labels_with_field():
        info = layout.schema.record(label[1]).field_of(label[2])
        assert info is not None
        parts.append(F.implies(
            F.conj([_mem_label(layout, p, label), F.succ(p, q),
                    _is_rec(layout, q)]),
            _rec_of_type(layout, q, info.target)))
    if not parts:
        return F.conj([])
    return F.all1([p, q], F.conj(parts))


def _boundary(layout: TrackLayout, a: Var, index: int) -> Formula:
    """``a`` is the delimiter just before segment ``index``: the nil
    position for segment 0, the (index-1)-th lim otherwise."""
    if index == 0:
        return F.first(a)
    return F.and_(_mem_label(layout, a, LABEL_LIM),
                  _lims_before(layout, a, index - 1))


def _data_var_placement(layout: TrackLayout, index: int,
                        name: str) -> Formula:
    record_name = layout.schema.data_vars[name]
    p = fresh_pos("dv")
    a, b = fresh_pos("dv"), fresh_pos("dv")
    empty_segment = F.ex1([a, b], F.conj([
        _boundary(layout, a, index), F.succ(a, b),
        _mem_label(layout, b, LABEL_LIM)]))
    root = fresh_pos("dv")
    at_root = F.and_(
        _rec_of_type(layout, p, record_name),
        F.ex1([root], F.and_(_boundary(layout, root, index),
                             F.succ(root, p))))
    return F.all1([p], F.implies(
        F.mem(p, layout.var_vars[name]),
        F.or_(F.and_(_mem_label(layout, p, LABEL_NIL), empty_segment),
              at_root)))


def _pointer_var_placement(layout: TrackLayout, name: str,
                           record_name: str) -> Formula:
    p = fresh_pos("pv")
    return F.all1([p], F.implies(
        F.mem(p, layout.var_vars[name]),
        F.or_(_mem_label(layout, p, LABEL_NIL),
              _rec_of_type(layout, p, record_name))))


# ----------------------------------------------------------------------
# wf_graph
# ----------------------------------------------------------------------

def wf_graph(store: SymbolicStore) -> Formula:
    """Graph-level well-formedness of an interpretation."""
    schema = store.schema
    parts: List[Formula] = []
    for name in schema.all_vars():
        parts.append(_var_target_ok(store, name))
    parts.append(_no_pointers_into_garbage(store))
    parts.append(_next_defined(store))
    parts.append(_next_type_correct(store))
    parts.append(_injective(store))
    data = list(schema.data_vars)
    for name in data:
        parts.append(_root_no_incoming(store, name))
    for i, left in enumerate(data):
        for right in data[i + 1:]:
            parts.append(_roots_distinct(store, left, right))
    parts.append(_acyclic(store))
    parts.append(_covered(store))
    return F.conj(parts)


def _var_target_ok(store: SymbolicStore, name: str) -> Formula:
    record_name = store.schema.var_type(name)
    p = fresh_pos("vt")
    return F.all1([p], F.implies(
        store.var_pos[name](p),
        F.or_(F.first(p), store.rec_of_type(record_name)(p))))


def _no_pointers_into_garbage(store: SymbolicStore) -> Formula:
    p, q = fresh_pos("pg"), fresh_pos("pg")
    return F.all1([p, q], F.implies(store.next_to(p, q),
                                    store.is_record(q)))


def _next_defined(store: SymbolicStore) -> Formula:
    p, q = fresh_pos("nd"), fresh_pos("nd")
    return F.all1([p], F.implies(
        store.has_field()(p),
        F.or_(store.next_nil(p), F.ex1([q], store.next_to(p, q)))))


def _next_type_correct(store: SymbolicStore) -> Formula:
    parts = []
    p, q = fresh_pos("nt"), fresh_pos("nt")
    for label in store.layout.labels_with_field():
        info = store.schema.record(label[1]).field_of(label[2])
        assert info is not None
        parts.append(F.implies(
            F.and_(store.label_of[label](p), store.next_to(p, q)),
            store.rec_of_type(info.target)(q)))
    if not parts:
        return F.conj([])
    return F.all1([p, q], F.conj(parts))


def _injective(store: SymbolicStore) -> Formula:
    a, b, c = fresh_pos("ij"), fresh_pos("ij"), fresh_pos("ij")
    return F.all1([a, b, c], F.implies(
        F.and_(store.next_to(a, c), store.next_to(b, c)),
        F.eq_pos(a, b)))


def _root_no_incoming(store: SymbolicStore, name: str) -> Formula:
    a, p = fresh_pos("ri"), fresh_pos("ri")
    return F.all1([a, p], F.implies(
        F.and_(store.var_pos[name](p), store.next_to(a, p)), FALSE))


def _roots_distinct(store: SymbolicStore, left: str,
                    right: str) -> Formula:
    p = fresh_pos("rd")
    return F.all1([p], F.implies(
        F.and_(store.var_pos[left](p), store.var_pos[right](p)),
        F.first(p)))


def _acyclic(store: SymbolicStore) -> Formula:
    """Every nonempty position set has an element whose successor lies
    outside the set — functional graphs satisfy this iff acyclic."""
    s = _fresh_set("ac")
    a, b, c = fresh_pos("ac"), fresh_pos("ac"), fresh_pos("ac")
    has_member = F.ex1([a], F.mem(a, s))
    escapes = F.ex1([b], F.and_(
        F.mem(b, s),
        F.not_(F.ex1([c], F.and_(F.mem(c, s), store.next_to(b, c))))))
    return F.all2([s], F.implies(has_member, escapes))


def _covered(store: SymbolicStore) -> Formula:
    """Any next-closed set containing all data roots contains every
    record cell — i.e. no unclaimed memory."""
    s = _fresh_set("cv")
    roots = []
    for name in store.schema.data_vars:
        r = fresh_pos("cv")
        roots.append(F.all1([r], F.implies(
            F.and_(store.var_pos[name](r), store.is_record(r)),
            F.mem(r, s))))
    a, b = fresh_pos("cv"), fresh_pos("cv")
    closed = F.all1([a, b], F.implies(
        F.and_(F.mem(a, s), store.next_to(a, b)), F.mem(b, s)))
    c = fresh_pos("cv")
    all_records = F.all1([c], F.implies(store.is_record(c), F.mem(c, s)))
    return F.all2([s], F.implies(F.conj(roots + [closed]), all_records))
