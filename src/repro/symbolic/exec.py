"""Symbolic execution of loop-free code by predicate transduction.

Implements the paper's §4: "The effect of a statement is to transform
this collection of predicates."  Each statement maps a
:class:`SymbolicStore` to a new one whose predicate functions wrap the
old ones; conditionals execute both branches and merge the resulting
predicates under the guard value.  Along the way two formulas (over
the initial store string) accumulate:

* ``error`` — a run-time error has occurred: dereferencing nil, a
  garbage cell (dangling pointer) or an uninitialised field, writing a
  field of a non-record cell, or disposing a cell of the wrong type or
  variant;
* ``oom`` — allocation found no garbage cell.  Out-of-memory is an
  *excused* condition: Hoare-triple validity assumes "sufficient
  available memory cells", so ``~oom`` is exactly the paper's
  ``alloc(S)`` predicate.

``new`` deterministically converts the lowest-position garbage cell,
which is sound because store-logic satisfaction is invariant under
store isomorphism; ``dispose`` relabels the cell as garbage and clears
its outgoing pointer, leaving any dangling references for the
well-formedness check to catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import VerificationError
from repro.mso.ast import FALSE, Formula, Var
from repro.robust import faults
from repro.robust.budget import tick as _budget_tick
from repro.mso.build import FormulaBuilder as F
from repro.pascal.typed import (FieldLhs, TAnd, TAssertStmt, TAssign,
                                TDispose, TIf, TNew, TNot, TOr, TPath,
                                TPtrCompare, TVariantTest, TWhile, VarLhs)
from repro.stores.encode import record_label
from repro.symbolic.state import (PosFn, Rel1, Rel2, SymbolicStore,
                                  fresh_pos, memo1, memo2)


@dataclass
class ExecOutcome:
    """Result of symbolically executing a loop-free statement list."""

    store: SymbolicStore
    error: Formula
    oom: Formula


def exec_statements(store: SymbolicStore,
                    statements: Sequence[object]) -> ExecOutcome:
    """Execute a loop-free statement sequence symbolically.

    Raises VerificationError on ``while`` loops or cut-point
    assertions — the verification engine must split those out first.
    """
    faults.fire("exec.symbolic")
    error: Formula = FALSE
    oom: Formula = FALSE
    for statement in statements:
        _budget_tick("exec.symbolic")
        outcome = _exec_one(store, statement)
        store = outcome.store
        error = F.or_(error, outcome.error)
        oom = F.or_(oom, outcome.oom)
    return ExecOutcome(store, error, oom)


# ----------------------------------------------------------------------
# Paths and guards
# ----------------------------------------------------------------------

def eval_path(store: SymbolicStore,
              path: TPath) -> Tuple[PosFn, Formula]:
    """The position function of a path plus its dereference errors.

    The position function is only true at the denoted position when
    the whole path is defined; the error formula says some traversal
    step was undefined.
    """
    pos = store.var_pos[path.var]
    error: Formula = FALSE
    for field_name, _target in path.steps:
        source = fresh_pos("pp")
        error = F.or_(error, F.not_(F.ex1(
            [source],
            F.and_(pos(source), store.deref_defined(field_name)(source)))))
        previous = pos
        deref = store.deref(field_name)

        def step(p: Var, prev: PosFn = previous,
                 rel: Rel2 = deref) -> Formula:
            mid = fresh_pos("pm")
            return F.ex1([mid], F.and_(prev(mid), rel(mid, p)))

        pos = memo1(step)
    return pos, error


def _nil_pos(p: Var) -> Formula:
    return F.first(p)


def eval_rhs(store: SymbolicStore,
             path: Optional[TPath]) -> Tuple[PosFn, Formula]:
    """Position of a right-hand side; None stands for ``nil``."""
    if path is None:
        return memo1(_nil_pos), FALSE
    return eval_path(store, path)


def eval_guard(store: SymbolicStore,
               guard: object) -> Tuple[Formula, Formula]:
    """Evaluate a typed guard: (truth value, evaluation error).

    ``and`` / ``or`` are short-circuit, matching the concrete
    interpreter — the paper's ``search`` relies on it.
    """
    if isinstance(guard, TPtrCompare):
        left_pos, left_err = eval_rhs(store, guard.left)
        right_pos, right_err = eval_rhs(store, guard.right)
        meet = fresh_pos("gc")
        value = F.ex1([meet], F.and_(left_pos(meet), right_pos(meet)))
        if guard.negated:
            value = F.not_(value)
        return value, F.or_(left_err, right_err)
    if isinstance(guard, TVariantTest):
        pos, err = eval_path(store, guard.cell)
        probe = fresh_pos("gt")
        err = F.or_(err, F.not_(F.ex1(
            [probe], F.and_(pos(probe),
                            store.rec_of_type(guard.type_name)(probe)))))
        here = fresh_pos("gv")
        label = record_label(guard.type_name, guard.variant)
        value = F.ex1([here], F.and_(pos(here),
                                     store.label_of[label](here)))
        if guard.negated:
            value = F.not_(value)
        return value, err
    if isinstance(guard, TAnd):
        left_val, left_err = eval_guard(store, guard.left)
        right_val, right_err = eval_guard(store, guard.right)
        return (F.and_(left_val, right_val),
                F.or_(left_err, F.and_(left_val, right_err)))
    if isinstance(guard, TOr):
        left_val, left_err = eval_guard(store, guard.left)
        right_val, right_err = eval_guard(store, guard.right)
        return (F.or_(left_val, right_val),
                F.or_(left_err, F.and_(F.not_(left_val), right_err)))
    if isinstance(guard, TNot):
        value, err = eval_guard(store, guard.inner)
        return F.not_(value), err
    raise VerificationError(f"unknown guard {guard!r}")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

def _exec_one(store: SymbolicStore, statement: object) -> ExecOutcome:
    if isinstance(statement, TAssign):
        return _exec_assign(store, statement)
    if isinstance(statement, TNew):
        return _exec_new(store, statement)
    if isinstance(statement, TDispose):
        return _exec_dispose(store, statement)
    if isinstance(statement, TIf):
        return _exec_if(store, statement)
    if isinstance(statement, (TWhile, TAssertStmt)):
        raise VerificationError(
            f"{statement} reached the symbolic executor; the engine must "
            f"split triples at loops and assertions")
    raise VerificationError(f"unknown statement {statement!r}")


def _exec_assign(store: SymbolicStore, statement: TAssign) -> ExecOutcome:
    rhs_pos, rhs_err = eval_rhs(store, statement.rhs)
    if isinstance(statement.lhs, VarLhs):
        new_store = store.updated(var_pos={**store.var_pos,
                                           statement.lhs.name: rhs_pos})
        return ExecOutcome(new_store, rhs_err, FALSE)
    new_store, write_err = _write_field(store, statement.lhs, rhs_pos)
    return ExecOutcome(new_store, F.or_(rhs_err, write_err), FALSE)


def _write_field(store: SymbolicStore, lhs: FieldLhs,
                 target_pos: PosFn) -> Tuple[SymbolicStore, Formula]:
    """Set the pointer field of the cell ``lhs.cell`` denotes."""
    cell_pos, cell_err = eval_path(store, lhs.cell)
    probe = fresh_pos("wf")
    error = F.or_(cell_err, F.not_(F.ex1(
        [probe], F.and_(cell_pos(probe),
                        store.has_field(lhs.field)(probe)))))
    target_is_nil = _denotes_nil(target_pos)
    old_to, old_nil = store.next_to, store.next_nil

    def next_to(p: Var, q: Var) -> Formula:
        return F.or_(
            F.and_(F.not_(cell_pos(p)), old_to(p, q)),
            F.conj([cell_pos(p), target_pos(q), F.not_(F.first(q))]))

    def next_nil(p: Var) -> Formula:
        return F.or_(F.and_(F.not_(cell_pos(p)), old_nil(p)),
                     F.and_(cell_pos(p), target_is_nil))

    return (store.updated(next_to=memo2(next_to),
                          next_nil=memo1(next_nil)), error)


def _denotes_nil(pos: PosFn) -> Formula:
    here = fresh_pos("dn")
    return F.ex1([here], F.and_(pos(here), F.first(here)))


def _exec_new(store: SymbolicStore, statement: TNew) -> ExecOutcome:
    oom = F.not_(store.some_garbage())
    alloc_pos = memo1(store.first_garbage)
    label = record_label(statement.type_name, statement.variant)
    old_label, old_garb = store.label_of[label], store.garb
    new_labels = dict(store.label_of)
    new_labels[label] = memo1(
        lambda p: F.or_(old_label(p), alloc_pos(p)))
    relabeled = store.updated(
        label_of=new_labels,
        garb=memo1(lambda p: F.and_(old_garb(p), F.not_(alloc_pos(p)))))
    # The allocated cell's field starts uninitialised: garbage cells
    # never had next_to/next_nil facts, so nothing to clear.
    if isinstance(statement.lhs, VarLhs):
        final = relabeled.updated(
            var_pos={**relabeled.var_pos, statement.lhs.name: alloc_pos})
        return ExecOutcome(final, FALSE, oom)
    final, write_err = _write_field(relabeled, statement.lhs, alloc_pos)
    return ExecOutcome(final, write_err, oom)


def _exec_dispose(store: SymbolicStore,
                  statement: TDispose) -> ExecOutcome:
    pos, error = eval_path(store, statement.path)
    label = record_label(statement.type_name, statement.variant)
    probe = fresh_pos("dp")
    error = F.or_(error, F.not_(F.ex1(
        [probe], F.and_(pos(probe), store.label_of[label](probe)))))
    old_garb, old_to, old_nil = store.garb, store.next_to, store.next_nil
    new_labels = {
        lbl: memo1(lambda p, fn=fn: F.and_(fn(p), F.not_(pos(p))))
        for lbl, fn in store.label_of.items()}
    final = store.updated(
        label_of=new_labels,
        garb=memo1(lambda p: F.or_(old_garb(p), pos(p))),
        next_to=memo2(lambda p, q: F.and_(old_to(p, q),
                                          F.not_(pos(p)))),
        next_nil=memo1(lambda p: F.and_(old_nil(p), F.not_(pos(p)))))
    return ExecOutcome(final, error, FALSE)


def _exec_if(store: SymbolicStore, statement: TIf) -> ExecOutcome:
    value, guard_err = eval_guard(store, statement.cond)
    then_out = exec_statements(store, statement.then_body)
    else_out = exec_statements(store, statement.else_body)
    merged = _merge_stores(value, then_out.store, else_out.store)
    error = F.or_(guard_err,
                  F.or_(F.and_(value, then_out.error),
                        F.and_(F.not_(value), else_out.error)))
    oom = F.or_(F.and_(value, then_out.oom),
                F.and_(F.not_(value), else_out.oom))
    return ExecOutcome(merged, error, oom)


def _merge_stores(cond: Formula, then_store: SymbolicStore,
                  else_store: SymbolicStore) -> SymbolicStore:
    """Pointwise conditional merge; components untouched by both
    branches are shared unchanged (identity check)."""

    def merge1(a: Rel1, b: Rel1) -> Rel1:
        if a is b:
            return a
        return memo1(lambda p: F.or_(F.and_(cond, a(p)),
                                     F.and_(F.not_(cond), b(p))))

    def merge2(a: Rel2, b: Rel2) -> Rel2:
        if a is b:
            return a
        return memo2(lambda p, q: F.or_(F.and_(cond, a(p, q)),
                                        F.and_(F.not_(cond), b(p, q))))

    var_pos: Dict[str, PosFn] = {
        name: merge1(then_store.var_pos[name], else_store.var_pos[name])
        for name in then_store.var_pos}
    label_of = {
        label: merge1(then_store.label_of[label],
                      else_store.label_of[label])
        for label in then_store.label_of}
    return then_store.updated(
        var_pos=var_pos,
        label_of=label_of,
        garb=merge1(then_store.garb, else_store.garb),
        next_to=merge2(then_store.next_to, else_store.next_to),
        next_nil=merge1(then_store.next_nil, else_store.next_nil))
