"""The symbolic heart of the verifier (paper §4 and §6).

* :mod:`repro.symbolic.layout` — the store alphabet as M2L tracks: one
  second-order variable per label and per program variable;
* :mod:`repro.symbolic.state` — a *symbolic store*: the interpretation
  of the basic store relations (variable positions, successor, labels,
  garbage) as M2L formulas over the initial string;
* :mod:`repro.symbolic.exec` — the transduction engine: each statement
  transforms the interpretation; conditionals merge branch
  interpretations under the guard; runtime-error and out-of-memory
  conditions accumulate as formulas;
* :mod:`repro.symbolic.wf` — the two well-formedness predicates:
  ``wf_string`` (canonical initial encodings) and ``wf_graph``
  (graph-level well-formedness of a transformed interpretation);
* :mod:`repro.storelogic.translate` — assertion translation against a
  symbolic store lives with the store logic.
"""

from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import SymbolicStore
from repro.symbolic.exec import ExecOutcome, exec_statements, eval_guard
from repro.symbolic.wf import wf_graph, wf_string

__all__ = ["ExecOutcome", "SymbolicStore", "TrackLayout", "eval_guard",
           "exec_statements", "wf_graph", "wf_string"]
