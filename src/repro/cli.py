"""Command-line driver.

Usage::

    repro-verify verify FILE.pas [--verbose] [--no-simulate]
                                 [--profile] [--trace] [--json]
                                 [--no-reduce] [--no-slice] [--no-order]
                                 [--cache-dir DIR] [--no-cache]
                                 [--jobs N]
                                 [--timeout S] [--max-bdd-nodes N]
                                 [--max-states N] [--max-steps N]
    repro-verify table  [NAME ...] [--json] [--keep-going] [--jobs N]
                                   [engine flags] [budget flags]
    repro-verify analyze FILE.pas [--json] [--no-reduce] [--no-slice]
                                  [--no-order]
    repro-verify lint   FILE.pas [...] [--json] [--strict]
    repro-verify serve  [--port N | --unix-socket PATH] [--workers N]
                        [--max-concurrent N] [--max-queue N]
                        [--drain-grace S] [--hang-timeout S]
                        [engine flags] [cache flags] [budget flags]
    repro-verify show   NAME            # print a bundled example program
    repro-verify list                   # list the bundled programs

``serve`` runs the long-lived verification daemon: an HTTP+JSON API
(``POST /v1/verify``, ``POST /v1/batch``, ``GET /v1/jobs/<id>``,
``GET /healthz|/readyz|/v1/stats``) over a supervised worker pool
with admission control and graceful SIGTERM drain (see
``docs/ARCHITECTURE.md`` §12 and the README's "Running as a
service").  Its budget flags are per-request defaults *and* caps.

Observability flags (also triggered by the ``REPRO_TRACE=1``
environment variable, which acts like ``--trace``):

* ``--profile`` — per-subgoal phase timing tree (symbolic execution,
  translation, compilation, universality, counterexample work);
* ``--trace`` — additionally record per-operation spans (automaton
  products, projections, minimisations) for ``--json``;
* ``--json`` — emit the machine-readable run report instead of text.

Resource budgets (``--timeout``, ``--max-bdd-nodes``, ``--max-states``,
``--max-steps``) bound the decision procedure; a subgoal that trips a
limit degrades to a structured TIMEOUT/BUDGET_EXCEEDED outcome instead
of hanging (see ``docs/ARCHITECTURE.md`` §9).

``--jobs N`` (``-j N``) fans subgoals (``verify``) or whole programs
(``table``) across N worker processes with work stealing; ``-j 0``
means one worker per CPU, and the default 1 keeps everything
in-process.  Reports are verdict- and schema-identical either way
(``docs/ARCHITECTURE.md`` §10); under ``--timeout`` the run deadline
is partitioned across subgoals so a stuck worker cannot starve its
siblings.

Exit codes (``verify`` and ``table``): 0 verified, 1 failed with a
counterexample, 2 usage or front-end error, 3 degraded (a budget limit
tripped or an internal error was isolated), 130 interrupted by Ctrl-C
(with ``--json`` the partial report is still flushed).  ``lint`` exits
0 when no diagnostics (or only warnings, without ``--strict``) were
produced, 1 otherwise.

Engine escape hatches and A/B switches — verdicts are identical with
any combination (``tests/diffcheck.py --features`` proves it over the
whole corpus): ``--no-reduce`` disables the cone-of-influence track
reduction (:mod:`repro.analysis.coi`); ``--no-slice`` disables the
statement-level backward slice (:mod:`repro.analysis.slice`);
``--no-order`` keeps BDD tracks in declaration order instead of the
dependency-affinity order (:mod:`repro.analysis.order`).

``--cache-dir DIR`` turns on the content-addressed verdict cache
(:mod:`repro.verify.cache`): decided subgoals are stored under DIR
keyed by their content fingerprint and replayed on later runs whose
fingerprints match; ``--no-cache`` ignores ``--cache-dir`` (e.g. to
force a cold run against a populated directory).  ``repro analyze``
prints what the engine *would* do per subgoal — slice sizes, dropped
statements, kept/dropped tracks, chosen order, fingerprint — without
deciding anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.obs import trace as obs_trace
from repro.programs import ALL_PROGRAMS, TABLE_PROGRAMS
from repro.robust import faults
from repro.robust.budget import BudgetExceeded
from repro.verify import Outcome, VerificationResult, verify_source
from repro.verify.report import (format_json, format_result,
                                 format_table, format_timing_tree)

_EXIT_CODES_HELP = """\
exit codes:
  0    verified — every subgoal decided valid
  1    failed — some subgoal has a counterexample
  2    usage or front-end error (parse, type, annotation)
  3    degraded — a budget limit tripped (TIMEOUT/BUDGET_EXCEEDED)
       or an internal error was isolated to a subgoal (ERROR)
  130  interrupted (Ctrl-C); with --json the partial report is
       still flushed
"""


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Verify pointer programs with monadic second-order "
                    "logic (PLDI 1997 reproduction).")
    commands = parser.add_subparsers(dest="command", required=True)

    verify_cmd = commands.add_parser(
        "verify", help="verify an annotated Pascal program",
        epilog=_EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    verify_cmd.add_argument("file", help="path to the .pas source, or a "
                                         "bundled program name")
    verify_cmd.add_argument("--verbose", action="store_true",
                            help="list every obligation per subgoal")
    verify_cmd.add_argument("--no-simulate", action="store_true",
                            help="skip concrete simulation of "
                                 "counterexamples")
    verify_cmd.add_argument("--profile", action="store_true",
                            help="print a per-subgoal phase timing tree")
    verify_cmd.add_argument("--trace", action="store_true",
                            help="record per-operation spans (products, "
                                 "projections, minimisations); implies "
                                 "--profile unless --json is given")
    verify_cmd.add_argument("--json", action="store_true",
                            help="emit the machine-readable JSON run "
                                 "report instead of the text report")
    _add_engine_flags(verify_cmd)
    _add_cache_flags(verify_cmd)
    _add_jobs_flag(verify_cmd)
    _add_budget_flags(verify_cmd)

    table_cmd = commands.add_parser(
        "table", help="regenerate the paper's statistics table",
        epilog=_EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    table_cmd.add_argument("names", nargs="*",
                           help="program subset (default: the paper's "
                                "six table programs)")
    table_cmd.add_argument("--json", action="store_true",
                           help="emit one JSON run report per program "
                                "instead of the text table")
    _add_engine_flags(table_cmd)
    _add_cache_flags(table_cmd)
    table_cmd.add_argument("--keep-going", action="store_true",
                           help="record a front-end error as an ERROR "
                                "row and continue with the remaining "
                                "programs instead of aborting")
    _add_jobs_flag(table_cmd)
    _add_budget_flags(table_cmd)

    analyze_cmd = commands.add_parser(
        "analyze", help="report per-subgoal slices, track reductions, "
                        "orders and cache fingerprints without "
                        "deciding anything")
    analyze_cmd.add_argument("file", help="path to the .pas source, or "
                                          "a bundled program name")
    analyze_cmd.add_argument("--json", action="store_true",
                             help="emit the machine-readable JSON "
                                  "analysis report")
    _add_engine_flags(analyze_cmd)

    lint_cmd = commands.add_parser(
        "lint", help="run the static pointer lints over programs")
    lint_cmd.add_argument("files", nargs="+",
                          help="paths to .pas sources, or bundled "
                               "program names")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit the machine-readable JSON "
                               "diagnostics report")
    lint_cmd.add_argument("--strict", action="store_true",
                          help="exit nonzero on warnings too, not "
                               "just errors")

    show_cmd = commands.add_parser(
        "show", help="print a bundled example program")
    show_cmd.add_argument("name", choices=sorted(ALL_PROGRAMS))

    synth_cmd = commands.add_parser(
        "synth", help="synthesize the smallest well-formed store "
                      "satisfying a store-logic formula")
    synth_cmd.add_argument("formula",
                           help="e.g. 'x<next*>p & <(List:blue)?>p'")
    synth_cmd.add_argument("--program", default="reverse",
                           help="bundled program or .pas file whose "
                                "schema (types and variables) to use "
                                "[default: reverse]")

    serve_cmd = commands.add_parser(
        "serve", help="run the long-lived verification daemon "
                      "(HTTP+JSON API over a supervised worker pool)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="TCP bind address [default: "
                                "127.0.0.1]")
    serve_cmd.add_argument("--port", type=int, default=8421,
                           help="TCP port [default: 8421]")
    serve_cmd.add_argument("--unix-socket", metavar="PATH",
                           help="listen on a unix socket instead of "
                                "TCP (stale sockets are replaced; "
                                "the file is removed on shutdown)")
    serve_cmd.add_argument("--workers", type=int, default=2,
                           metavar="N",
                           help="supervised worker processes; 0 = "
                                "one per CPU [default: 2]")
    serve_cmd.add_argument("--max-concurrent", type=int, default=4,
                           metavar="N",
                           help="requests verifying at once; more "
                                "wait in the queue [default: 4]")
    serve_cmd.add_argument("--max-queue", type=int, default=16,
                           metavar="N",
                           help="requests allowed to wait; beyond "
                                "this, 429 + Retry-After [default: "
                                "16]")
    serve_cmd.add_argument("--drain-grace", type=float, default=10.0,
                           metavar="SECONDS",
                           help="on SIGTERM, seconds in-flight "
                                "requests get before stragglers are "
                                "completed as ERROR rows [default: "
                                "10]")
    serve_cmd.add_argument("--hang-timeout", type=float, default=30.0,
                           metavar="SECONDS",
                           help="a busy worker silent for this long "
                                "is declared hung and replaced "
                                "[default: 30]")
    _add_engine_flags(serve_cmd)
    _add_cache_flags(serve_cmd)
    _add_budget_flags(serve_cmd)
    serve_cmd.set_defaults(timeout=60.0)

    commands.add_parser("list", help="list the bundled programs")

    args = parser.parse_args(argv)
    try:
        faults.install_from_env()
    except faults.FaultSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        return _dispatch(args)
    except BudgetExceeded as exc:
        # A budget trip outside the engine's retry ladder (e.g. in
        # `synth`) is still a structured degradation, not an error.
        print(f"budget exceeded: {exc}", file=sys.stderr)
        return 3
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _add_engine_flags(command: argparse.ArgumentParser) -> None:
    """The verdict-preserving engine switches shared by verify, table
    and analyze."""
    command.add_argument("--no-reduce", action="store_true",
                         help="keep every variable track (disable "
                              "the cone-of-influence reduction)")
    command.add_argument("--no-slice", action="store_true",
                         help="keep every statement (disable the "
                              "backward statement slice)")
    command.add_argument("--no-order", action="store_true",
                         help="keep BDD tracks in declaration order "
                              "(disable the affinity ordering)")


def _add_cache_flags(command: argparse.ArgumentParser) -> None:
    """The verdict-cache flags shared by verify and table."""
    command.add_argument("--cache-dir", metavar="DIR",
                         help="store and replay decided subgoals "
                              "under DIR, keyed by content "
                              "fingerprint [default: no caching]")
    command.add_argument("--no-cache", action="store_true",
                         help="ignore --cache-dir (force a cold, "
                              "uncached run)")
    command.add_argument("--cache-max-mb", type=float, metavar="MB",
                         help="LRU size cap for the verdict cache; "
                              "least-recently-used entries are "
                              "evicted past the cap [default: "
                              "unbounded]")


def _cache_dir(args: argparse.Namespace) -> Optional[str]:
    return None if args.no_cache else args.cache_dir


def _add_jobs_flag(command: argparse.ArgumentParser) -> None:
    """The parallel-execution flag shared by verify and table."""
    command.add_argument("-j", "--jobs", type=int, default=1,
                         metavar="N",
                         help="decide subgoals (verify) or programs "
                              "(table) across N worker processes; 0 = "
                              "one per CPU [default: 1, sequential]")


def _add_budget_flags(command: argparse.ArgumentParser) -> None:
    """The resource-budget flags shared by verify and table."""
    command.add_argument("--timeout", type=float, metavar="SECONDS",
                         help="wall-clock budget for the whole run; "
                              "subgoals past the deadline degrade to "
                              "TIMEOUT instead of hanging")
    command.add_argument("--max-bdd-nodes", type=int, metavar="N",
                         help="cap on BDD nodes per decision attempt "
                              "(trips BUDGET_EXCEEDED)")
    command.add_argument("--max-states", type=int, metavar="N",
                         help="cap on any single automaton's states "
                              "(trips BUDGET_EXCEEDED)")
    command.add_argument("--max-steps", type=int, metavar="N",
                         help="deterministic fuel: cap on cooperative "
                              "work steps (trips BUDGET_EXCEEDED)")


def _budget_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    return {"timeout": args.timeout,
            "max_bdd_nodes": args.max_bdd_nodes,
            "max_states": args.max_states,
            "max_steps": args.max_steps}


def _exit_code(result: VerificationResult) -> int:
    """Map one run's outcome to the documented exit code."""
    outcome = result.outcome
    if outcome is Outcome.VERIFIED:
        return 0
    if outcome is Outcome.FAILED:
        return 1
    if outcome is Outcome.INTERRUPTED:
        return 130
    return 3


def _combined_exit_code(results: List[VerificationResult],
                        interrupted: bool) -> int:
    """Table exit code: interrupt dominates, then a genuine failure,
    then any degradation, then success."""
    codes = {_exit_code(result) for result in results}
    if interrupted or 130 in codes:
        return 130
    if 1 in codes:
        return 1
    if 3 in codes:
        return 3
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name in ALL_PROGRAMS:
            print(name)
        return 0
    if args.command == "show":
        print(ALL_PROGRAMS[args.name], end="")
        return 0
    if args.command == "table":
        return _table(args)
    if args.command == "lint":
        return _lint(args.files, as_json=args.json, strict=args.strict)
    if args.command == "verify":
        from repro.parallel import resolve_jobs

        source = _load(args.file)
        tracer = _make_tracer(args)
        result = verify_source(source, simulate=not args.no_simulate,
                               reduce=not args.no_reduce,
                               slice=not args.no_slice,
                               order=not args.no_order,
                               cache_dir=_cache_dir(args),
                               cache_max_mb=args.cache_max_mb,
                               tracer=tracer,
                               jobs=resolve_jobs(args.jobs),
                               **_budget_kwargs(args))
        if args.json:
            print(format_json(result))
        else:
            print(format_result(result, verbose=args.verbose))
            if tracer is not None:
                print()
                print(format_timing_tree(result))
        return _exit_code(result)
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "synth":
        return _synthesize(args.formula, args.program)
    if args.command == "serve":
        from repro.serve.daemon import serve_command
        return serve_command(args)
    raise AssertionError(f"unhandled command {args.command}")


def _table(args: argparse.Namespace) -> int:
    """Verify the table corpus; always flush the (possibly partial)
    report, even when interrupted mid-corpus."""
    from repro.parallel import resolve_jobs

    names = args.names or list(TABLE_PROGRAMS)
    jobs = resolve_jobs(args.jobs)
    results: List[VerificationResult] = []
    interrupted = False
    if jobs > 1:
        results, interrupted = _table_parallel(names, jobs, args)
    else:
        for name in names:
            try:
                source = _load(name)
                result = verify_source(source,
                                       reduce=not args.no_reduce,
                                       slice=not args.no_slice,
                                       order=not args.no_order,
                                       cache_dir=_cache_dir(args),
                                       cache_max_mb=args.cache_max_mb,
                                       **_budget_kwargs(args))
            except KeyboardInterrupt:
                interrupted = True
                break
            except (ReproError, OSError) as exc:
                if not args.keep_going:
                    raise
                result = VerificationResult(program=name, error=str(exc))
            results.append(result)
            if result.interrupted:
                interrupted = True
                break
    if args.json:
        import json as _json
        print(_json.dumps([result.to_dict() for result in results],
                          indent=2))
    else:
        print(format_table(results))
        if interrupted:
            print(f"interrupted after {len(results)} of {len(names)} "
                  f"programs", file=sys.stderr)
    return _combined_exit_code(results, interrupted)


def _table_parallel(names: List[str], jobs: int,
                    args: argparse.Namespace):
    """Fan whole programs across the worker pool.  A KeyboardInterrupt
    (from the terminal or injected in a worker) terminates the pool
    and leaves the partial results for the caller to flush."""
    from repro.parallel import EngineOptions, run_table

    budget = _budget_kwargs(args)
    options = EngineOptions(
        reduce=not args.no_reduce,
        slice=not args.no_slice,
        order=not args.no_order,
        cache_dir=_cache_dir(args),
        cache_max_mb=args.cache_max_mb,
        timeout=budget["timeout"],
        max_bdd_nodes=budget["max_bdd_nodes"],
        max_states=budget["max_states"],
        max_steps=budget["max_steps"])
    return run_table(names, options, jobs, keep_going=args.keep_going)


def _analyze(args: argparse.Namespace) -> int:
    """Print the engine's per-subgoal preparation (slices, cones,
    orders, fingerprints) without deciding anything."""
    from repro.pascal import check_program, parse_program
    from repro.verify.engine import Verifier

    program = check_program(parse_program(_load(args.file)))
    verifier = Verifier(program,
                        reduce=not args.no_reduce,
                        slice=not args.no_slice,
                        order=not args.no_order)
    report = verifier.analyze()
    if args.json:
        import json as _json
        print(_json.dumps(report, indent=2))
        return 0
    options = report["options"]
    switches = ", ".join(f"{name} {'on' if value else 'off'}"
                         for name, value in options.items())
    subgoals = report["subgoals"]
    print(f"program {report['program']} — {len(subgoals)} subgoal(s) "
          f"({switches})")
    for index, entry in enumerate(subgoals):
        print(f"\n[{index}] {entry['description']}")
        before, after = (entry["statements_before"],
                         entry["statements_after"])
        print(f"  statements: {before} -> {after} "
              f"(dropped {before - after})")
        for dropped in entry["dropped_statements"]:
            print(f"    - line {dropped['line']}: {dropped['text']}")
        print(f"  tracks: {entry['tracks_before']} -> "
              f"{entry['tracks_after']}"
              + (f" (dropped vars: "
                 f"{', '.join(entry['dropped_vars'])})"
                 if entry["dropped_vars"] else ""))
        if entry["variable_order"] is not None:
            suffix = "" if entry["reordered"] else \
                " (declaration order)"
            print(f"  order: "
                  f"{', '.join(entry['variable_order'])}{suffix}")
        print(f"  fingerprint: {entry['fingerprint']}")
    return 0


def _lint(files: List[str], as_json: bool, strict: bool) -> int:
    """Lint sources; exit 1 on errors (with --strict, on anything)."""
    from repro.analysis import Severity, lint_source

    targets = []
    errors = warnings = 0
    for spec in files:
        diagnostics = lint_source(_load(spec))
        file_errors = sum(1 for d in diagnostics
                          if d.severity is Severity.ERROR)
        file_warnings = len(diagnostics) - file_errors
        errors += file_errors
        warnings += file_warnings
        targets.append({
            "file": spec,
            "diagnostics": [d.to_dict() for d in diagnostics],
            "errors": file_errors,
            "warnings": file_warnings,
        })
        if not as_json:
            for diagnostic in diagnostics:
                print(f"{spec}:{diagnostic}")
    if as_json:
        import json as _json
        print(_json.dumps({
            "schema_version": 1,
            "targets": targets,
            "errors": errors,
            "warnings": warnings,
        }, indent=2))
    elif errors or warnings:
        print(f"{errors} error(s), {warnings} warning(s) in "
              f"{len(files)} file(s)")
    return 1 if errors or (strict and warnings) else 0


def _make_tracer(args: argparse.Namespace) -> Optional[obs_trace.Tracer]:
    """A tracer when any observability output was requested.

    ``--trace`` (or ``REPRO_TRACE=1``) records per-operation detail
    spans; ``--profile`` and ``--json`` need only the phase spans.
    """
    env_tracer = obs_trace.tracer_from_env()
    if args.trace or env_tracer is not None:
        return obs_trace.Tracer(detail=True)
    if args.profile or args.json:
        return obs_trace.Tracer(detail=False)
    return None


def _synthesize(formula_text: str, program_name: str) -> int:
    """Model finding: the smallest well-formed store satisfying a
    formula, over the schema of the given program."""
    from repro.mso.build import FormulaBuilder
    from repro.mso.compile import Compiler
    from repro.pascal import check_program, parse_program
    from repro.storelogic import check_formula, parse_formula
    from repro.storelogic.translate import translate_formula
    from repro.stores import decode_store, render_store, render_symbols
    from repro.symbolic.layout import TrackLayout
    from repro.symbolic.state import initial_store
    from repro.symbolic.wf import wf_string

    program = check_program(parse_program(_load(program_name)))
    schema = program.schema
    formula = check_formula(parse_formula(formula_text), schema)
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state = initial_store(schema, layout)
    automaton = compiler.compile(FormulaBuilder.and_(
        wf_string(layout), translate_formula(formula, state)))
    word = automaton.shortest_accepted()
    if word is None:
        print("unsatisfiable: no well-formed store satisfies the "
              "formula")
        return 1
    symbols = layout.word_to_symbols(word, compiler.tracks())
    print("string:", render_symbols(symbols))
    print(render_store(decode_store(schema, symbols)))
    return 0


def _load(name_or_path: str) -> str:
    from repro.programs import load_source
    return load_source(name_or_path)


if __name__ == "__main__":
    sys.exit(main())
