"""Per-request admission control: bounded queue, backpressure, drain.

The decision procedure is non-elementary; without admission control a
burst of expensive requests turns the daemon into an unbounded pile
of blocked threads.  The controller enforces two limits:

* ``max_concurrent`` — requests actively verifying at once (the rest
  wait);
* ``max_queue`` — requests allowed to *wait*; one more is rejected
  immediately with :class:`QueueFull`, which the HTTP layer renders
  as ``429 Too Many Requests`` plus a ``Retry-After`` estimated from
  an exponentially-weighted moving average of recent request
  durations and the current queue depth.

Rejection at the door is the backpressure mechanism: a client that
sees 429 + Retry-After can shed load or come back, while an accepted
request is guaranteed a bounded wait (queue length x typical
duration) rather than an unbounded one.

Draining (:meth:`AdmissionController.start_draining`) flips the
controller one-way: new and waiting requests fail with
:class:`Draining` (rendered as ``503``), active ones finish.  This is
the first step of the SIGTERM sequence in
:mod:`repro.serve.daemon`.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, Iterator, Optional
from contextlib import contextmanager

from repro.obs.metrics import current_metrics


class QueueFull(Exception):
    """The waiting room is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(f"queue full; retry after {retry_after}s")
        self.retry_after = retry_after


class Draining(Exception):
    """The daemon is shutting down and admits no new work."""


class AdmissionController:
    """Counting admission gate shared by every request handler."""

    def __init__(self, max_concurrent: int, max_queue: int,
                 initial_estimate: float = 1.0) -> None:
        self.max_concurrent = max(1, max_concurrent)
        self.max_queue = max(0, max_queue)
        self._condition = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._draining = False
        # EWMA of request durations, seeding Retry-After estimates.
        self._estimate = initial_estimate

    # ------------------------------------------------------------------

    @contextmanager
    def admitted(self) -> Iterator[None]:
        """Hold one active slot for the duration of a request.

        Raises :class:`QueueFull` when the waiting room is full and
        :class:`Draining` once shutdown has begun (including while
        waiting)."""
        self._enter()
        started = time.monotonic()
        try:
            yield
        finally:
            self._leave(time.monotonic() - started)

    def _enter(self) -> None:
        metrics = current_metrics()
        with self._condition:
            if self._draining:
                raise Draining
            if self._active < self.max_concurrent:
                self._active += 1
                metrics.counter("serve.admission.admitted").inc()
                return
            if self._waiting >= self.max_queue:
                metrics.counter("serve.admission.rejected").inc()
                raise QueueFull(self._retry_after_locked())
            self._waiting += 1
            try:
                while self._active >= self.max_concurrent \
                        and not self._draining:
                    self._condition.wait()
            finally:
                self._waiting -= 1
            if self._draining:
                raise Draining
            self._active += 1
            metrics.counter("serve.admission.admitted").inc()

    def _leave(self, seconds: float) -> None:
        metrics = current_metrics()
        metrics.histogram("serve.request_seconds").observe(seconds)
        with self._condition:
            self._active -= 1
            self._estimate = 0.8 * self._estimate + 0.2 * seconds
            self._condition.notify_all()

    # ------------------------------------------------------------------

    def _retry_after_locked(self) -> int:
        backlog = self._waiting + self._active
        estimate = self._estimate * backlog / self.max_concurrent
        return max(1, int(math.ceil(estimate)))

    def retry_after(self) -> int:
        """Seconds a rejected client should wait before retrying."""
        with self._condition:
            return self._retry_after_locked()

    def start_draining(self) -> None:
        """One-way switch: reject new work, wake and reject waiters."""
        with self._condition:
            self._draining = True
            self._condition.notify_all()

    @property
    def draining(self) -> bool:
        with self._condition:
            return self._draining

    def wait_idle(self, grace: Optional[float]) -> bool:
        """Block until no request is active (True) or ``grace``
        seconds elapsed (False).  ``grace`` None waits forever."""
        deadline = None if grace is None else time.monotonic() + grace
        with self._condition:
            while self._active:
                remaining = None if deadline is None else \
                    deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(remaining)
            return True

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for the stats endpoint."""
        with self._condition:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "draining": self._draining,
                "estimated_seconds": round(self._estimate, 3),
            }
