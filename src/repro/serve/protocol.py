"""Request decoding and validation for the serving API.

Every byte that arrives over the socket is hostile until proven
otherwise: the decoder never lets malformed JSON, wrong-typed fields
or oversized bodies surface as anything but a structured
:class:`ProtocolError`, which the HTTP layer renders as a JSON error
body with the matching status code.  The ``serve.request_decode``
fault site fires at the top of :func:`parse_verify_request`, so the
injection matrix can prove even an "impossible" decoder failure comes
back as a structured response.

A verify request looks like::

    {
      "program": "reverse",          // bundled program name, or
      "source": "program ...",       // inline annotated-Pascal source
      "options": {                   // all optional; server defaults
        "reduce": true, "slice": true,
        "order": true, "simulate": true
      },
      "budget": {                    // optional; server caps clamp
        "timeout": 5.0,              // each value from above
        "max_bdd_nodes": 200000,
        "max_states": 20000,
        "max_steps": 1000000
      },
      "async": false                 // true = 202 + a job id
    }

Budgets *clamp*: the server's own ``--timeout``/``--max-*`` flags are
both the per-request defaults and hard caps, so no client can buy
more of the daemon's time than the operator allowed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.programs import ALL_PROGRAMS
from repro.robust import faults

#: Request bodies above this size are rejected before JSON parsing —
#: a verification request is a small program, not a data upload.
MAX_BODY_BYTES = 1 << 20

_OPTION_KEYS = ("reduce", "slice", "order", "simulate")
_BUDGET_KEYS = ("timeout", "max_bdd_nodes", "max_states", "max_steps")


class ProtocolError(Exception):
    """A request that cannot be served, with its HTTP status."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message

    def to_dict(self) -> Dict[str, object]:
        return {"error": {"code": self.code, "message": self.message}}


@dataclass
class BudgetCaps:
    """The server-side budget: per-request default *and* upper bound."""

    timeout: Optional[float] = None
    max_bdd_nodes: Optional[int] = None
    max_states: Optional[int] = None
    max_steps: Optional[int] = None

    def clamp(self, name: str, requested: Optional[float]):
        """The effective value of one budget axis: the request's if it
        asks for less than the cap, the cap otherwise."""
        cap = getattr(self, name)
        if requested is None:
            return cap
        if cap is None:
            return requested
        return min(requested, cap)


@dataclass
class VerifyRequest:
    """One decoded, validated, budget-clamped verification request."""

    source: str
    label: str
    reduce: bool = True
    slice: bool = True
    order: bool = True
    simulate: bool = True
    timeout: Optional[float] = None
    max_bdd_nodes: Optional[int] = None
    max_states: Optional[int] = None
    max_steps: Optional[int] = None
    background: bool = False


def _type_error(field: str, expected: str) -> ProtocolError:
    return ProtocolError(400, "bad-request",
                         f"field {field!r} must be {expected}")


def _decode_document(body: bytes) -> Dict[str, object]:
    if len(body) > MAX_BODY_BYTES:
        raise ProtocolError(413, "body-too-large",
                            f"request body exceeds {MAX_BODY_BYTES} "
                            f"bytes")
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, "bad-json",
                            f"request body is not valid JSON: {exc}"
                            ) from None
    if not isinstance(document, dict):
        raise ProtocolError(400, "bad-request",
                            "request body must be a JSON object")
    return document


def parse_verify_request(body: bytes, caps: BudgetCaps,
                         defaults: Optional[Dict[str, bool]] = None
                         ) -> VerifyRequest:
    """Decode and validate one ``/v1/verify`` body.

    Raises :class:`ProtocolError` for anything the server cannot act
    on; the returned request is fully validated and budget-clamped.
    """
    faults.fire("serve.request_decode")
    document = _decode_document(body)
    return _parse_one(document, caps, defaults)


def parse_batch_request(body: bytes, caps: BudgetCaps,
                        defaults: Optional[Dict[str, bool]] = None,
                        max_items: int = 64):
    """Decode ``/v1/batch``: ``{"requests": [<verify body>, ...]}``."""
    faults.fire("serve.request_decode")
    document = _decode_document(body)
    items = document.get("requests")
    if not isinstance(items, list) or not items:
        raise ProtocolError(400, "bad-request",
                            "field 'requests' must be a non-empty "
                            "list of verify requests")
    if len(items) > max_items:
        raise ProtocolError(413, "batch-too-large",
                            f"batch exceeds {max_items} requests")
    requests = []
    for position, item in enumerate(items):
        if not isinstance(item, dict):
            raise _type_error(f"requests[{position}]", "an object")
        try:
            requests.append(_parse_one(item, caps, defaults))
        except ProtocolError as exc:
            raise ProtocolError(exc.status, exc.code,
                                f"requests[{position}]: {exc.message}"
                                ) from None
    return requests


def _parse_one(document: Dict[str, object], caps: BudgetCaps,
               defaults: Optional[Dict[str, bool]]) -> VerifyRequest:
    program = document.get("program")
    source = document.get("source")
    if (program is None) == (source is None):
        raise ProtocolError(400, "bad-request",
                            "exactly one of 'program' (a bundled "
                            "name) or 'source' (inline text) is "
                            "required")
    if program is not None:
        if not isinstance(program, str):
            raise _type_error("program", "a string")
        if program not in ALL_PROGRAMS:
            raise ProtocolError(404, "unknown-program",
                                f"no bundled program named "
                                f"{program!r}")
        text = ALL_PROGRAMS[program]
        label = program
    else:
        if not isinstance(source, str) or not source.strip():
            raise _type_error("source", "a non-empty string")
        text = source
        label = "<inline>"

    merged: Dict[str, bool] = dict(defaults or {})
    options = document.get("options", {})
    if not isinstance(options, dict):
        raise _type_error("options", "an object")
    for key, value in options.items():
        if key not in _OPTION_KEYS:
            raise ProtocolError(400, "bad-request",
                                f"unknown option {key!r}; expected "
                                f"one of {', '.join(_OPTION_KEYS)}")
        if not isinstance(value, bool):
            raise _type_error(f"options.{key}", "a boolean")
        merged[key] = value

    budget = document.get("budget", {})
    if not isinstance(budget, dict):
        raise _type_error("budget", "an object")
    clamped: Dict[str, object] = {}
    for key, value in budget.items():
        if key not in _BUDGET_KEYS:
            raise ProtocolError(400, "bad-request",
                                f"unknown budget field {key!r}; "
                                f"expected one of "
                                f"{', '.join(_BUDGET_KEYS)}")
        if isinstance(value, bool) or \
                not isinstance(value, (int, float)) or value <= 0:
            raise _type_error(f"budget.{key}", "a positive number")
    for key in _BUDGET_KEYS:
        clamped[key] = caps.clamp(key, budget.get(key))
    for key in ("max_bdd_nodes", "max_states", "max_steps"):
        if clamped[key] is not None:
            clamped[key] = int(clamped[key])

    background = document.get("async", False)
    if not isinstance(background, bool):
        raise _type_error("async", "a boolean")

    return VerifyRequest(
        source=text,
        label=label,
        reduce=merged.get("reduce", True),
        slice=merged.get("slice", True),
        order=merged.get("order", True),
        simulate=merged.get("simulate", True),
        timeout=clamped["timeout"],
        max_bdd_nodes=clamped["max_bdd_nodes"],
        max_states=clamped["max_states"],
        max_steps=clamped["max_steps"],
        background=background,
    )
