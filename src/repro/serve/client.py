"""A minimal client for the serving API (tests, smoke checks, ops).

Deliberately tiny — stdlib :mod:`http.client` over TCP or a unix
socket, JSON in, JSON out.  Anything a browser, curl or a real load
balancer can do, this client does with three methods; it exists so
the integration tests and the CI smoke job talk to the daemon through
the same code path operators would script against.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional, Tuple


class _UnixHTTPConnection(http.client.HTTPConnection):
    """An ``http.client`` connection over an ``AF_UNIX`` socket."""

    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout)
        self.sock.connect(self._path)


class ServeClient:
    """One logical connection to a ``repro serve`` daemon.

    A fresh HTTP connection is opened per request — the client is
    about correctness, not connection pooling.
    """

    def __init__(self, unix_socket: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 8421,
                 timeout: float = 60.0) -> None:
        self.unix_socket = unix_socket
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.unix_socket is not None:
            return _UnixHTTPConnection(self.unix_socket, self.timeout)
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def request(self, method: str, path: str,
                document: Optional[Dict[str, object]] = None
                ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        """One round trip; returns (status, headers, parsed body)."""
        connection = self._connection()
        try:
            body = None
            headers = {}
            if document is not None:
                body = json.dumps(document).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body,
                               headers=headers)
            response = connection.getresponse()
            payload = response.read()
            parsed: Dict[str, object] = {}
            if payload:
                parsed = json.loads(payload.decode("utf-8"))
            return (response.status,
                    {name.lower(): value
                     for name, value in response.getheaders()},
                    parsed)
        finally:
            connection.close()

    # -- convenience wrappers ------------------------------------------

    def verify(self, program: Optional[str] = None,
               source: Optional[str] = None,
               options: Optional[Dict[str, bool]] = None,
               budget: Optional[Dict[str, object]] = None,
               background: bool = False
               ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        document: Dict[str, object] = {}
        if program is not None:
            document["program"] = program
        if source is not None:
            document["source"] = source
        if options:
            document["options"] = options
        if budget:
            document["budget"] = budget
        if background:
            document["async"] = True
        return self.request("POST", "/v1/verify", document)

    def batch(self, requests) -> Tuple[int, Dict[str, str],
                                       Dict[str, object]]:
        return self.request("POST", "/v1/batch",
                            {"requests": list(requests)})

    def job(self, job_id: str) -> Tuple[int, Dict[str, str],
                                        Dict[str, object]]:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def health(self) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        return self.request("GET", "/healthz")

    def ready(self) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        return self.request("GET", "/readyz")

    def stats(self) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        return self.request("GET", "/v1/stats")
