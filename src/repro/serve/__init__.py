"""Verification as a service: the ``repro serve`` daemon.

A long-lived HTTP+JSON front end over the verification engine,
backed by the supervised worker pool
(:mod:`repro.parallel.supervise`), with per-request admission control
(:mod:`repro.serve.admission`), async job tracking
(:mod:`repro.serve.jobs`) and a graceful drain-on-SIGTERM lifecycle
(:mod:`repro.serve.daemon`).  ``docs/ARCHITECTURE.md`` §12 describes
the design; the README shows the curl-level API.
"""

from repro.serve.admission import AdmissionController, Draining, QueueFull
from repro.serve.daemon import ServeConfig, VerificationService, serve_command
from repro.serve.jobs import JobTable
from repro.serve.protocol import ProtocolError, parse_verify_request

__all__ = [
    "AdmissionController",
    "Draining",
    "JobTable",
    "ProtocolError",
    "QueueFull",
    "ServeConfig",
    "VerificationService",
    "parse_verify_request",
    "serve_command",
]
