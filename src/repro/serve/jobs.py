"""Async job tracking for ``"async": true`` requests.

A job is a verification the client did not wait for: submission
returns ``202 Accepted`` plus a job id, and ``GET /v1/jobs/<id>``
polls its state.  The table is bounded: once more than ``retention``
jobs are finished, the oldest finished ones are dropped (a poll for a
dropped id gets 404, the same as a bad id — clients that care fetch
results promptly).  Unfinished jobs are never evicted.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class Job:
    """One asynchronous verification and its eventual result."""

    def __init__(self, job_id: str, label: str) -> None:
        self.id = job_id
        self.label = label
        self.state = QUEUED
        self.created = time.time()
        self.finished: Optional[float] = None
        self.status = 0
        self.document: Optional[Dict[str, object]] = None

    def to_dict(self, with_result: bool = True) -> Dict[str, object]:
        document: Dict[str, object] = {
            "job_id": self.id,
            "program": self.label,
            "state": self.state,
            "created": self.created,
        }
        if self.finished is not None:
            document["finished"] = self.finished
        if with_result and self.document is not None:
            document["status"] = self.status
            document["result"] = self.document
        return document


class JobTable:
    """Thread-safe id -> :class:`Job` store with bounded retention."""

    def __init__(self, retention: int = 256) -> None:
        self.retention = max(1, retention)
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()

    def create(self, label: str) -> Job:
        job = Job(secrets.token_hex(8), label)
        with self._lock:
            self._jobs[job.id] = job
            self._evict_locked()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def start(self, job: Job) -> None:
        job.state = RUNNING

    def finish(self, job: Job, status: int,
               document: Dict[str, object],
               failed: bool = False) -> None:
        job.status = status
        job.document = document
        job.finished = time.time()
        job.state = FAILED if failed else DONE
        with self._lock:
            self._evict_locked()

    def _evict_locked(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.state in (DONE, FAILED)]
        excess = len(self._jobs) - self.retention
        for job_id in finished:
            if excess <= 0:
                break
            del self._jobs[job_id]
            excess -= 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            states["total"] = len(self._jobs)
            return states
