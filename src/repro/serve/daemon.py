"""The ``repro serve`` daemon: HTTP front end, supervised back end.

One process, three layers:

* **HTTP layer** — a :class:`ThreadingHTTPServer` (TCP or unix
  socket), one thread per connection.  Every response is JSON with a
  correct status code; no handler path can emit a raw traceback.
* **Admission layer** — :class:`repro.serve.admission`'s bounded
  queue and concurrency gate.  Requests past the queue bound bounce
  immediately with ``429`` + ``Retry-After``.
* **Execution layer** — the front end (parse, type-check, subgoal
  split) runs on the handler thread; decisions fan out as
  ``SubgoalTask``s over one shared
  :class:`~repro.parallel.supervise.SupervisedPool`, so a crashed or
  hung worker is respawned and retried, and a poison subgoal
  degrades to a structured ``ERROR`` row in the response.

Lifecycle: SIGTERM (or SIGINT) starts the drain — admission closes
(new requests see ``503``), in-flight requests get ``drain_grace``
seconds to finish, stragglers are completed with ``ERROR`` rows by
terminating the pool (every outstanding subgoal is answered with a
shutdown notice), the verdict cache needs no flush (stores are
write-through), the socket is closed and unlinked, and the process
exits 0.  ``docs/ARCHITECTURE.md`` §12 has the full state machines.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, set_metrics
from repro.parallel.pool import (crash_subgoal_wire, engine_options,
                                 error_subgoal_wire)
from repro.parallel.schedule import (WorkStealingScheduler,
                                     partition_deadline)
from repro.parallel.supervise import CrashReply, SupervisedPool
from repro.parallel.wire import SubgoalTask, rebuild_subgoal_result
from repro.parallel import worker as worker_mod
from repro.pascal import check_program, parse_program
from repro.serve.admission import (AdmissionController, Draining,
                                   QueueFull)
from repro.serve.jobs import JobTable
from repro.serve.protocol import (BudgetCaps, ProtocolError,
                                  VerifyRequest, parse_batch_request,
                                  parse_verify_request)
from repro.verify.engine import VerificationResult, Verifier

#: Schema of the envelope documents (errors, stats, jobs) — the
#: verification report inside keeps its own schema_version 2.
SERVE_SCHEMA_VERSION = 1

#: Workers that stop heartbeating for this long while busy are
#: declared hung and replaced (``--hang-timeout`` overrides).
DEFAULT_HANG_TIMEOUT = 30.0


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs, decoupled from argparse."""

    host: str = "127.0.0.1"
    port: int = 8421
    unix_socket: Optional[str] = None
    workers: int = 2
    max_concurrent: int = 4
    max_queue: int = 16
    drain_grace: float = 10.0
    hang_timeout: Optional[float] = DEFAULT_HANG_TIMEOUT
    cache_dir: Optional[str] = None
    cache_max_mb: Optional[float] = None
    reduce: bool = True
    slice: bool = True
    order: bool = True
    simulate: bool = True
    timeout: Optional[float] = 60.0
    max_bdd_nodes: Optional[int] = None
    max_states: Optional[int] = None
    max_steps: Optional[int] = None
    job_retention: int = 256

    def caps(self) -> BudgetCaps:
        return BudgetCaps(timeout=self.timeout,
                          max_bdd_nodes=self.max_bdd_nodes,
                          max_states=self.max_states,
                          max_steps=self.max_steps)

    def engine_defaults(self) -> Dict[str, bool]:
        return {"reduce": self.reduce, "slice": self.slice,
                "order": self.order, "simulate": self.simulate}

    def endpoint(self) -> str:
        if self.unix_socket is not None:
            return f"unix:{self.unix_socket}"
        return f"http://{self.host}:{self.port}"


class VerificationService:
    """The daemon's brain: owns the pool, admission, jobs, metrics."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        set_metrics(self.metrics)
        self._merge_lock = threading.Lock()
        self.pool = SupervisedPool(
            worker_mod.run_subgoal_task, jobs=config.workers,
            faults_spec=os.environ.get("REPRO_FAULTS", ""),
            hang_timeout=config.hang_timeout)
        self.admission = AdmissionController(config.max_concurrent,
                                             config.max_queue)
        self.jobs = JobTable(config.job_retention)
        self.started = time.time()
        self._shutdown_started = threading.Event()

    # ------------------------------------------------------------------
    # Request entry points (handler threads)
    # ------------------------------------------------------------------

    def handle_verify(self, body: bytes
                      ) -> Tuple[int, Dict[str, object],
                                 Dict[str, str]]:
        self.metrics.counter("serve.requests.verify").inc()
        try:
            request = parse_verify_request(
                body, self.config.caps(), self.config.engine_defaults())
        except ProtocolError as exc:
            return self._protocol_error(exc)
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — injected or real
            # decoder failure; still a structured response.
            return self._internal_error("request-decode", exc)
        if request.background:
            return self._submit_job(request)
        return self._admit_and_run(request)

    def handle_batch(self, body: bytes
                     ) -> Tuple[int, Dict[str, object],
                                Dict[str, str]]:
        self.metrics.counter("serve.requests.batch").inc()
        try:
            requests = parse_batch_request(
                body, self.config.caps(), self.config.engine_defaults())
        except ProtocolError as exc:
            return self._protocol_error(exc)
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — see handle_verify
            return self._internal_error("request-decode", exc)
        results = []
        for request in requests:
            status, document, _ = self._admit_and_run(request)
            results.append({"status": status, "result": document})
        return 200, {"schema_version": SERVE_SCHEMA_VERSION,
                     "results": results}, {}

    def handle_job_get(self, job_id: str
                       ) -> Tuple[int, Dict[str, object],
                                  Dict[str, str]]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, self._error_document(
                "unknown-job", f"no job named {job_id!r} (finished "
                               f"jobs are eventually evicted)"), {}
        document = job.to_dict()
        document["schema_version"] = SERVE_SCHEMA_VERSION
        return 200, document, {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _admit_and_run(self, request: VerifyRequest
                       ) -> Tuple[int, Dict[str, object],
                                  Dict[str, str]]:
        try:
            with self.admission.admitted():
                document = self._run_verification(request)
            return 200, document, {}
        except QueueFull as exc:
            return (429,
                    self._error_document(
                        "queue-full",
                        f"admission queue is full; retry after "
                        f"{exc.retry_after}s"),
                    {"Retry-After": str(exc.retry_after)})
        except Draining:
            return 503, self._error_document(
                "draining", "daemon is draining for shutdown"), {}
        except ReproError as exc:
            # Front-end rejection (parse, type, annotation): the
            # request is well-formed HTTP but not a verifiable
            # program.
            self.metrics.counter("serve.requests.front_end_errors").inc()
            return 422, self._error_document("front-end", str(exc)), {}
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 — last-resort fence:
            # nothing may escape as a traceback over the socket.
            return self._internal_error("verification", exc)

    def _submit_job(self, request: VerifyRequest
                    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if self.admission.draining:
            return 503, self._error_document(
                "draining", "daemon is draining for shutdown"), {}
        job = self.jobs.create(request.label)

        def run() -> None:
            self.jobs.start(job)
            status, document, _ = self._admit_and_run(request)
            self.jobs.finish(job, status, document,
                             failed=status != 200)

        threading.Thread(target=run, daemon=True,
                         name=f"repro-job-{job.id}").start()
        document = job.to_dict(with_result=False)
        document["schema_version"] = SERVE_SCHEMA_VERSION
        return 202, document, {}

    def _run_verification(self, request: VerifyRequest
                          ) -> Dict[str, object]:
        """Front end on this thread, decisions on the shared pool.

        Mirrors :func:`repro.parallel.pool.verify_parallel`, except
        the pool outlives the request and is shared with every other
        request, so subgoals from concurrent requests interleave
        fairly."""
        program = check_program(parse_program(request.source))
        verifier = Verifier(
            program,
            simulate=request.simulate, reduce=request.reduce,
            slice=request.slice, order=request.order,
            cache_dir=self.config.cache_dir,
            cache_max_mb=self.config.cache_max_mb,
            timeout=request.timeout,
            max_bdd_nodes=request.max_bdd_nodes,
            max_states=request.max_states,
            max_steps=request.max_steps)
        subgoals = verifier.collect_subgoals()
        options = engine_options(verifier)

        result = VerificationResult(program.name)
        if verifier._make_budget(request.timeout) is not None:
            result.budget = {
                "timeout": request.timeout,
                "max_bdd_nodes": request.max_bdd_nodes,
                "max_states": request.max_states,
                "max_steps": request.max_steps,
            }

        scheduler = WorkStealingScheduler()
        for index, subgoal in enumerate(subgoals):
            scheduler.add(index, cost=worker_mod.subgoal_cost(subgoal))
        order = [task.key for task in scheduler.drain()]
        slice_seconds = partition_deadline(
            request.timeout, len(order), self.pool.jobs)

        replies: "queue.Queue[object]" = queue.Queue()
        for index in order:
            self.pool.submit(
                SubgoalTask(program=program, index=index,
                            options=options,
                            timeout_slice=slice_seconds),
                key=index, on_done=replies.put)

        # The supervisor guarantees one answer per task (a reply, a
        # quarantine notice, or a shutdown notice); the hard deadline
        # is a second, independent fence so a supervisor bug can
        # never hang a request.
        slack = (request.timeout or 600.0) * 2 + 30.0
        hard_deadline = time.monotonic() + slack
        wires: Dict[int, object] = {}
        for _ in range(len(order)):
            remaining = hard_deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                reply = replies.get(timeout=remaining)
            except queue.Empty:
                break
            if isinstance(reply, CrashReply):
                index = int(reply.key)  # type: ignore[arg-type]
                wires[index] = crash_subgoal_wire(
                    index, reply,
                    getattr(subgoals[index], "description", ""))
                continue
            self._absorb_metrics(reply)
            index = int(reply.key)
            if reply.kind == "result":
                wires[index] = reply.value
            elif reply.kind == "interrupted":
                wires[index] = error_subgoal_wire(
                    index, "worker interrupted mid-decision",
                    description=getattr(subgoals[index],
                                        "description", ""))
            else:  # "error": an exception escaped the engine's ladder
                wires[index] = error_subgoal_wire(
                    index, f"worker error: {reply.value}",
                    description=getattr(subgoals[index],
                                        "description", ""))
        for index in range(len(subgoals)):
            if index not in wires:
                wires[index] = error_subgoal_wire(
                    index, "request aborted before the subgoal was "
                           "decided",
                    description=getattr(subgoals[index],
                                        "description", ""))

        for index in range(len(subgoals)):
            decided = rebuild_subgoal_result(wires[index],
                                             subgoals[index])
            result.results.append(decided)
            self.metrics.counter(
                f"verify.outcome.{decided.outcome.value}").inc()
        return result.to_dict()

    def _absorb_metrics(self, reply: object) -> None:
        metrics = getattr(reply, "metrics", None)
        if metrics is None:
            return
        with self._merge_lock:
            self.metrics.merge(metrics)

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------

    def health_document(self) -> Dict[str, object]:
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started, 3),
        }

    def ready_document(self) -> Tuple[int, Dict[str, object]]:
        if self.admission.draining:
            return 503, {"schema_version": SERVE_SCHEMA_VERSION,
                         "status": "draining"}
        return 200, {"schema_version": SERVE_SCHEMA_VERSION,
                     "status": "ready"}

    def stats_document(self) -> Dict[str, object]:
        with self._merge_lock:
            metric_table = self.metrics.to_dict()

        def value(name: str) -> int:
            entry = metric_table.get(name)
            return int(entry["value"]) if entry else 0  # type: ignore

        hits = value("verify.cache.hits")
        misses = value("verify.cache.misses")
        lookups = hits + misses
        return {
            "schema_version": SERVE_SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self.started, 3),
            "endpoint": self.config.endpoint(),
            "admission": self.admission.snapshot(),
            "pool": self.pool.stats(),
            "jobs": self.jobs.snapshot(),
            "cache": {
                "enabled": self.config.cache_dir is not None,
                "hits": hits,
                "misses": misses,
                "stores": value("verify.cache.stores"),
                "evictions": value("verify.cache.evictions"),
                "hit_rate": round(hits / lookups, 4) if lookups
                else None,
            },
            "metrics": metric_table,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def begin_shutdown(self) -> bool:
        """Idempotent entry to the drain sequence; True on first call."""
        if self._shutdown_started.is_set():
            return False
        self._shutdown_started.set()
        return True

    def drain(self) -> None:
        """Stop admitting, let in-flight requests finish (bounded by
        ``drain_grace``), then stop the pool.  Requests still active
        past the grace are completed with structured ``ERROR`` rows:
        terminating the pool answers every outstanding subgoal with a
        shutdown notice, which unblocks their handler threads."""
        self.admission.start_draining()
        finished = self.admission.wait_idle(self.config.drain_grace)
        if finished:
            self.pool.close(drain=True, grace=2.0)
        else:
            self.metrics.counter("serve.drain.forced").inc()
            self.pool.terminate()
            # The shutdown notices unblock the stragglers almost
            # immediately; give them a moment to write responses.
            self.admission.wait_idle(5.0)

    # ------------------------------------------------------------------

    def _protocol_error(self, exc: ProtocolError
                        ) -> Tuple[int, Dict[str, object],
                                   Dict[str, str]]:
        self.metrics.counter("serve.requests.protocol_errors").inc()
        document = exc.to_dict()
        document["schema_version"] = SERVE_SCHEMA_VERSION
        return exc.status, document, {}

    def _internal_error(self, where: str, exc: BaseException
                        ) -> Tuple[int, Dict[str, object],
                                   Dict[str, str]]:
        self.metrics.counter("serve.requests.internal_errors").inc()
        message = str(exc) or type(exc).__name__
        return 500, self._error_document(
            "internal", f"{where} failed: "
                        f"{type(exc).__name__}: {message}"), {}

    @staticmethod
    def _error_document(code: str, message: str) -> Dict[str, object]:
        return {"schema_version": SERVE_SCHEMA_VERSION,
                "error": {"code": code, "message": message}}


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------

class _UnixHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer over an ``AF_UNIX`` stream socket."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # A stale socket file from a crashed daemon must not block a
        # restart; a *live* one is handed over the same way (last
        # binder wins), which is the operator-friendly choice.
        try:
            os.unlink(self.server_address)  # type: ignore[arg-type]
        except OSError:
            pass
        self.socket.bind(self.server_address)
        self.server_name = "localhost"
        self.server_port = 0

    def server_close(self) -> None:
        super().server_close()
        try:
            os.unlink(self.server_address)  # type: ignore[arg-type]
        except OSError:
            pass


def _make_handler(service: VerificationService):
    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------

        def log_message(self, format: str, *args: object) -> None:
            # Access logs become metrics, not stderr noise.
            service.metrics.counter("serve.http.responses").inc()

        def address_string(self) -> str:
            # AF_UNIX peers have no address tuple.
            if isinstance(self.client_address, (bytes, str)):
                return "local"
            return super().address_string()

        def _send_document(self, status: int,
                           document: Dict[str, object],
                           headers: Optional[Dict[str, str]] = None
                           ) -> None:
            payload = json.dumps(document, indent=2).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            try:
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length > 0 else b""

        def _guarded(self, thunk) -> None:
            try:
                status, document, headers = thunk()
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001 — the outermost
                # fence: a handler bug is a 500 JSON body, never a
                # traceback on the socket.
                status, document, headers = service._internal_error(
                    "handler", exc)
            self._send_document(status, document, headers)

        # -- routes ----------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 — http.server API
            if self.path == "/healthz":
                self._send_document(200, service.health_document())
            elif self.path == "/readyz":
                status, document = service.ready_document()
                self._send_document(status, document)
            elif self.path == "/v1/stats":
                self._guarded(lambda:
                              (200, service.stats_document(), {}))
            elif self.path.startswith("/v1/jobs/"):
                job_id = self.path[len("/v1/jobs/"):]
                self._guarded(lambda: service.handle_job_get(job_id))
            else:
                self._send_document(
                    404, service._error_document(
                        "not-found", f"no route {self.path!r}"))

        def do_POST(self) -> None:  # noqa: N802 — http.server API
            body = self._read_body()
            if self.path == "/v1/verify":
                self._guarded(lambda: service.handle_verify(body))
            elif self.path == "/v1/batch":
                self._guarded(lambda: service.handle_batch(body))
            else:
                self._send_document(
                    404, service._error_document(
                        "not-found", f"no route {self.path!r}"))

    return Handler


def build_server(service: VerificationService):
    """The bound (but not yet serving) HTTP server for a service."""
    handler = _make_handler(service)
    config = service.config
    if config.unix_socket is not None:
        return _UnixHTTPServer(config.unix_socket, handler)
    return ThreadingHTTPServer((config.host, config.port), handler)


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------

def config_from_args(args) -> ServeConfig:
    from repro.parallel.pool import resolve_jobs

    return ServeConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        workers=resolve_jobs(args.workers),
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        drain_grace=args.drain_grace,
        hang_timeout=args.hang_timeout,
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_max_mb=args.cache_max_mb,
        reduce=not args.no_reduce,
        slice=not args.no_slice,
        order=not args.no_order,
        timeout=args.timeout,
        max_bdd_nodes=args.max_bdd_nodes,
        max_states=args.max_states,
        max_steps=args.max_steps)


def serve_command(args) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code."""
    config = config_from_args(args)
    service = VerificationService(config)
    server = build_server(service)

    def on_signal(signum: int, frame) -> None:
        if service.begin_shutdown():
            def sequence() -> None:
                service.drain()
                server.shutdown()
            threading.Thread(target=sequence, daemon=True,
                             name="repro-serve-drain").start()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    print(f"repro serve: listening on {config.endpoint()} "
          f"({config.workers} worker(s), "
          f"{config.max_concurrent} concurrent, "
          f"queue {config.max_queue})", file=sys.stderr, flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        # Safety net for abnormal serve_forever exits: the drain
        # sequence is idempotent and the pool tolerates double close.
        if service.begin_shutdown():
            service.drain()
        server.server_close()
        service.pool.terminate()
    print("repro serve: drained and stopped", file=sys.stderr,
          flush=True)
    return 0
