"""The process-pool executor: fan out, steal work, merge, reassemble.

Parallel verification is only worth having if it is *observationally
equivalent* to the sequential engine — same verdicts, same outcomes,
same counterexamples, same per-subgoal statistics, same JSON schema.
The design here buys that equivalence structurally:

* the unit of work is exactly the sequential engine's unit of
  isolation (one subgoal, or one whole program for ``table``), decided
  by the very same :class:`~repro.verify.engine.Verifier` code path in
  the worker, with a fresh BDD manager per attempt as always;
* workers ship back plain data (:mod:`repro.parallel.wire`); the
  parent reassembles results **in subgoal order**, so every reporter
  and the JSON document see the order a sequential run would produce;
* per-worker metrics registries are merged into the parent's both
  under ``worker.<slot>.`` namespaces and into the top-level merged
  view (counters sum, gauges max — PR 2's max-over-subgoals rule);
* per-worker ``CompilationStats`` ride inside each subgoal result and
  aggregate through the existing ``CompilationStats.merge``.

The one documented divergence: a run deadline is *partitioned*
(:func:`repro.parallel.schedule.partition_deadline`) rather than
shared absolutely, so a stuck worker exhausts only its own slice and
can never starve its siblings.  ``tests/diffcheck.py`` is the
enforcement arm of this module's contract.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.mso.compile import CompilationStats
from repro.obs import trace as obs_trace
from repro.obs.metrics import current_metrics
from repro.parallel.schedule import (WorkStealingScheduler,
                                     partition_deadline)
from repro.parallel.supervise import CrashReply, run_supervised
from repro.parallel.wire import (EngineOptions, ProgramTask, SubgoalTask,
                                 WireSubgoalResult, WorkerReply,
                                 rebuild_run, rebuild_subgoal_result)
from repro.parallel import worker as worker_mod
from repro.verify.engine import (Outcome, VerificationResult, Verifier)


def resolve_jobs(jobs: Optional[int]) -> int:
    """CLI semantics of ``--jobs``: None/1 = sequential, 0 = one per
    CPU, N = N workers."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ReproError(f"--jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def engine_options(verifier: Verifier) -> EngineOptions:
    """The picklable option set a worker needs to replay decisions."""
    tracer = verifier.tracer
    return EngineOptions(
        minimize_during=verifier.minimize_during,
        simulate=verifier.simulate,
        reduce=verifier.reduce,
        slice=verifier.slice,
        order=verifier.order,
        cache_dir=verifier.cache_dir,
        cache_max_mb=verifier.cache_max_mb,
        retry_alternate=verifier.retry_alternate,
        timeout=verifier.timeout,
        max_bdd_nodes=verifier.max_bdd_nodes,
        max_states=verifier.max_states,
        max_steps=verifier.max_steps,
        trace_detail=None if tracer is None else bool(tracer.detail),
    )


class _ReplyCollector:
    """Merges worker replies into the parent's metrics registry,
    assigning dense worker slots (``worker.0``, ``worker.1``, ...) in
    first-reply order so namespaces are stable run to run."""

    def __init__(self) -> None:
        self._slots: Dict[int, int] = {}

    def absorb(self, reply: WorkerReply) -> None:
        if reply.metrics is None:
            return
        registry = current_metrics()
        if not registry.enabled:
            return
        slot = self._slots.setdefault(reply.pid, len(self._slots))
        registry.merge(reply.metrics)
        registry.merge(reply.metrics, prefix=f"worker.{slot}.")


def error_subgoal_wire(index: int, message: str, attempts: int = 1,
                       description: str = "") -> WireSubgoalResult:
    """A synthesized ``ERROR`` row for a subgoal no worker could
    answer — the supervised-pool analogue of the engine's degradation
    ladder, so a lost task surfaces exactly like any other per-subgoal
    failure: a row in the report, never a hung run."""
    return WireSubgoalResult(
        index=index,
        description=description or f"subgoal {index}",
        valid=False,
        outcome=Outcome.ERROR.value,
        error=message,
        attempts=attempts,
        budget=None,
        seconds=0.0,
        formula_size=0,
        tracks_before=0,
        tracks_after=0,
        stats=CompilationStats(),
        span=None,
        counterexample=None,
    )


def crash_subgoal_wire(index: int, crash: CrashReply,
                       description: str = "") -> WireSubgoalResult:
    """Fold a quarantined subgoal task (the worker died on every
    attempt — OOM kill, hard exit, hang) into a structured ``ERROR``
    row."""
    return error_subgoal_wire(index, crash.describe(),
                              attempts=crash.attempts,
                              description=description)


# ----------------------------------------------------------------------
# verify -j N: subgoal-level parallelism
# ----------------------------------------------------------------------

def verify_parallel(verifier: Verifier) -> VerificationResult:
    """Decide one program's subgoals across a worker pool.

    The reassembled result is verdict-, outcome-, counterexample- and
    stats-identical to ``verifier.verify()`` with ``jobs=1``; only
    wall-clock time and the deadline-sharing rule differ.
    """
    program = verifier.program
    # Front-end failures (unsupported nesting, bad annotations) must
    # surface exactly as in the sequential path: before any worker.
    subgoals = verifier.collect_subgoals()
    jobs = max(1, min(verifier.jobs, len(subgoals)))
    options = engine_options(verifier)

    result = VerificationResult(program.name)
    if verifier._make_budget(verifier.timeout) is not None:
        result.budget = {
            "timeout": verifier.timeout,
            "max_bdd_nodes": verifier.max_bdd_nodes,
            "max_states": verifier.max_states,
            "max_steps": verifier.max_steps,
        }

    scheduler = WorkStealingScheduler()
    for index, subgoal in enumerate(subgoals):
        scheduler.add(index, cost=worker_mod.subgoal_cost(subgoal))
    order = [task.key for task in scheduler.drain()]
    slice_seconds = partition_deadline(verifier.timeout, len(order), jobs)
    payloads: List[object] = [
        SubgoalTask(program=program, index=index, options=options,
                    timeout_slice=slice_seconds)
        for index in order]

    collector = _ReplyCollector()
    wires: Dict[int, object] = {}
    errors: List[BaseException] = []

    def on_reply(reply) -> bool:
        if isinstance(reply, CrashReply):
            # The worker died on every attempt: a structured ERROR
            # row, exactly like any other degraded subgoal.
            index = int(reply.key)  # type: ignore[arg-type]
            wires[index] = crash_subgoal_wire(
                index, reply,
                description=getattr(subgoals[index], "description", ""))
            return False
        collector.absorb(reply)
        if reply.kind == "error":
            # Unexpected escape (the engine degrades everything it
            # can); surface it like the sequential path would.
            errors.append(reply.value)  # type: ignore[arg-type]
            return True
        wires[int(reply.key)] = reply.value  # type: ignore[arg-type]
        return False

    tracer = verifier.tracer
    with obs_trace.activate(tracer) if tracer is not None \
            else nullcontext():
        with obs_trace.span("verify", program=program.name,
                            parallel=True, jobs=jobs,
                            subgoals=len(subgoals)):
            interrupted = run_supervised(payloads, list(order),
                                         worker_mod.run_subgoal_task,
                                         jobs, on_reply)
    if errors:
        raise errors[0]

    metrics = current_metrics()
    budget_steps = 0
    for index in range(len(subgoals)):
        wire = wires.get(index)
        if wire is None:
            continue  # undecided at interrupt time
        decided = rebuild_subgoal_result(wire, subgoals[index])
        result.results.append(decided)
        metrics.counter(
            f"verify.outcome.{decided.outcome.value}").inc()
        if decided.budget is not None:
            budget_steps += int(decided.budget.get("steps") or 0)
        if verifier.stop_at_first_failure and not decided.valid:
            break
    result.interrupted = interrupted
    metrics.gauge("verify.tracks_before").set(result.tracks_before)
    metrics.gauge("verify.tracks_after").set(result.tracks_after)
    if result.budget is not None:
        metrics.gauge("verify.budget.steps").set(budget_steps)
    return result


# ----------------------------------------------------------------------
# table --jobs N: program-level parallelism
# ----------------------------------------------------------------------

def run_table(names: List[str], options: EngineOptions, jobs: int,
              keep_going: bool = False
              ) -> Tuple[List[VerificationResult], bool]:
    """Verify many programs across a worker pool.

    Returns the results **in input order** (restricted to the
    programs that finished, when interrupted) plus the interrupted
    flag — the same contract as the sequential ``table`` loop.  Each
    program gets the full configured timeout, exactly as sequential
    ``table`` re-creates a budget per program.
    """
    jobs = max(1, min(jobs, len(names))) if names else 1
    payloads: List[object] = [
        ProgramTask(name=name, options=options, keep_going=keep_going)
        for name in names]

    collector = _ReplyCollector()
    finished: Dict[str, VerificationResult] = {}
    errors: List[BaseException] = []
    saw_engine_interrupt = [False]

    def on_reply(reply) -> bool:
        name = str(reply.key)
        if isinstance(reply, CrashReply):
            # A program whose worker died on every attempt becomes a
            # structured error row (exit code 3), never a raw crash
            # of the whole table run.
            finished[name] = VerificationResult(program=name,
                                                error=reply.describe())
            return False
        collector.absorb(reply)
        if reply.kind == "error":
            exc = reply.value
            if keep_going and isinstance(exc, (ReproError, OSError)):
                finished[name] = VerificationResult(program=name,
                                                    error=str(exc))
                return False
            errors.append(exc)  # type: ignore[arg-type]
            return True
        run = rebuild_run(reply.value)  # type: ignore[arg-type]
        finished[name] = run
        if run.interrupted:
            # Mirror the sequential loop: keep the partial program
            # report, then stop the whole table.
            saw_engine_interrupt[0] = True
            return True
        return False

    interrupted = run_supervised(payloads, list(names),
                                 worker_mod.run_program_task,
                                 jobs, on_reply)
    if errors:
        raise errors[0]
    results = [finished[name] for name in names if name in finished]
    return results, interrupted or saw_engine_interrupt[0]
