"""Sharded parallel verification (``--jobs N``).

Fans independent subgoals — and whole programs, for ``repro table``
and batch runs — across a pool of worker processes, one BDD manager
per worker, then merges per-worker ``CompilationStats``, metrics and
outcomes back into a single :class:`~repro.verify.VerificationResult`
whose JSON report is schema-compatible (schema_version 2) and
verdict-identical with a sequential run.

Module map:

* :mod:`repro.parallel.schedule` — deterministic work-stealing order
  and deadline partitioning (pure; fake-clock testable);
* :mod:`repro.parallel.wire` — picklable task/result payloads;
* :mod:`repro.parallel.worker` — worker-process entry points;
* :mod:`repro.parallel.supervise` — the supervised pool: heartbeat
  and exit-code watch, respawn, retry with backoff, quarantine;
* :mod:`repro.parallel.pool` — the executor and the merge logic.

Worker death is a *normal event* here: a crashed, OOM-killed or hung
worker is respawned and its in-flight task retried; a task that kills
every worker sent to it is quarantined as a structured ``ERROR`` row
(``docs/ARCHITECTURE.md`` §12).  The differential harness
``tests/diffcheck.py`` is this package's correctness contract:
sequential and parallel runs over the whole corpus must produce
identical normalized reports.
"""

from repro.parallel.pool import (crash_subgoal_wire, engine_options,
                                 error_subgoal_wire, resolve_jobs,
                                 run_table, verify_parallel)
from repro.parallel.schedule import (Task, WorkStealingScheduler,
                                     partition_deadline)
from repro.parallel.supervise import (CrashReply, SupervisedPool,
                                      run_supervised)
from repro.parallel.wire import EngineOptions

__all__ = ["CrashReply", "EngineOptions", "SupervisedPool", "Task",
           "WorkStealingScheduler", "crash_subgoal_wire",
           "engine_options", "error_subgoal_wire",
           "partition_deadline", "resolve_jobs", "run_supervised",
           "run_table", "verify_parallel"]
