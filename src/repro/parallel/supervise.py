"""A supervised worker pool that treats worker death as normal.

The plain :class:`multiprocessing.Pool` behind PR 4's executor has a
latent hang: ``imap_unordered`` waits for one reply per submitted
task, so a worker that dies *mid-task* — SIGKILLed by the kernel's
OOM killer, or crashed hard enough to skip its reply envelope —
strands the whole run.  A long-lived verification service cannot
afford that failure mode, and neither can the CLI's ``-j`` runs.

This pool replaces the task/reply plumbing with explicitly supervised
worker processes:

* each worker owns a duplex pipe; a daemon thread inside it sends a
  **heartbeat** every :data:`HEARTBEAT_INTERVAL` seconds, so the
  supervisor can tell *hung* (beating stopped) from *busy* (beating,
  still computing) from *dead* (pipe closed, exit code set);
* the dispatcher thread watches every pipe; a closed pipe or a stale
  heartbeat marks the worker dead, the worker is **re-spawned**, and
  its in-flight task is **retried with exponential backoff**;
* a task that out-lives :attr:`SupervisedPool.max_attempts` dispatch
  attempts is **quarantined**: its callback receives a
  :class:`CrashReply` instead of a worker reply, which the callers
  fold into a structured ``ERROR`` row.  Every submitted task is
  therefore answered — by a reply, a crash report, or a shutdown
  notice — and nothing ever waits forever;
* fault-injection is first-class: the ``serve.worker_spawn`` and
  ``serve.heartbeat`` sites fire inside the spawn path and the beat
  loop, and the crash kinds (``exit``/``kill``) let tests SIGKILL a
  busy worker deterministically.  When a worker dies while a
  count-limited crash rule is live, the supervisor decrements the
  rule before re-spawning (the dead worker cannot report that it
  fired), so ``verify.decide:kill:1`` means "exactly one crash", not
  "every fresh worker crashes once".

The pool is *persistent*: :meth:`SupervisedPool.submit` can be called
at any time, which is what the serving daemon needs; the one-shot CLI
path uses the :func:`run_supervised` batch wrapper.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.metrics import current_metrics
from repro.robust import faults

#: Seconds between worker heartbeats.
HEARTBEAT_INTERVAL = 0.2

#: How long the dispatcher sleeps waiting for pipe traffic.
_POLL_SECONDS = 0.05

#: Exit code of a worker killed by the supervisor (hang response).
_KILLED_BY_SUPERVISOR = "killed by supervisor"


@dataclass
class CrashReply:
    """Delivered to a task's callback when no worker could answer it.

    ``reason`` is one of ``crashed`` (the worker died mid-task on
    every attempt), ``hung`` (heartbeats stopped), ``spawn-failed``
    (no worker could be started at all), ``shutdown`` (the pool was
    terminated with the task still outstanding) or
    ``supervisor-error`` (an internal dispatcher failure — every task
    is still answered).
    """

    key: object
    attempts: int
    exitcode: Optional[int]
    reason: str

    def describe(self) -> str:
        detail = self.reason
        if self.exitcode is not None:
            detail += f", exit code {self.exitcode}"
        return (f"worker {detail} after {self.attempts} "
                f"attempt(s); task quarantined")


class _Task:
    __slots__ = ("seq", "key", "payload", "on_done", "attempts",
                 "not_before", "last_exitcode", "last_reason")

    def __init__(self, seq: int, key: object, payload: object,
                 on_done: Callable[[object], None]) -> None:
        self.seq = seq
        self.key = key
        self.payload = payload
        self.on_done = on_done
        self.attempts = 0
        self.not_before = 0.0
        self.last_exitcode: Optional[int] = None
        self.last_reason = "crashed"


class _Slot:
    __slots__ = ("process", "conn", "busy", "last_beat", "spawned_at",
                 "tasks_done")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.busy: Optional[_Task] = None
        self.last_beat = time.monotonic()
        self.spawned_at = time.monotonic()
        self.tasks_done = 0


def _worker_main(conn, task_fn: Callable[[object], object],
                 faults_spec: str, heartbeat_interval: float) -> None:
    """One worker: receive tasks, answer them, beat in between.

    The beat thread shares the pipe with the task loop under a lock.
    An injected ``serve.heartbeat`` fault silently ends the beat
    thread — from the supervisor's side that worker looks hung, which
    is exactly the failure the site exists to simulate.
    """
    if faults_spec:
        try:
            faults.install(faults.parse_plan(faults_spec))
        except faults.FaultSpecError:
            pass
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            try:
                faults.fire("serve.heartbeat")
                with send_lock:
                    conn.send(("hb",))
            except Exception:  # noqa: BLE001 — a dead beat thread is
                # the simulated failure; the supervisor notices.
                return

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _, seq, payload = message
            reply = task_fn(payload)
            with send_lock:
                conn.send(("reply", seq, reply))
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        stop_beating.set()


class SupervisedPool:
    """A crash-tolerant, persistent pool of worker processes.

    Args:
        task_fn: module-level callable executed in the worker for each
            payload; expected to catch its own exceptions and return a
            reply object (:func:`repro.parallel.worker.run_subgoal_task`
            is the canonical example).
        jobs: maximum concurrent worker processes.
        faults_spec: ``REPRO_FAULTS`` spec forwarded to every worker
            (and re-forwarded, possibly with consumed crash rules, to
            re-spawned ones).
        max_attempts: dispatch attempts per task before quarantine.
        backoff_base: first retry delay; doubles per attempt.
        backoff_cap: upper bound on the retry delay.
        hang_timeout: seconds without a heartbeat after which a *busy*
            worker is declared hung and killed; None disables hang
            detection (death detection stays on).
    """

    def __init__(self, task_fn: Callable[[object], object], jobs: int,
                 faults_spec: str = "", max_attempts: int = 3,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 hang_timeout: Optional[float] = None) -> None:
        self.task_fn = task_fn
        self.jobs = max(1, jobs)
        self.max_attempts = max(1, max_attempts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.hang_timeout = hang_timeout
        self._fault_plan: Optional[faults.FaultPlan] = None
        self._fault_spec = faults_spec
        if faults_spec:
            try:
                self._fault_plan = faults.parse_plan(faults_spec)
            except faults.FaultSpecError:
                self._fault_plan = None
        self._ctx = multiprocessing.get_context()
        self._lock = threading.Lock()
        self._queue: Deque[_Task] = deque()
        self._slots: List[_Slot] = []
        self._seq = 0
        self._outstanding = 0
        self._draining = False
        self._terminating = False
        self._closed = False
        self._spawn_failures = 0
        self._spawn_not_before = 0.0
        self._restarts = 0
        self._quarantined = 0
        self._dispatcher = threading.Thread(target=self._loop,
                                            daemon=True,
                                            name="repro-pool-dispatch")
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Public surface (any thread)
    # ------------------------------------------------------------------

    def submit(self, payload: object, key: object,
               on_done: Callable[[object], None]) -> None:
        """Enqueue one task; ``on_done`` receives exactly one reply —
        the worker's reply object or a :class:`CrashReply` — from the
        dispatcher thread."""
        with self._lock:
            if self._draining or self._terminating or self._closed:
                task = _Task(self._seq, key, payload, on_done)
                task.last_reason = "shutdown"
                self._deliver_crash(task, "shutdown")
                return
            self._seq += 1
            self._queue.append(_Task(self._seq, key, payload, on_done))
            self._outstanding += 1

    @property
    def outstanding(self) -> int:
        """Tasks submitted but not yet answered."""
        with self._lock:
            return self._outstanding

    def stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot for health/stats endpoints."""
        with self._lock:
            workers = [{
                "pid": slot.process.pid,
                "state": "busy" if slot.busy is not None else "idle",
                "tasks_done": slot.tasks_done,
                "age_seconds": round(time.monotonic()
                                     - slot.spawned_at, 3),
            } for slot in self._slots]
            return {
                "jobs": self.jobs,
                "workers": workers,
                "queued_tasks": len(self._queue),
                "outstanding": self._outstanding,
                "restarts": self._restarts,
                "quarantined": self._quarantined,
                "spawn_failures": self._spawn_failures,
            }

    def close(self, drain: bool = True, grace: Optional[float] = None
              ) -> None:
        """Stop the pool.

        ``drain=True`` lets queued and in-flight tasks finish (up to
        ``grace`` seconds, unlimited when None) before workers are
        stopped; ``drain=False`` kills workers immediately and answers
        every outstanding task with a ``shutdown`` crash reply.
        """
        with self._lock:
            if self._closed:
                return
            if drain:
                self._draining = True
            else:
                self._terminating = True
        if drain and grace is not None:
            deadline = time.monotonic() + grace
            while time.monotonic() < deadline:
                if self.outstanding == 0:
                    break
                time.sleep(_POLL_SECONDS)
            with self._lock:
                if self._outstanding:
                    self._terminating = True
        self._dispatcher.join()
        with self._lock:
            self._closed = True

    def terminate(self) -> None:
        """Kill every worker now; outstanding tasks get ``shutdown``
        crash replies.  Nothing survives this call."""
        self.close(drain=False)

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        try:
            while True:
                with self._lock:
                    terminating = self._terminating
                    done = (self._draining and self._outstanding == 0)
                if terminating or done:
                    break
                try:
                    self._reap_dead()
                    self._check_hangs()
                    self._dispatch_ready()
                    self._wait_for_traffic()
                except Exception:  # noqa: BLE001 — the dispatcher
                    # must outlive any single bad iteration; a repeat
                    # offender is caught by the outer handler.
                    current_metrics().counter(
                        "serve.pool.dispatch_errors").inc()
                    time.sleep(_POLL_SECONDS)
        except BaseException:  # noqa: BLE001 — answer, then give up
            self._fail_everything("supervisor-error")
        finally:
            self._shutdown_workers()
            self._fail_everything("shutdown")

    def _wait_for_traffic(self) -> None:
        with self._lock:
            conns = [slot.conn for slot in self._slots]
        if not conns:
            time.sleep(_POLL_SECONDS)
            return
        try:
            ready = mp_connection.wait(conns, timeout=_POLL_SECONDS)
        except OSError:
            return
        for conn in ready:
            with self._lock:
                slot = next((s for s in self._slots
                             if s.conn is conn), None)
            if slot is None:
                continue
            self._drain_slot(slot)

    def _drain_slot(self, slot: _Slot) -> None:
        try:
            while slot.conn.poll():
                message = slot.conn.recv()
                self._handle_message(slot, message)
        except (EOFError, OSError):
            self._handle_death(slot, "crashed")

    def _handle_message(self, slot: _Slot, message) -> None:
        slot.last_beat = time.monotonic()
        if message[0] == "hb":
            return
        _, seq, reply = message
        task = slot.busy
        if task is None or task.seq != seq:
            # A straggler reply from a worker we already gave up on
            # (e.g. it recovered right as we killed it): the task was
            # answered elsewhere, drop the duplicate.
            current_metrics().counter("serve.pool.stale_replies").inc()
            return
        slot.busy = None
        slot.tasks_done += 1
        with self._lock:
            self._outstanding -= 1
        self._safe_callback(task, reply)

    # -- death, hangs, retries -----------------------------------------

    def _reap_dead(self) -> None:
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            if not slot.process.is_alive():
                self._drain_slot_final(slot)

    def _drain_slot_final(self, slot: _Slot) -> None:
        """A dead worker's pipe may still hold a final reply (it
        answered, then crashed between tasks): take it before
        declaring the in-flight task lost."""
        try:
            while slot.conn.poll():
                message = slot.conn.recv()
                self._handle_message(slot, message)
        except (EOFError, OSError):
            pass
        self._handle_death(slot, "crashed")

    def _check_hangs(self) -> None:
        if self.hang_timeout is None:
            return
        now = time.monotonic()
        with self._lock:
            hung = [slot for slot in self._slots
                    if slot.busy is not None
                    and now - slot.last_beat > self.hang_timeout]
        for slot in hung:
            current_metrics().counter("serve.pool.hangs").inc()
            try:
                slot.process.kill()
                slot.process.join(1.0)
            except OSError:
                pass
            self._handle_death(slot, "hung")

    def _handle_death(self, slot: _Slot, reason: str) -> None:
        with self._lock:
            if slot not in self._slots:
                return
            self._slots.remove(slot)
            self._restarts += 1
        current_metrics().counter("serve.pool.crashes").inc()
        try:
            slot.conn.close()
        except OSError:
            pass
        try:
            # Reap before reading the exit code: EOF on the pipe can
            # precede the zombie being waited on.
            slot.process.join(1.0)
        except (OSError, AssertionError):
            pass
        exitcode = slot.process.exitcode
        # Account the crash against a count-limited exit/kill fault
        # rule: the dead worker fired it but could not report that.
        if self._fault_plan is not None and \
                self._fault_plan.consume_crash():
            self._fault_spec = self._fault_plan.to_spec()
        task = slot.busy
        slot.busy = None
        if task is not None:
            task.last_exitcode = exitcode
            task.last_reason = reason
            self._retry_or_quarantine(task, reason, exitcode)

    def _retry_or_quarantine(self, task: _Task, reason: str,
                             exitcode: Optional[int]) -> None:
        if task.attempts >= self.max_attempts:
            with self._lock:
                self._outstanding -= 1
                self._quarantined += 1
            current_metrics().counter("serve.pool.quarantined").inc()
            self._safe_callback(
                task, CrashReply(key=task.key, attempts=task.attempts,
                                 exitcode=exitcode, reason=reason))
            return
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (task.attempts - 1)))
        task.not_before = time.monotonic() + delay
        current_metrics().counter("serve.pool.retries").inc()
        with self._lock:
            self._queue.append(task)

    # -- spawning and dispatch -----------------------------------------

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        while True:
            with self._lock:
                task = self._next_ready(now)
                if task is None:
                    return
                slot = next((s for s in self._slots if s.busy is None),
                            None)
            if slot is None:
                slot = self._spawn()
                if slot is None:
                    with self._lock:
                        self._queue.appendleft(task)
                    self._maybe_fail_unspawnable()
                    return
            task.attempts += 1
            slot.busy = task
            slot.last_beat = time.monotonic()
            try:
                slot.conn.send(("task", task.seq, task.payload))
            except (OSError, ValueError):
                # The worker died between poll and send; the task
                # never started, so the attempt does not count.
                task.attempts -= 1
                slot.busy = None
                with self._lock:
                    self._queue.appendleft(task)
                self._handle_death(slot, "crashed")
                return

    def _next_ready(self, now: float) -> Optional[_Task]:
        """Pop the first dispatchable task (lock held by caller)."""
        for _ in range(len(self._queue)):
            task = self._queue.popleft()
            if task.not_before <= now:
                return task
            self._queue.append(task)
        return None

    def _spawn(self) -> Optional[_Slot]:
        with self._lock:
            if len(self._slots) >= self.jobs:
                return None
            if time.monotonic() < self._spawn_not_before:
                return None
        try:
            faults.fire("serve.worker_spawn")
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.task_fn, self._fault_spec,
                      HEARTBEAT_INTERVAL),
                daemon=True, name="repro-worker")
            process.start()
            child_conn.close()
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — spawn failure is a fault
            # site; back off and let the caller decide whether the
            # pool is beyond saving.
            with self._lock:
                self._spawn_failures += 1
                delay = min(self.backoff_cap,
                            self.backoff_base * (2 ** min(
                                self._spawn_failures, 6)))
                self._spawn_not_before = time.monotonic() + delay
            current_metrics().counter(
                "serve.pool.spawn_failures").inc()
            return None
        slot = _Slot(process, parent_conn)
        with self._lock:
            self._slots.append(slot)
            self._spawn_failures = 0
        current_metrics().counter("serve.pool.spawns").inc()
        return slot

    def _maybe_fail_unspawnable(self) -> None:
        """With no live worker and ``max_attempts`` consecutive spawn
        failures, no task can ever run: answer them all instead of
        queueing forever."""
        with self._lock:
            broken = (not self._slots
                      and self._spawn_failures >= self.max_attempts)
        if broken:
            self._fail_everything("spawn-failed")

    # -- teardown ------------------------------------------------------

    def _fail_everything(self, reason: str) -> None:
        while True:
            with self._lock:
                task = self._queue.popleft() if self._queue else None
                busy = None
                if task is None:
                    for slot in self._slots:
                        if slot.busy is not None:
                            busy = slot.busy
                            slot.busy = None
                            break
                if task is None and busy is None:
                    return
                self._outstanding -= 1
            self._deliver_crash(task if task is not None else busy,
                                reason)

    def _deliver_crash(self, task: _Task, reason: str) -> None:
        self._safe_callback(
            task, CrashReply(key=task.key, attempts=max(1, task.attempts),
                             exitcode=task.last_exitcode, reason=reason))

    def _safe_callback(self, task: _Task, reply: object) -> None:
        try:
            task.on_done(reply)
        except Exception:  # noqa: BLE001 — a broken callback must not
            # take the dispatcher (and every other task) down with it.
            current_metrics().counter(
                "serve.pool.callback_errors").inc()

    def _shutdown_workers(self) -> None:
        with self._lock:
            slots = list(self._slots)
            self._slots = []
            terminating = self._terminating
            # Hand in-flight tasks back to the queue so the closing
            # _fail_everything() answers them with shutdown notices.
            for slot in slots:
                if slot.busy is not None:
                    self._queue.append(slot.busy)
                    slot.busy = None
        for slot in slots:
            if not terminating:
                try:
                    slot.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + (0.0 if terminating else 2.0)
        for slot in slots:
            remaining = max(0.0, deadline - time.monotonic())
            slot.process.join(remaining)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(2.0)
            try:
                slot.conn.close()
            except OSError:
                pass


def run_supervised(payloads: List[object], keys: List[object],
                   task_fn: Callable[[object], object], jobs: int,
                   on_reply: Callable[[object], bool],
                   max_attempts: int = 3,
                   hang_timeout: Optional[float] = None) -> bool:
    """One-shot batch over a supervised pool (the CLI path).

    ``on_reply`` sees each worker reply or :class:`CrashReply` in
    arrival order and returns True to stop early.  Returns True when
    the run was interrupted (a worker reported KeyboardInterrupt, or
    the caller received one).  On any early exit the pool is
    terminated, not drained, so no orphaned worker outlives the run.
    """
    if not payloads:
        return False
    pool = SupervisedPool(task_fn, max(1, min(jobs, len(payloads))),
                          faults_spec=os.environ.get("REPRO_FAULTS", ""),
                          max_attempts=max_attempts,
                          hang_timeout=hang_timeout)
    replies: "queue.Queue[object]" = queue.Queue()
    interrupted = False
    clean = False
    try:
        for payload, key in zip(payloads, keys):
            pool.submit(payload, key, replies.put)
        remaining = len(payloads)
        while remaining:
            reply = replies.get()
            remaining -= 1
            if getattr(reply, "kind", None) == "interrupted":
                interrupted = True
                break
            if on_reply(reply):
                break
        else:
            clean = True
    except KeyboardInterrupt:
        interrupted = True
    finally:
        pool.close(drain=clean)
    return interrupted
