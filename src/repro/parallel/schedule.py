"""Deterministic scheduling policy for the parallel executor.

Two concerns live here, both pure and fake-clock testable:

* **ordering** — :class:`WorkStealingScheduler` decides which pending
  task an idle worker steals next: the *longest-pending* task first
  (earliest enqueue by the scheduler's clock), with estimated cost
  (descending) and then submission index breaking ties.  In the real
  executor every subgoal is enqueued at the same instant, so the
  policy degenerates to longest-job-first — the classic LPT makespan
  heuristic — while a run that trickles tasks in (``table`` feeding
  programs as sources load) gets genuine oldest-first stealing.

* **deadline partitioning** — :func:`partition_deadline` splits one
  absolute run deadline into per-task slices such that no task can
  consume a sibling's share: with ``P`` pending tasks on ``W``
  workers, the tasks run in at most ``ceil(P / W)`` waves, and each
  task's slice is ``remaining / waves``.  Even if a worker wedges
  inside its slice, every other task still owns enough of the
  deadline to run (``slice * waves <= remaining``).

The executor uses the scheduler only to fix the submission order; the
actual stealing is the process pool's shared task queue, from which
idle workers pull in exactly that order.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class Task:
    """One schedulable unit (a subgoal or a whole program).

    Attributes:
        key: caller's identifier (subgoal index, program name).
        cost: estimated decision cost; any monotone proxy works (the
            engine uses statement + obligation counts).
        enqueued: scheduler-clock time the task became pending.
    """

    key: object
    cost: float = 0.0
    enqueued: float = 0.0
    #: Submission sequence number; the final, deterministic tie-break.
    index: int = field(default=0, compare=False)


class WorkStealingScheduler:
    """Orders pending tasks for idle workers.

    Args:
        clock: time source (injectable for deterministic tests).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._pending: List[Task] = []
        self._counter = 0

    def add(self, key: object, cost: float = 0.0,
            enqueued: Optional[float] = None) -> Task:
        """Enqueue one task; ``enqueued`` defaults to the clock now."""
        task = Task(key=key, cost=float(cost),
                    enqueued=self._clock() if enqueued is None
                    else enqueued,
                    index=self._counter)
        self._counter += 1
        self._pending.append(task)
        return task

    def __len__(self) -> int:
        return len(self._pending)

    def steal(self) -> Optional[Task]:
        """Pop the task an idle worker should run next: the one
        pending longest; among equals, the costliest; among those, the
        earliest submitted."""
        if not self._pending:
            return None
        now = self._clock()
        best = min(self._pending,
                   key=lambda t: (-(now - t.enqueued), -t.cost, t.index))
        self._pending.remove(best)
        return best

    def drain(self) -> List[Task]:
        """Steal every pending task, in stealing order — the executor's
        submission order."""
        order: List[Task] = []
        while self._pending:
            task = self.steal()
            assert task is not None
            order.append(task)
        return order


def partition_deadline(remaining: Optional[float], pending: int,
                       workers: int) -> Optional[float]:
    """Per-task wall-clock slice of one shared deadline.

    Returns None when there is no deadline.  A non-positive
    ``remaining`` yields 0.0 — every task's budget trips immediately,
    mirroring the sequential engine's behaviour once its absolute
    deadline has passed.
    """
    if remaining is None:
        return None
    if remaining <= 0 or pending <= 0:
        return 0.0
    waves = math.ceil(pending / max(1, workers))
    return remaining / waves
