"""Picklable payloads crossing the worker process boundary.

Subgoals themselves cannot travel: their obligations close over
formula builders and interpreter state.  Instead, a worker receives
the *typed program* (or just a program name, for ``table`` tasks) and
an index, re-derives the subgoal deterministically, and ships back a
:class:`WireSubgoalResult` — plain data mirroring
:class:`repro.verify.engine.SubgoalResult` field for field.  The
parent re-attaches its own :class:`Subgoal` object (or a
:class:`WireSubgoal` shim when it never parsed the program), so the
reassembled ``VerificationResult`` renders and serialises exactly as
a sequential run's would.

Spans travel as their ``to_dict()`` trees and are rebuilt into real
:class:`~repro.obs.trace.Span` objects by :func:`span_from_dict`, so
``--profile``/``--json`` output is structurally identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mso.compile import CompilationStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span
from repro.verify.counterexample import Counterexample
from repro.verify.engine import Outcome, SubgoalResult, VerificationResult


# ----------------------------------------------------------------------
# Task payloads (parent -> worker)
# ----------------------------------------------------------------------

@dataclass
class EngineOptions:
    """The picklable subset of :class:`repro.verify.engine.Verifier`
    configuration a worker needs to reproduce a decision exactly."""

    minimize_during: bool = True
    simulate: bool = True
    reduce: bool = True
    slice: bool = True
    order: bool = True
    cache_dir: Optional[str] = None
    cache_max_mb: Optional[float] = None
    retry_alternate: bool = True
    timeout: Optional[float] = None
    max_bdd_nodes: Optional[int] = None
    max_states: Optional[int] = None
    max_steps: Optional[int] = None
    #: None = no tracer; False = phase spans; True = detail spans.
    trace_detail: Optional[bool] = None


@dataclass
class SubgoalTask:
    """Decide subgoal ``index`` of ``program`` (a ``verify -j`` unit)."""

    program: object  # TypedProgram; picklable AST dataclasses
    index: int
    options: EngineOptions
    #: This task's share of the run deadline (None = no deadline);
    #: replaces ``options.timeout`` so a stuck sibling cannot starve it.
    timeout_slice: Optional[float] = None


@dataclass
class ProgramTask:
    """Verify one whole program (a ``table``/batch unit)."""

    name: str
    options: EngineOptions
    keep_going: bool = False


# ----------------------------------------------------------------------
# Results (worker -> parent)
# ----------------------------------------------------------------------

@dataclass
class WireSubgoalResult:
    """One decided subgoal, flattened to plain data."""

    index: int
    description: str
    valid: bool
    outcome: str
    error: Optional[str]
    attempts: int
    budget: Optional[Dict[str, object]]
    seconds: float
    formula_size: int
    tracks_before: int
    tracks_after: int
    stats: CompilationStats
    span: Optional[Dict[str, object]]
    counterexample: Optional[Counterexample]
    #: Check-obligation names, so text reports of rebuilt results can
    #: list them even when the parent never split the program.
    checks: Tuple[str, ...] = ()
    statements_before: int = 0
    statements_after: int = 0
    variable_order: Optional[Tuple[str, ...]] = None
    cache: Optional[Dict[str, object]] = None


@dataclass
class WireRun:
    """One whole-program verification, flattened."""

    program: str
    subgoals: List[WireSubgoalResult] = field(default_factory=list)
    error: Optional[str] = None
    interrupted: bool = False
    budget: Optional[Dict[str, object]] = None


@dataclass
class WorkerReply:
    """Envelope for everything a worker sends back for one task.

    ``kind`` is one of ``result`` (value = WireSubgoalResult),
    ``run`` (value = WireRun), ``error`` (value = the pickled
    exception, re-raised or degraded by the parent) or
    ``interrupted`` (value = None; the worker saw KeyboardInterrupt).
    """

    kind: str
    key: object
    value: object
    pid: int = 0
    metrics: Optional[MetricsRegistry] = None


# ----------------------------------------------------------------------
# Subgoal shim and (de)serialisation helpers
# ----------------------------------------------------------------------

@dataclass
class WireSubgoal:
    """Stands in for a :class:`~repro.verify.engine.Subgoal` when the
    parent never split the program itself (``table`` tasks).  Carries
    what the reporters read: the description and the check names."""

    description: str
    check: Tuple["WireObligation", ...] = ()
    assume: Tuple["WireObligation", ...] = ()
    statements: Tuple[object, ...] = ()


@dataclass
class WireObligation:
    """Name-only obligation for :class:`WireSubgoal` (the text report
    lists check names for failed/verbose subgoals)."""

    name: str


def span_from_dict(document: Optional[Dict[str, object]]) -> Optional[Span]:
    """Rebuild a :class:`Span` tree from its ``to_dict()`` form.

    The rebuilt span reports the recorded duration (``start`` 0,
    ``end`` = seconds) and never re-enters a tracer, so it behaves
    exactly like the original for rendering and JSON export.
    """
    if document is None:
        return None
    span = Span(str(document["name"]), dict(document["attrs"]), None)
    span.start = 0.0
    span.end = float(document["seconds"])
    span.children = [span_from_dict(child)
                     for child in document["children"]]
    return span


def wire_subgoal_result(index: int,
                        result: SubgoalResult) -> WireSubgoalResult:
    """Flatten one engine result for the trip to the parent."""
    return WireSubgoalResult(
        index=index,
        description=result.description,
        valid=result.valid,
        outcome=result.outcome.value,
        error=result.error,
        attempts=result.attempts,
        budget=result.budget,
        seconds=result.seconds,
        formula_size=result.formula_size,
        tracks_before=result.tracks_before,
        tracks_after=result.tracks_after,
        stats=result.stats,
        span=result.span.to_dict() if result.span is not None else None,
        counterexample=result.counterexample,
        checks=tuple(item.name for item in result.subgoal.check),
        statements_before=result.statements_before,
        statements_after=result.statements_after,
        variable_order=result.variable_order,
        cache=result.cache,
    )


def rebuild_subgoal_result(wire: WireSubgoalResult,
                           subgoal: object = None) -> SubgoalResult:
    """Inflate a wire result back into a :class:`SubgoalResult`.

    ``subgoal`` is the parent's own Subgoal object when it has one
    (``verify -j``); otherwise a :class:`WireSubgoal` shim carrying
    the worker-reported description and check names.
    """
    if subgoal is None:
        subgoal = WireSubgoal(
            description=wire.description,
            check=tuple(WireObligation(name) for name in wire.checks))
    return SubgoalResult(
        subgoal=subgoal,
        valid=wire.valid,
        counterexample=wire.counterexample,
        stats=wire.stats,
        formula_size=wire.formula_size,
        seconds=wire.seconds,
        span=span_from_dict(wire.span),
        tracks_before=wire.tracks_before,
        tracks_after=wire.tracks_after,
        outcome=Outcome(wire.outcome),
        error=wire.error,
        attempts=wire.attempts,
        budget=wire.budget,
        statements_before=wire.statements_before,
        statements_after=wire.statements_after,
        variable_order=wire.variable_order,
        cache=wire.cache,
    )


def wire_run(result: VerificationResult) -> WireRun:
    """Flatten one whole-program result for the trip to the parent."""
    return WireRun(
        program=result.program,
        subgoals=[wire_subgoal_result(i, sub)
                  for i, sub in enumerate(result.results)],
        error=result.error,
        interrupted=result.interrupted,
        budget=result.budget,
    )


def rebuild_run(wire: WireRun) -> VerificationResult:
    """Inflate a wire run back into a :class:`VerificationResult`."""
    result = VerificationResult(program=wire.program, error=wire.error,
                                interrupted=wire.interrupted,
                                budget=wire.budget)
    for sub in wire.subgoals:
        result.results.append(rebuild_subgoal_result(sub))
    return result
