"""Worker-process entry points for the parallel executor.

Each worker process owns its own world: a fresh BDD manager per
decision attempt (the engine already guarantees that), its own metrics
registry, its own tracer, and its own budget carved out of the run
deadline.  Nothing is shared with the parent but the pickled task in
and the pickled :class:`~repro.parallel.wire.WorkerReply` out.

A worker never lets an exception escape: the engine's degradation
ladder already folds per-subgoal failures into structured outcomes,
and whatever still gets through — front-end errors on a ``table``
task, an injected ``KeyboardInterrupt`` — is wrapped into the reply
envelope for the parent to re-raise or record.  This keeps the
process pool healthy (a raising task would otherwise kill its worker)
and keeps fault-injection behaviour identical to the in-process path.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry, activate_metrics
from repro.pascal import check_program, parse_program
from repro.parallel.wire import (EngineOptions, ProgramTask, SubgoalTask,
                                 WireRun, WorkerReply,
                                 wire_run, wire_subgoal_result)
from repro.programs import load_source
from repro.robust import faults
from repro.verify.engine import VerificationResult, Verifier


def initialize(faults_spec: str = "") -> None:
    """Pool initializer.

    Under the default ``fork`` start method the worker inherits the
    parent's installed fault plan; under ``spawn`` it would not, so
    the parent forwards the ``REPRO_FAULTS`` spec explicitly.  Count-
    limited fault rules (``site:kind:1``) are therefore *per worker*
    in a parallel run, not global — documented in ARCHITECTURE §10.
    """
    if faults_spec:
        faults.install(faults.parse_plan(faults_spec))


def _verifier_for(program: object, options: EngineOptions,
                  tracer: Optional[obs_trace.Tracer],
                  timeout: Optional[float]) -> Verifier:
    return Verifier(program,  # type: ignore[arg-type]
                    minimize_during=options.minimize_during,
                    simulate=options.simulate,
                    reduce=options.reduce,
                    slice=options.slice,
                    order=options.order,
                    cache_dir=options.cache_dir,
                    cache_max_mb=options.cache_max_mb,
                    retry_alternate=options.retry_alternate,
                    tracer=tracer,
                    timeout=timeout,
                    max_bdd_nodes=options.max_bdd_nodes,
                    max_states=options.max_states,
                    max_steps=options.max_steps)


def _tracer_for(options: EngineOptions) -> Optional[obs_trace.Tracer]:
    if options.trace_detail is None:
        return None
    return obs_trace.Tracer(detail=options.trace_detail)


def run_subgoal_task(task: SubgoalTask) -> WorkerReply:
    """Decide one subgoal of an already-typed program."""
    metrics = MetricsRegistry()
    try:
        with activate_metrics(metrics):
            tracer = _tracer_for(task.options)
            verifier = _verifier_for(task.program, task.options,
                                     tracer=None,
                                     timeout=task.options.timeout)
            if tracer is not None:
                with obs_trace.activate(tracer):
                    result = verifier.decide_index(
                        task.index, timeout=task.timeout_slice)
            else:
                result = verifier.decide_index(
                    task.index, timeout=task.timeout_slice)
        return WorkerReply(kind="result", key=task.index,
                           value=wire_subgoal_result(task.index, result),
                           pid=os.getpid(), metrics=metrics)
    except KeyboardInterrupt:
        return WorkerReply(kind="interrupted", key=task.index,
                           value=None, pid=os.getpid(), metrics=metrics)
    except BaseException as exc:  # noqa: BLE001 — the envelope IS the
        # error channel; a raising task must not kill its worker.
        return WorkerReply(kind="error", key=task.index, value=exc,
                           pid=os.getpid(), metrics=metrics)


def run_program_task(task: ProgramTask) -> WorkerReply:
    """Verify one whole program (``table``/batch granularity).

    Each program gets the full configured timeout, exactly as the
    sequential ``table`` loop gives each program its own budget.
    """
    metrics = MetricsRegistry()
    try:
        with activate_metrics(metrics):
            source = load_source(task.name)
            program = check_program(parse_program(source))
            tracer = _tracer_for(task.options)
            verifier = _verifier_for(program, task.options,
                                     tracer=tracer,
                                     timeout=task.options.timeout)
            result: VerificationResult = verifier.verify()
        return WorkerReply(kind="run", key=task.name,
                           value=wire_run(result),
                           pid=os.getpid(), metrics=metrics)
    except KeyboardInterrupt:
        return WorkerReply(kind="interrupted", key=task.name,
                           value=None, pid=os.getpid(), metrics=metrics)
    except BaseException as exc:  # noqa: BLE001 — see run_subgoal_task
        return WorkerReply(kind="error", key=task.name, value=exc,
                           pid=os.getpid(), metrics=metrics)


def subgoal_cost(subgoal: object) -> float:
    """Scheduling cost proxy: obligations + statements of a subgoal.

    Any monotone proxy works — this one is cheap, deterministic, and
    puts loop-preservation subgoals (many statements, several
    obligations) ahead of trivial entry subgoals.
    """
    statements: Tuple[object, ...] = getattr(subgoal, "statements", ())
    assume = getattr(subgoal, "assume", ())
    check = getattr(subgoal, "check", ())
    return float(len(statements) + len(assume) + len(check))
