"""Abstract syntax of monadic second-order logic on finite strings.

A formula is interpreted over a finite string with positions
``0 .. n-1``:

* **first-order** variables (:attr:`VarKind.FIRST`) denote positions;
* **second-order** variables (:attr:`VarKind.SECOND`) denote sets of
  positions.

Atomic predicates cover membership, set inclusion and equality,
position ordering, successor, and the two endpoint tests.  Everything
else (union/intersection of sets, bounded quantification, ...) is
definable and provided by :class:`repro.mso.build.FormulaBuilder`.

Formula nodes are immutable.  They use *identity* equality: the
compiler memoises on object identity, so sharing subformula objects
(which the store-logic translation does aggressively) makes compilation
cache-friendly.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple


class VarKind(enum.Enum):
    """Whether a variable denotes a position or a set of positions."""

    FIRST = "first"
    SECOND = "second"


_fresh_ids = itertools.count()


@dataclass(frozen=True, eq=False)
class Var:
    """A logic variable.

    Two ``Var`` objects are distinct variables even if they share a
    name; names exist for printing.  Use :meth:`fresh` for gensyms.
    """

    name: str
    kind: VarKind

    @staticmethod
    def first(name: str) -> "Var":
        """A first-order (position) variable."""
        return Var(name, VarKind.FIRST)

    @staticmethod
    def second(name: str) -> "Var":
        """A second-order (position-set) variable."""
        return Var(name, VarKind.SECOND)

    @staticmethod
    def fresh(prefix: str, kind: VarKind) -> "Var":
        """A variable guaranteed distinct from every other."""
        return Var(f"{prefix}#{next(_fresh_ids)}", kind)

    def __repr__(self) -> str:
        sigil = "" if self.kind is VarKind.FIRST else "$"
        return f"{sigil}{self.name}"


@dataclass(frozen=True, eq=False)
class Formula:
    """Base class of all formula nodes."""

    def children(self) -> Tuple["Formula", ...]:
        """Immediate subformulas."""
        return ()

    def size(self) -> int:
        """Number of distinct AST nodes (formulas are DAGs: shared
        subformulas count once) — the paper's formula-size metric."""
        count = 0
        for _ in self.iter_nodes():
            count += 1
        return count

    def free_vars(self) -> frozenset:
        """Variables occurring free in the formula.

        Relies on the library-wide discipline that every quantifier
        binds a fresh variable (the compiler enforces it): the free
        variables are then the atom variables minus the bound ones,
        computable in one linear DAG traversal.
        """
        used: set = set()
        bound: set = set()
        for node in self.iter_nodes():
            if isinstance(node, Atom):
                used.update(node.vars)
            elif isinstance(node, _Quant):
                bound.add(node.var)
        return frozenset(used - bound)

    def iter_nodes(self) -> Iterator["Formula"]:
        """Traversal of all distinct nodes (DAG-aware)."""
        seen: set = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.children())

    def __str__(self) -> str:
        from repro.mso.pretty import pretty
        return pretty(self)


# ----------------------------------------------------------------------
# Constants
# ----------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class _Const(Formula):
    value: bool


#: The valid formula.
TRUE = _Const(True)
#: The unsatisfiable formula.
FALSE = _Const(False)


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class Atom(Formula):
    """Base class of atomic predicates; ``vars`` lists the arguments."""

    @property
    def vars(self) -> Tuple[Var, ...]:
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class Mem(Atom):
    """``pos ∈ pset`` — a position belongs to a set."""

    pos: Var
    pset: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.pos, self.pset)


@dataclass(frozen=True, eq=False)
class Sub(Atom):
    """``left ⊆ right`` over sets."""

    left: Var
    right: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class EqS(Atom):
    """Set equality."""

    left: Var
    right: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class EmptyS(Atom):
    """``pset = ∅``."""

    pset: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.pset,)


@dataclass(frozen=True, eq=False)
class SingletonS(Atom):
    """``|pset| = 1`` — the encoding constraint for first-order tracks."""

    pset: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.pset,)


@dataclass(frozen=True, eq=False)
class EqF(Atom):
    """Position equality."""

    left: Var
    right: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class LessF(Atom):
    """Strict position order ``left < right``."""

    left: Var
    right: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class SuccF(Atom):
    """``right = left + 1``."""

    left: Var
    right: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class FirstF(Atom):
    """``pos = 0``."""

    pos: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.pos,)


@dataclass(frozen=True, eq=False)
class LastF(Atom):
    """``pos = n - 1`` (the final string position)."""

    pos: Var

    @property
    def vars(self) -> Tuple[Var, ...]:
        return (self.pos,)


# ----------------------------------------------------------------------
# Connectives
# ----------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class Not(Formula):
    """Negation."""

    inner: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.inner,)


@dataclass(frozen=True, eq=False)
class And(Formula):
    """Binary conjunction."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Or(Formula):
    """Binary disjunction."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Implies(Formula):
    """Implication."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Iff(Formula):
    """Bi-implication."""

    left: Formula
    right: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class _Quant(Formula):
    """Base class of quantifiers binding a single variable."""

    var: Var
    body: Formula

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)


@dataclass(frozen=True, eq=False)
class Ex1(_Quant):
    """First-order existential: some position satisfies the body."""

    def __post_init__(self) -> None:
        if self.var.kind is not VarKind.FIRST:
            raise ValueError(f"Ex1 requires a first-order variable, "
                             f"got {self.var!r}")


@dataclass(frozen=True, eq=False)
class All1(_Quant):
    """First-order universal."""

    def __post_init__(self) -> None:
        if self.var.kind is not VarKind.FIRST:
            raise ValueError(f"All1 requires a first-order variable, "
                             f"got {self.var!r}")


@dataclass(frozen=True, eq=False)
class Ex2(_Quant):
    """Second-order existential: some set of positions satisfies it."""

    def __post_init__(self) -> None:
        if self.var.kind is not VarKind.SECOND:
            raise ValueError(f"Ex2 requires a second-order variable, "
                             f"got {self.var!r}")


@dataclass(frozen=True, eq=False)
class All2(_Quant):
    """Second-order universal."""

    def __post_init__(self) -> None:
        if self.var.kind is not VarKind.SECOND:
            raise ValueError(f"All2 requires a second-order variable, "
                             f"got {self.var!r}")
