"""Compilation of M2L formulas into symbolic automata.

This is the re-implementation of the Mona engine the paper's decision
procedure runs on (§6): every formula is reduced, bottom-up, to a
minimal deterministic automaton over bit-vector symbols, one track per
free variable.

* atoms map to small hand-written base automata;
* boolean connectives map to products and complements;
* ``ex2`` maps to track projection followed by determinisation;
* ``ex1`` is the standard Mona reduction: conjoin a singleton
  constraint on the variable's track, then project;
* universal quantifiers are the De Morgan duals.

Every intermediate automaton is minimised (Moore refinement over the
shared MTBDDs) unless ``minimize_during=False`` — an ablation switch
used by the benchmark harness.

The compiler records the statistics the paper's evaluation table
reports: the largest automaton (states) and the largest transition
BDD (nodes) encountered during the reduction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional

from repro.bdd.mtbdd import Mtbdd
from repro.automata.symbolic import SymbolicDfa, delta_from_function
from repro.mso import ast
from repro.errors import TranslationError
from repro.obs import trace as obs_trace
from repro.obs.metrics import current_metrics
from repro.robust import faults
from repro.robust.budget import check_states as _budget_check_states
from repro.robust.budget import current_budget
from repro.robust.budget import tick as _budget_tick


@dataclass
class CompilationStats:
    """Running statistics of one compilation (paper §6 metrics).

    Two kinds of field: *counters* (events during the reduction;
    :meth:`merge` sums them) and *high-water marks* (sizes of the
    largest structures encountered; :meth:`merge` takes maxima).  The
    ``bdd_*`` counters and table sizes come from the compiler's MTBDD
    manager via :meth:`capture_manager`.
    """

    #: Largest number of states of any intermediate automaton.
    max_states: int = 0
    #: Largest shared-BDD node count of any intermediate automaton.
    max_nodes: int = 0
    #: Number of binary product constructions performed.
    products: int = 0
    #: Number of track projections (quantifier eliminations).
    projections: int = 0
    #: Number of minimisation passes.
    minimizations: int = 0
    #: Number of formula nodes compiled (cache misses only).
    compiled_nodes: int = 0
    #: Number of formula nodes answered from the compiler's memo table.
    formula_memo_hits: int = 0
    #: MTBDD apply-cache hits/misses (binary leaf-wise combinations).
    bdd_apply_hits: int = 0
    bdd_apply_misses: int = 0
    #: MTBDD map-cache hits/misses (leaf rewrites: renames, signatures).
    bdd_map_hits: int = 0
    bdd_map_misses: int = 0
    #: MTBDD restrict-cache hits/misses (cofactors during projection).
    bdd_restrict_hits: int = 0
    bdd_restrict_misses: int = 0
    #: Decision nodes in the manager's unique table (high-water mark).
    unique_table_size: int = 0
    #: Total MTBDD nodes ever created by the manager (high-water mark).
    peak_nodes: int = 0

    def record(self, dfa: SymbolicDfa) -> SymbolicDfa:
        """Fold one intermediate automaton into the running maxima."""
        if dfa.num_states > self.max_states:
            self.max_states = dfa.num_states
        nodes = dfa.bdd_node_count()
        if nodes > self.max_nodes:
            self.max_nodes = nodes
        return dfa

    def capture_manager(self, mgr: Mtbdd) -> None:
        """Copy the manager's cumulative cache counters into this
        record.  Counters in the manager only grow, so taking maxima
        makes repeated captures of the same manager idempotent."""
        self.bdd_apply_hits = max(self.bdd_apply_hits, mgr.apply_hits)
        self.bdd_apply_misses = max(self.bdd_apply_misses,
                                    mgr.apply_misses)
        self.bdd_map_hits = max(self.bdd_map_hits, mgr.map_hits)
        self.bdd_map_misses = max(self.bdd_map_misses, mgr.map_misses)
        self.bdd_restrict_hits = max(self.bdd_restrict_hits,
                                     mgr.restrict_hits)
        self.bdd_restrict_misses = max(self.bdd_restrict_misses,
                                       mgr.restrict_misses)
        self.unique_table_size = max(self.unique_table_size,
                                     mgr.unique_table_size)
        self.peak_nodes = max(self.peak_nodes, mgr.peak_nodes)

    def merge(self, other: "CompilationStats") -> None:
        """Accumulate another compilation's statistics into this one."""
        self.max_states = max(self.max_states, other.max_states)
        self.max_nodes = max(self.max_nodes, other.max_nodes)
        self.products += other.products
        self.projections += other.projections
        self.minimizations += other.minimizations
        self.compiled_nodes += other.compiled_nodes
        self.formula_memo_hits += other.formula_memo_hits
        self.bdd_apply_hits += other.bdd_apply_hits
        self.bdd_apply_misses += other.bdd_apply_misses
        self.bdd_map_hits += other.bdd_map_hits
        self.bdd_map_misses += other.bdd_map_misses
        self.bdd_restrict_hits += other.bdd_restrict_hits
        self.bdd_restrict_misses += other.bdd_restrict_misses
        self.unique_table_size = max(self.unique_table_size,
                                     other.unique_table_size)
        self.peak_nodes = max(self.peak_nodes, other.peak_nodes)

    def to_dict(self) -> Dict[str, int]:
        """All fields, JSON-ready (schema-stable: field names only)."""
        return asdict(self)


class Compiler:
    """Compiles M2L formulas to minimal symbolic DFAs.

    A compiler owns a track allocation (variable -> bit position) and
    an MTBDD manager; automata produced by the same compiler can be
    combined freely.

    Args:
        mgr: MTBDD manager to use; a fresh one by default.
        minimize_during: minimise after every operation (Mona's
            behaviour).  Disable only for the ablation benchmark.
    """

    def __init__(self, mgr: Optional[Mtbdd] = None,
                 minimize_during: bool = True) -> None:
        self.mgr = mgr if mgr is not None else Mtbdd()
        self.minimize_during = minimize_during
        self.stats = CompilationStats()
        self._tracks: Dict[ast.Var, int] = {}
        self._memo: Dict[int, SymbolicDfa] = {}
        # Keep formulas alive so id()-keyed memo entries stay valid.
        self._memo_keys: Dict[int, ast.Formula] = {}

    # ------------------------------------------------------------------
    # Track allocation
    # ------------------------------------------------------------------

    def track(self, var: ast.Var) -> int:
        """The track (BDD level) assigned to ``var``, allocating it on
        first use.  Allocation order is first-come, which keeps related
        variables adjacent in the BDD order."""
        found = self._tracks.get(var)
        if found is None:
            found = len(self._tracks)
            self._tracks[var] = found
        return found

    def tracks(self) -> Dict[ast.Var, int]:
        """A copy of the current variable-to-track map."""
        return dict(self._tracks)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def compile(self, formula: ast.Formula) -> SymbolicDfa:
        """Compile ``formula`` to a minimal automaton.

        Free first-order variables are constrained to singleton tracks,
        so the resulting language contains exactly the well-encoded
        (string, assignment) pairs satisfying the formula.
        """
        faults.fire("mso.compile")
        current_budget().check_time("mso.compile")
        with obs_trace.span("mso.compile") as sp:
            self._check_no_rebinding(formula)
            result = self._compile(formula)
            for var in sorted(formula.free_vars(), key=lambda v: v.name):
                if var.kind is ast.VarKind.FIRST:
                    result = self._intersect(
                        result, self._aut_singleton(self.track(var)))
            result = self._minimize(result, force=True)
            self.stats.capture_manager(self.mgr)
            if sp:
                sp.annotate(formula_size=formula.size(),
                            states=result.num_states,
                            nodes=result.bdd_node_count(),
                            max_states=self.stats.max_states,
                            max_nodes=self.stats.max_nodes)
            return result

    def is_valid(self, formula: ast.Formula) -> bool:
        """Validity over all strings and well-encoded assignments.

        A formula with free variables is valid when it holds for every
        string and every assignment of its free variables (first-order
        variables ranging over positions).  With free first-order
        variables the empty string admits no assignment, so it is
        ignored; otherwise validity includes the empty string.
        """
        # compile() conjoins the singleton encoding constraints for the
        # free first-order variables, so emptiness of the negation's
        # language over well-encoded words is exactly validity.
        return self.compile(ast.Not(formula)).is_empty()

    # ------------------------------------------------------------------
    # Recursive compilation
    # ------------------------------------------------------------------

    def _compile(self, formula: ast.Formula) -> SymbolicDfa:
        cached = self._memo.get(id(formula))
        if cached is not None:
            self.stats.formula_memo_hits += 1
            return cached
        _budget_tick("mso.compile")
        result = self._compile_uncached(formula)
        result = self._minimize(result)
        self.stats.record(result)
        self._memo[id(formula)] = result
        self._memo_keys[id(formula)] = formula
        self.stats.compiled_nodes += 1
        return result

    def _compile_uncached(self, formula: ast.Formula) -> SymbolicDfa:
        if formula is ast.TRUE:
            return self._aut_const(True)
        if formula is ast.FALSE:
            return self._aut_const(False)
        if isinstance(formula, ast.Atom):
            return self._restrict_fo(self._compile_atom(formula), formula)
        if isinstance(formula, ast.Not):
            return self._compile(formula.inner).complement()
        if isinstance(formula, ast.And):
            return self._intersect(self._compile(formula.left),
                                   self._compile(formula.right))
        if isinstance(formula, ast.Or):
            return self._product(self._compile(formula.left),
                                 self._compile(formula.right),
                                 lambda a, b: a or b)
        if isinstance(formula, ast.Implies):
            return self._product(self._compile(formula.left),
                                 self._compile(formula.right),
                                 lambda a, b: (not a) or b)
        if isinstance(formula, ast.Iff):
            return self._product(self._compile(formula.left),
                                 self._compile(formula.right),
                                 lambda a, b: a == b)
        if isinstance(formula, ast.Ex2):
            return self._project(self._compile(formula.body),
                                 self.track(formula.var))
        if isinstance(formula, ast.All2):
            inner = self._compile(formula.body).complement()
            return self._project(inner, self.track(formula.var)).complement()
        if isinstance(formula, ast.Ex1):
            track = self.track(formula.var)
            inner = self._intersect(self._compile(formula.body),
                                    self._aut_singleton(track))
            return self._project(inner, track)
        if isinstance(formula, ast.All1):
            track = self.track(formula.var)
            negated = self._compile(formula.body).complement()
            witness = self._intersect(negated, self._aut_singleton(track))
            return self._project(witness, track).complement()
        raise TranslationError(f"cannot compile formula node {formula!r}")

    def _restrict_fo(self, dfa: SymbolicDfa,
                     atom: ast.Atom) -> SymbolicDfa:
        """Conjoin the singleton encoding restriction for every
        first-order variable of an atom.

        Doing this eagerly (Mona's variable restriction) is what keeps
        intermediate automata small: atom truth then resolves at the
        variable's unique position, so products of many atoms over the
        same variable minimise to a handful of states instead of
        tracking subset combinations.
        """
        for var in atom.vars:
            if var.kind is ast.VarKind.FIRST:
                dfa = dfa.product(self._aut_singleton(self.track(var)),
                                  lambda a, b: a and b)
        return dfa

    def _compile_atom(self, formula: ast.Atom) -> SymbolicDfa:
        if isinstance(formula, ast.Mem):
            return self._aut_sub(self.track(formula.pos),
                                 self.track(formula.pset))
        if isinstance(formula, ast.Sub):
            return self._aut_sub(self.track(formula.left),
                                 self.track(formula.right))
        if isinstance(formula, (ast.EqS, ast.EqF)):
            return self._aut_eq(self.track(formula.left),
                                self.track(formula.right))
        if isinstance(formula, ast.EmptyS):
            return self._aut_empty(self.track(formula.pset))
        if isinstance(formula, ast.SingletonS):
            return self._aut_singleton(self.track(formula.pset))
        if isinstance(formula, ast.LessF):
            return self._aut_less(self.track(formula.left),
                                  self.track(formula.right))
        if isinstance(formula, ast.SuccF):
            return self._aut_succ(self.track(formula.left),
                                  self.track(formula.right))
        if isinstance(formula, ast.FirstF):
            return self._aut_first(self.track(formula.pos))
        if isinstance(formula, ast.LastF):
            return self._aut_last(self.track(formula.pos))
        raise TranslationError(f"cannot compile atom {formula!r}")

    # ------------------------------------------------------------------
    # Operation wrappers (stats + minimisation discipline)
    # ------------------------------------------------------------------

    def _minimize(self, dfa: SymbolicDfa, force: bool = False) -> SymbolicDfa:
        if not (self.minimize_during or force):
            return dfa.trim()
        self.stats.minimizations += 1
        result = dfa.minimize()
        metrics = current_metrics()
        if metrics.enabled:
            metrics.histogram("mso.minimize.states_removed").observe(
                dfa.num_states - result.num_states)
        return result

    def _product(self, left: SymbolicDfa, right: SymbolicDfa,
                 accept: Callable[[bool, bool], bool]) -> SymbolicDfa:
        self.stats.products += 1
        result = left.product(right, accept)
        self.stats.record(result)
        _budget_check_states("mso.compile", result.num_states)
        metrics = current_metrics()
        if metrics.enabled:
            metrics.histogram("mso.product.states").observe(
                result.num_states)
        return result

    def _intersect(self, left: SymbolicDfa,
                   right: SymbolicDfa) -> SymbolicDfa:
        return self._product(left, right, lambda a, b: a and b)

    def _project(self, dfa: SymbolicDfa, track: int) -> SymbolicDfa:
        self.stats.projections += 1
        result = dfa.project(track).determinize()
        self.stats.record(result)
        _budget_check_states("mso.compile", result.num_states)
        metrics = current_metrics()
        if metrics.enabled:
            metrics.histogram("mso.project.states").observe(
                result.num_states)
        return result

    # ------------------------------------------------------------------
    # Base automata
    # ------------------------------------------------------------------

    def _dfa(self, num_states: int, accepting, deltas) -> SymbolicDfa:
        return SymbolicDfa(mgr=self.mgr, num_states=num_states, initial=0,
                           accepting=frozenset(accepting), delta=deltas)

    def _aut_const(self, value: bool) -> SymbolicDfa:
        loop = self.mgr.leaf(0)
        return self._dfa(1, [0] if value else [], [loop])

    def _aut_sub(self, t_left: int, t_right: int) -> SymbolicDfa:
        """Accepts iff at every position, left-bit implies right-bit."""
        def state0(a: Dict[int, bool]) -> int:
            return 1 if a[t_left] and not a[t_right] else 0

        delta0 = delta_from_function(self.mgr, [t_left, t_right], state0)
        sink = self.mgr.leaf(1)
        return self._dfa(2, [0], [delta0, sink])

    def _aut_eq(self, t_left: int, t_right: int) -> SymbolicDfa:
        """Accepts iff the two tracks agree at every position."""
        def state0(a: Dict[int, bool]) -> int:
            return 0 if a[t_left] == a[t_right] else 1

        delta0 = delta_from_function(self.mgr, [t_left, t_right], state0)
        sink = self.mgr.leaf(1)
        return self._dfa(2, [0], [delta0, sink])

    def _aut_empty(self, track: int) -> SymbolicDfa:
        """Accepts iff the track has no set bit."""
        delta0 = delta_from_function(self.mgr, [track],
                                     lambda a: 1 if a[track] else 0)
        sink = self.mgr.leaf(1)
        return self._dfa(2, [0], [delta0, sink])

    def _aut_singleton(self, track: int) -> SymbolicDfa:
        """Accepts iff the track has exactly one set bit."""
        delta0 = delta_from_function(self.mgr, [track],
                                     lambda a: 1 if a[track] else 0)
        delta1 = delta_from_function(self.mgr, [track],
                                     lambda a: 2 if a[track] else 1)
        sink = self.mgr.leaf(2)
        return self._dfa(3, [1], [delta0, delta1, sink])

    def _aut_less(self, t_left: int, t_right: int) -> SymbolicDfa:
        """Accepts singleton tracks with the left bit strictly earlier."""
        def state0(a: Dict[int, bool]) -> int:
            if a[t_left] and a[t_right]:
                return 3
            if a[t_left]:
                return 1
            if a[t_right]:
                return 3
            return 0

        def state1(a: Dict[int, bool]) -> int:
            if a[t_left]:
                return 3
            return 2 if a[t_right] else 1

        def state2(a: Dict[int, bool]) -> int:
            return 3 if (a[t_left] or a[t_right]) else 2

        tracks = [t_left, t_right]
        return self._dfa(4, [2], [
            delta_from_function(self.mgr, tracks, state0),
            delta_from_function(self.mgr, tracks, state1),
            delta_from_function(self.mgr, tracks, state2),
            self.mgr.leaf(3)])

    def _aut_succ(self, t_left: int, t_right: int) -> SymbolicDfa:
        """Accepts singleton tracks with right at left's next position."""
        def state0(a: Dict[int, bool]) -> int:
            if a[t_left] and not a[t_right]:
                return 1
            if a[t_left] or a[t_right]:
                return 3
            return 0

        def state1(a: Dict[int, bool]) -> int:
            return 2 if (a[t_right] and not a[t_left]) else 3

        def state2(a: Dict[int, bool]) -> int:
            return 3 if (a[t_left] or a[t_right]) else 2

        tracks = [t_left, t_right]
        return self._dfa(4, [2], [
            delta_from_function(self.mgr, tracks, state0),
            delta_from_function(self.mgr, tracks, state1),
            delta_from_function(self.mgr, tracks, state2),
            self.mgr.leaf(3)])

    def _aut_first(self, track: int) -> SymbolicDfa:
        """Accepts iff the (singleton) track's bit sits at position 0."""
        delta0 = delta_from_function(self.mgr, [track],
                                     lambda a: 1 if a[track] else 2)
        delta1 = delta_from_function(self.mgr, [track],
                                     lambda a: 2 if a[track] else 1)
        sink = self.mgr.leaf(2)
        return self._dfa(3, [1], [delta0, delta1, sink])

    def _aut_last(self, track: int) -> SymbolicDfa:
        """Accepts iff the track's single bit sits at the final position."""
        delta0 = delta_from_function(self.mgr, [track],
                                     lambda a: 1 if a[track] else 0)
        sink = self.mgr.leaf(2)
        return self._dfa(3, [1], [delta0, sink, sink])

    # ------------------------------------------------------------------
    # Sanity checks
    # ------------------------------------------------------------------

    def _check_no_rebinding(self, formula: ast.Formula) -> None:
        """Reject formulas where one Var is bound by two different
        quantifier nodes — each binder must own its track.  Linear in
        the number of distinct nodes (formulas are DAGs)."""
        binder_of: Dict[ast.Var, ast.Formula] = {}
        for node in formula.iter_nodes():
            if isinstance(node, ast._Quant):
                previous = binder_of.get(node.var)
                if previous is not None and previous is not node:
                    raise TranslationError(
                        f"variable {node.var!r} is bound by two "
                        f"quantifiers; use fresh Var objects per binder")
                binder_of[node.var] = node
