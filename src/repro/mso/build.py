"""Convenience constructors for M2L formulas.

The translation from the store logic produces large conjunctions and
quantifier blocks; this module keeps that code readable.  All methods
are static — the class is a namespace.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.mso.ast import (All1, All2, And, EmptyS, EqF, EqS, Ex1, Ex2,
                           FALSE, FirstF, Formula, Iff, Implies, LastF,
                           LessF, Mem, Not, Or, SingletonS, Sub, SuccF,
                           TRUE, Var)


class FormulaBuilder:
    """Smart constructors with light simplification.

    The constant-folding here is deliberately shallow (only TRUE/FALSE
    absorption): it keeps generated formulas small without obscuring
    the correspondence to the paper's definitions.
    """

    # -- connectives ---------------------------------------------------

    @staticmethod
    def and_(left: Formula, right: Formula) -> Formula:
        """Conjunction with unit/zero folding."""
        if left is TRUE:
            return right
        if right is TRUE:
            return left
        if left is FALSE or right is FALSE:
            return FALSE
        return And(left, right)

    @staticmethod
    def or_(left: Formula, right: Formula) -> Formula:
        """Disjunction with unit/zero folding."""
        if left is FALSE:
            return right
        if right is FALSE:
            return left
        if left is TRUE or right is TRUE:
            return TRUE
        return Or(left, right)

    @staticmethod
    def not_(inner: Formula) -> Formula:
        """Negation with constant folding and double-negation removal."""
        if inner is TRUE:
            return FALSE
        if inner is FALSE:
            return TRUE
        if isinstance(inner, Not):
            return inner.inner
        return Not(inner)

    @staticmethod
    def implies(left: Formula, right: Formula) -> Formula:
        """Implication with constant folding."""
        if left is TRUE:
            return right
        if left is FALSE or right is TRUE:
            return TRUE
        if right is FALSE:
            return FormulaBuilder.not_(left)
        return Implies(left, right)

    @staticmethod
    def iff(left: Formula, right: Formula) -> Formula:
        """Bi-implication with constant folding."""
        if left is TRUE:
            return right
        if right is TRUE:
            return left
        if left is FALSE:
            return FormulaBuilder.not_(right)
        if right is FALSE:
            return FormulaBuilder.not_(left)
        return Iff(left, right)

    @staticmethod
    def conj(parts: Iterable[Formula]) -> Formula:
        """Right-nested conjunction of arbitrarily many formulas."""
        result = TRUE
        for part in parts:
            result = FormulaBuilder.and_(result, part)
        return result

    @staticmethod
    def disj(parts: Iterable[Formula]) -> Formula:
        """Right-nested disjunction of arbitrarily many formulas."""
        result = FALSE
        for part in parts:
            result = FormulaBuilder.or_(result, part)
        return result

    # -- quantifiers ---------------------------------------------------

    @staticmethod
    def ex1(variables: Sequence[Var], body: Formula) -> Formula:
        """First-order existential block."""
        for var in reversed(variables):
            body = Ex1(var, body)
        return body

    @staticmethod
    def all1(variables: Sequence[Var], body: Formula) -> Formula:
        """First-order universal block."""
        for var in reversed(variables):
            body = All1(var, body)
        return body

    @staticmethod
    def ex2(variables: Sequence[Var], body: Formula) -> Formula:
        """Second-order existential block."""
        for var in reversed(variables):
            body = Ex2(var, body)
        return body

    @staticmethod
    def all2(variables: Sequence[Var], body: Formula) -> Formula:
        """Second-order universal block."""
        for var in reversed(variables):
            body = All2(var, body)
        return body

    # -- atoms ---------------------------------------------------------

    @staticmethod
    def mem(pos: Var, pset: Var) -> Formula:
        """``pos ∈ pset``."""
        return Mem(pos, pset)

    @staticmethod
    def sub(left: Var, right: Var) -> Formula:
        """``left ⊆ right``."""
        return Sub(left, right)

    @staticmethod
    def eq_set(left: Var, right: Var) -> Formula:
        """Set equality."""
        return EqS(left, right)

    @staticmethod
    def eq_pos(left: Var, right: Var) -> Formula:
        """Position equality."""
        return EqF(left, right)

    @staticmethod
    def less(left: Var, right: Var) -> Formula:
        """``left < right``."""
        return LessF(left, right)

    @staticmethod
    def leq(left: Var, right: Var) -> Formula:
        """``left <= right``."""
        return FormulaBuilder.or_(LessF(left, right), EqF(left, right))

    @staticmethod
    def succ(left: Var, right: Var) -> Formula:
        """``right = left + 1``."""
        return SuccF(left, right)

    @staticmethod
    def first(pos: Var) -> Formula:
        """``pos = 0``."""
        return FirstF(pos)

    @staticmethod
    def last(pos: Var) -> Formula:
        """``pos`` is the final position."""
        return LastF(pos)

    @staticmethod
    def empty(pset: Var) -> Formula:
        """``pset = ∅``."""
        return EmptyS(pset)

    @staticmethod
    def singleton(pset: Var) -> Formula:
        """``|pset| = 1``."""
        return SingletonS(pset)
