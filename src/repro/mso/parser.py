"""A Mona-like concrete syntax for M2L-Str formulas.

The paper's pipeline generates Fido/Mona source; this module provides
the analogous human-writable syntax for our M2L layer, so the logic
engine is usable standalone::

    ex1 p: p in X & ~(p = 0)
    all2 S: (p in S & (all1 a, b: a in S & b = a + 1 => b in S))
            => q in S

Grammar (loosest first): ``<=>``, ``=>`` (right associative), ``|``,
``&``, ``~``; quantifiers ``ex1/all1/ex2/all2 v1, v2: body`` extend
maximally to the right.  Atoms::

    t in X        membership           X sub Y      set inclusion
    X = Y         set equality         empty(X)     emptiness
    singleton(X)  one element          t1 = t2      position equality
    t1 < t2       order                t1 <= t2     reflexive order
    t2 = t1 + 1   successor            t = 0        first position
    t = $         last position        true, false

First-order variables are lower-case identifiers, second-order ones
upper-case (Mona's convention).  Variables are scoped: a quantifier
introduces a fresh :class:`Var`, and free names are created on first
use (retrievable from :meth:`M2LParser.free_names`).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.mso import ast
from repro.mso.build import FormulaBuilder as F

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=>|=>|<=|[()=:,<&|~+$]|0|1)
""", re.VERBOSE)

_KEYWORDS = frozenset(["ex1", "all1", "ex2", "all2", "in", "sub",
                       "empty", "singleton", "true", "false"])


def parse_m2l(text: str,
              free: Optional[Dict[str, ast.Var]] = None
              ) -> Tuple[ast.Formula, Dict[str, ast.Var]]:
    """Parse a formula; returns it with the map of free variables.

    ``free`` pre-seeds the free-variable environment (pass the same
    map to several calls to share variables across formulas).
    """
    parser = _M2LParser(text, dict(free or {}))
    formula = parser.formula()
    parser.expect_end()
    return formula, parser.free


class _M2LParser:
    def __init__(self, text: str, free: Dict[str, ast.Var]) -> None:
        self.text = text
        self.free = free
        self.tokens: List[str] = []
        index = 0
        while index < len(text):
            match = _TOKEN_RE.match(text, index)
            if match is None:
                raise ParseError(
                    f"bad character {text[index]!r} in M2L formula",
                    1, index + 1)
            if match.lastgroup != "ws":
                self.tokens.append(match.group())
            index = match.end()
        self.position = 0
        self.scopes: List[Dict[str, ast.Var]] = []

    # -- token plumbing -------------------------------------------------

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else ""

    def next(self) -> str:
        token = self.peek()
        if token:
            self.position += 1
        return token

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise ParseError(
                f"expected {token!r}, found {found!r} in "
                f"{self.text!r}")

    def expect_end(self) -> None:
        if self.position != len(self.tokens):
            raise ParseError(
                f"trailing tokens {self.tokens[self.position:]} in "
                f"{self.text!r}")

    # -- variables ------------------------------------------------------

    def lookup(self, name: str, kind: ast.VarKind) -> ast.Var:
        for scope in reversed(self.scopes):
            if name in scope:
                var = scope[name]
                self._check_kind(name, var, kind)
                return var
        if name in self.free:
            var = self.free[name]
            self._check_kind(name, var, kind)
            return var
        var = ast.Var(name, kind)
        self.free[name] = var
        return var

    @staticmethod
    def _check_kind(name: str, var: ast.Var, kind: ast.VarKind) -> None:
        if var.kind is not kind:
            raise ParseError(
                f"variable {name} used both first- and second-order")

    @staticmethod
    def _kind_of(name: str) -> ast.VarKind:
        return ast.VarKind.SECOND if name[0].isupper() \
            else ast.VarKind.FIRST

    # -- grammar ----------------------------------------------------------

    def formula(self) -> ast.Formula:
        left = self._implies()
        while self.peek() == "<=>":
            self.next()
            left = F.iff(left, self._implies())
        return left

    def _implies(self) -> ast.Formula:
        left = self._or()
        if self.peek() == "=>":
            self.next()
            return F.implies(left, self._implies())
        return left

    def _or(self) -> ast.Formula:
        left = self._and()
        while self.peek() == "|":
            self.next()
            left = F.or_(left, self._and())
        return left

    def _and(self) -> ast.Formula:
        left = self._unary()
        while self.peek() == "&":
            self.next()
            left = F.and_(left, self._unary())
        return left

    def _unary(self) -> ast.Formula:
        token = self.peek()
        if token == "~":
            self.next()
            return F.not_(self._unary())
        if token in ("ex1", "all1", "ex2", "all2"):
            return self._quantifier(token)
        return self._primary()

    def _quantifier(self, word: str) -> ast.Formula:
        self.next()
        kind = ast.VarKind.FIRST if word.endswith("1") \
            else ast.VarKind.SECOND
        names = [self._binder_name(kind)]
        while self.peek() == ",":
            self.next()
            names.append(self._binder_name(kind))
        self.expect(":")
        scope = {}
        variables = []
        for name in names:
            var = ast.Var.fresh(name, kind)
            scope[name] = var
            variables.append(var)
        self.scopes.append(scope)
        body = self.formula()
        self.scopes.pop()
        builder = {"ex1": F.ex1, "all1": F.all1,
                   "ex2": F.ex2, "all2": F.all2}[word]
        return builder(variables, body)

    def _binder_name(self, kind: ast.VarKind) -> str:
        name = self.next()
        if not name or not (name[0].isalpha() or name[0] == "_") \
                or name in _KEYWORDS:
            raise ParseError(f"expected a variable name, found {name!r}")
        if self._kind_of(name) is not kind:
            case = "upper" if kind is ast.VarKind.SECOND else "lower"
            raise ParseError(
                f"{name}: {case}-case names are required here "
                f"(Mona convention: sets upper-case, positions "
                f"lower-case)")
        return name

    def _primary(self) -> ast.Formula:
        token = self.peek()
        if token == "(":
            self.next()
            inner = self.formula()
            self.expect(")")
            return inner
        if token == "true":
            self.next()
            return ast.TRUE
        if token == "false":
            self.next()
            return ast.FALSE
        if token in ("empty", "singleton"):
            self.next()
            self.expect("(")
            var = self.lookup(self._binder_name(ast.VarKind.SECOND),
                              ast.VarKind.SECOND)
            self.expect(")")
            return F.empty(var) if token == "empty" else F.singleton(var)
        return self._relation()

    def _relation(self) -> ast.Formula:
        name = self.next()
        if not name or not (name[0].isalpha() or name[0] == "_"):
            raise ParseError(f"expected a term, found {name!r}")
        kind = self._kind_of(name)
        operator = self.next()
        if operator == "in":
            pos = self.lookup(name, ast.VarKind.FIRST)
            pset = self.lookup(self.next(), ast.VarKind.SECOND)
            return F.mem(pos, pset)
        if operator == "sub":
            left = self.lookup(name, ast.VarKind.SECOND)
            right = self.lookup(self.next(), ast.VarKind.SECOND)
            return F.sub(left, right)
        if operator == "<" or operator == "<=":
            left = self.lookup(name, ast.VarKind.FIRST)
            right = self.lookup(self.next(), ast.VarKind.FIRST)
            return F.less(left, right) if operator == "<" \
                else F.leq(left, right)
        if operator == "=":
            return self._equality(name, kind)
        raise ParseError(
            f"expected a relation after {name}, found {operator!r}")

    def _equality(self, name: str, kind: ast.VarKind) -> ast.Formula:
        token = self.next()
        if token == "0":
            return F.first(self.lookup(name, ast.VarKind.FIRST))
        if token == "$":
            return F.last(self.lookup(name, ast.VarKind.FIRST))
        if not token or not (token[0].isalpha() or token[0] == "_"):
            raise ParseError(f"expected a term, found {token!r}")
        if self.peek() == "+":
            self.next()
            self.expect("1")
            left = self.lookup(token, ast.VarKind.FIRST)
            right = self.lookup(name, ast.VarKind.FIRST)
            return F.succ(left, right)  # name = token + 1
        if kind is ast.VarKind.SECOND:
            return F.eq_set(self.lookup(name, kind),
                            self.lookup(token, ast.VarKind.SECOND))
        return F.eq_pos(self.lookup(name, kind),
                        self.lookup(token, ast.VarKind.FIRST))
