"""Pretty-printing of M2L formulas.

Produces a Mona-like concrete syntax.  Used for debugging, error
messages, and the formula dumps the benchmark harness can emit.
"""

from __future__ import annotations

from repro.mso import ast

#: Precedence levels, loosest binding first.
_PREC_QUANT = 0
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_ATOM = 6


def pretty(formula: ast.Formula) -> str:
    """Render a formula as a Mona-like string."""
    return _render(formula, 0)


def _parens(text: str, prec: int, context: int) -> str:
    return f"({text})" if prec < context else text


def _render(formula: ast.Formula, context: int) -> str:
    if formula is ast.TRUE:
        return "true"
    if formula is ast.FALSE:
        return "false"
    if isinstance(formula, ast.Mem):
        return f"{formula.pos!r} in {formula.pset!r}"
    if isinstance(formula, ast.Sub):
        return f"{formula.left!r} sub {formula.right!r}"
    if isinstance(formula, ast.EqS):
        return f"{formula.left!r} = {formula.right!r}"
    if isinstance(formula, ast.EmptyS):
        return f"empty({formula.pset!r})"
    if isinstance(formula, ast.SingletonS):
        return f"singleton({formula.pset!r})"
    if isinstance(formula, ast.EqF):
        return f"{formula.left!r} = {formula.right!r}"
    if isinstance(formula, ast.LessF):
        return f"{formula.left!r} < {formula.right!r}"
    if isinstance(formula, ast.SuccF):
        return f"{formula.right!r} = {formula.left!r} + 1"
    if isinstance(formula, ast.FirstF):
        return f"{formula.pos!r} = 0"
    if isinstance(formula, ast.LastF):
        return f"{formula.pos!r} = $"
    if isinstance(formula, ast.Not):
        inner = _render(formula.inner, _PREC_NOT)
        return _parens(f"~{inner}", _PREC_NOT, context)
    if isinstance(formula, ast.And):
        text = (f"{_render(formula.left, _PREC_AND)}"
                f" & {_render(formula.right, _PREC_AND)}")
        return _parens(text, _PREC_AND, context + 1)
    if isinstance(formula, ast.Or):
        text = (f"{_render(formula.left, _PREC_OR)}"
                f" | {_render(formula.right, _PREC_OR)}")
        return _parens(text, _PREC_OR, context + 1)
    if isinstance(formula, ast.Implies):
        text = (f"{_render(formula.left, _PREC_IMPLIES + 1)}"
                f" => {_render(formula.right, _PREC_IMPLIES)}")
        return _parens(text, _PREC_IMPLIES, context + 1)
    if isinstance(formula, ast.Iff):
        text = (f"{_render(formula.left, _PREC_IFF + 1)}"
                f" <=> {_render(formula.right, _PREC_IFF + 1)}")
        return _parens(text, _PREC_IFF, context + 1)
    if isinstance(formula, (ast.Ex1, ast.Ex2)):
        word = "ex1" if isinstance(formula, ast.Ex1) else "ex2"
        text = f"{word} {formula.var!r}: {_render(formula.body, _PREC_QUANT)}"
        return _parens(text, _PREC_QUANT, context)
    if isinstance(formula, (ast.All1, ast.All2)):
        word = "all1" if isinstance(formula, ast.All1) else "all2"
        text = f"{word} {formula.var!r}: {_render(formula.body, _PREC_QUANT)}"
        return _parens(text, _PREC_QUANT, context)
    raise TypeError(f"unknown formula node {formula!r}")
