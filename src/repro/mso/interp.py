"""Brute-force finite-model evaluation of M2L formulas.

This module implements the *definition* of M2L-Str satisfaction
directly: given a string length ``n`` and an assignment of the free
variables (positions for first-order, frozensets of positions for
second-order), evaluate the formula by structural recursion, with
quantifiers enumerating all positions / all ``2^n`` subsets.

It is exponential and only suitable for tiny models — which is exactly
what makes it a trustworthy oracle for the automaton compiler in the
property-based tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Union

from repro.mso import ast

Value = Union[int, FrozenSet[int]]


def evaluate(formula: ast.Formula, n: int, env: Dict[ast.Var, Value]) -> bool:
    """Satisfaction of ``formula`` on a string of length ``n``.

    Args:
        formula: the formula to evaluate.
        n: the model size (number of string positions).
        env: values for at least the free variables.

    Raises:
        KeyError: if a free variable has no value in ``env``.
    """
    if formula is ast.TRUE:
        return True
    if formula is ast.FALSE:
        return False
    if isinstance(formula, ast.Mem):
        return env[formula.pos] in env[formula.pset]  # type: ignore[operator]
    if isinstance(formula, ast.Sub):
        return (env[formula.left]
                <= env[formula.right])  # type: ignore[operator]
    if isinstance(formula, ast.EqS) or isinstance(formula, ast.EqF):
        return env[formula.left] == env[formula.right]
    if isinstance(formula, ast.EmptyS):
        return not env[formula.pset]
    if isinstance(formula, ast.SingletonS):
        return len(env[formula.pset]) == 1  # type: ignore[arg-type]
    if isinstance(formula, ast.LessF):
        return env[formula.left] < env[formula.right]  # type: ignore[operator]
    if isinstance(formula, ast.SuccF):
        return (env[formula.right]
                == env[formula.left] + 1)  # type: ignore[operator]
    if isinstance(formula, ast.FirstF):
        return env[formula.pos] == 0
    if isinstance(formula, ast.LastF):
        return env[formula.pos] == n - 1
    if isinstance(formula, ast.Not):
        return not evaluate(formula.inner, n, env)
    if isinstance(formula, ast.And):
        return evaluate(formula.left, n, env) and \
            evaluate(formula.right, n, env)
    if isinstance(formula, ast.Or):
        return evaluate(formula.left, n, env) or \
            evaluate(formula.right, n, env)
    if isinstance(formula, ast.Implies):
        return (not evaluate(formula.left, n, env)) or \
            evaluate(formula.right, n, env)
    if isinstance(formula, ast.Iff):
        return evaluate(formula.left, n, env) == \
            evaluate(formula.right, n, env)
    if isinstance(formula, ast.Ex1):
        return any(evaluate(formula.body, n, {**env, formula.var: pos})
                   for pos in range(n))
    if isinstance(formula, ast.All1):
        return all(evaluate(formula.body, n, {**env, formula.var: pos})
                   for pos in range(n))
    if isinstance(formula, ast.Ex2):
        return any(
            evaluate(formula.body, n, {**env, formula.var: subset})
            for subset in _subsets(n))
    if isinstance(formula, ast.All2):
        return all(
            evaluate(formula.body, n, {**env, formula.var: subset})
            for subset in _subsets(n))
    raise TypeError(f"unknown formula node {formula!r}")


def _subsets(n: int):
    positions = range(n)
    for size in range(n + 1):
        for combo in itertools.combinations(positions, size):
            yield frozenset(combo)


def word_for(n: int, env: Dict[ast.Var, Value],
             tracks: Dict[ast.Var, int]) -> list:
    """Encode a model+assignment as a word of track assignments.

    First-order values become singleton bits; the resulting word can be
    fed to :meth:`SymbolicDfa.accepts` for differential testing.
    """
    word = []
    for pos in range(n):
        symbol: Dict[int, bool] = {}
        for var, track in tracks.items():
            value = env.get(var)
            if value is None:
                symbol[track] = False
            elif var.kind is ast.VarKind.FIRST:
                symbol[track] = (value == pos)
            else:
                symbol[track] = pos in value  # type: ignore[operator]
        word.append(symbol)
    return word
