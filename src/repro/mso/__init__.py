"""Monadic second-order logic on finite strings (M2L-Str).

The decidable logic at the heart of the paper (§6): formulas denote
regular sets of strings, and the compiler in :mod:`repro.mso.compile`
reduces a formula to a minimal deterministic automaton with
MTBDD-encoded transitions — our re-implementation of the Mona engine.

A *model* is a finite string: positions ``0 .. n-1``.  First-order
variables denote positions, second-order variables denote sets of
positions.  Free variables are realised as automaton *tracks*: a model
plus an assignment is a word of bit vectors, one bit per variable per
position.

The public surface:

* :mod:`repro.mso.ast` — formula and variable representations;
* :mod:`repro.mso.build` — a convenience builder with the usual
  derived connectives and predicates;
* :mod:`repro.mso.compile` — formula → minimal :class:`SymbolicDfa`,
  with the statistics hooks behind the paper's evaluation table
  (formula size, largest automaton, BDD nodes);
* :mod:`repro.mso.interp` — brute-force finite-model evaluation (the
  test oracle);
* :mod:`repro.mso.pretty` — formula pretty-printer.
"""

from repro.mso.ast import (All1, All2, And, Ex1, Ex2, FALSE, Formula, Iff,
                           Implies, Not, Or, TRUE, Var, VarKind)
from repro.mso.build import FormulaBuilder
from repro.mso.compile import CompilationStats, Compiler
from repro.mso.parser import parse_m2l

__all__ = [
    "All1", "All2", "And", "CompilationStats", "Compiler", "Ex1", "Ex2",
    "FALSE", "Formula", "FormulaBuilder", "Iff", "Implies", "Not", "Or",
    "TRUE", "Var", "VarKind", "parse_m2l",
]
