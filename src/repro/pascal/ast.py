"""Abstract syntax of the Pascal subset.

Assertions (preconditions, postconditions, cut-point assertions and
loop invariants) are stored as :class:`Annotation` values holding the
raw store-logic text; the verification engine parses them with
:mod:`repro.storelogic.parser` once the program's schema is known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Annotation:
    """A ``{...}`` assertion with its source location."""

    text: str
    line: int
    column: int


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class EnumDecl:
    """``Color = (red, blue)``."""

    name: str
    constants: Tuple[str, ...]


@dataclass(frozen=True)
class PointerDecl:
    """``List = ^Item``."""

    name: str
    target: str


@dataclass(frozen=True)
class FieldDecl:
    """``next: List`` inside a variant arm."""

    name: str
    type_name: str


@dataclass(frozen=True)
class VariantArm:
    """``red, blue: (next: List)`` — several tags sharing fields."""

    tags: Tuple[str, ...]
    fields: Tuple[FieldDecl, ...]


@dataclass(frozen=True)
class RecordDecl:
    """``Item = record case tag: Color of ... end``."""

    name: str
    tag_field: str
    tag_type: str
    arms: Tuple[VariantArm, ...]


@dataclass(frozen=True)
class ProcDecl:
    """``procedure name; begin ... end;`` — parameterless, operating
    on the globals (the paper: "values are communicated through the
    global variables").  Calls are inlined by the type checker, so
    procedures must not be (mutually) recursive."""

    name: str
    body: Tuple[object, ...]
    line: int = 0


@dataclass(frozen=True)
class ProcCall:
    """A call statement: the bare procedure name."""

    name: str
    line: int = 0

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VarDecl:
    """One ``var`` section with its classification annotation.

    ``classification`` is "data" or "pointer" (taken from the ``{data}``
    / ``{pointer}`` annotation), or None when unannotated.
    """

    names: Tuple[str, ...]
    type_name: str
    classification: Optional[str]
    line: int = 0


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Path:
    """A variable with pointer traversals: ``x``, ``p^.next``,
    ``p^.next^.next``, or a tag access ``x^.tag``."""

    var: str
    fields: Tuple[str, ...] = ()

    def __str__(self) -> str:
        return self.var + "".join(f"^.{name}" for name in self.fields)


@dataclass(frozen=True)
class NilExpr:
    """The ``nil`` constant."""

    def __str__(self) -> str:
        return "nil"


#: A pointer-valued expression is a Path or NilExpr.
PtrExpr = object


@dataclass(frozen=True)
class Compare:
    """``left = right`` or ``left <> right``.

    Covers both pointer comparison and the variant test (``x^.tag =
    red``); the type checker tells them apart.
    """

    left: PtrExpr
    right: PtrExpr
    negated: bool

    def __str__(self) -> str:
        op = "<>" if self.negated else "="
        return f"{self.left} {op} {self.right}"


@dataclass(frozen=True)
class BoolOp:
    """Short-circuit ``and`` / ``or``."""

    op: str  # "and" | "or"
    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolNot:
    """``not`` of a boolean expression."""

    inner: object

    def __str__(self) -> str:
        return f"not {self.inner}"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Assign:
    """``lhs := rhs``."""

    lhs: Path
    rhs: PtrExpr
    line: int = 0

    def __str__(self) -> str:
        return f"{self.lhs} := {self.rhs}"


@dataclass(frozen=True)
class New:
    """``new(lhs, variant)`` — allocate a record of the given variant."""

    lhs: Path
    variant: str
    line: int = 0

    def __str__(self) -> str:
        return f"new({self.lhs}, {self.variant})"


@dataclass(frozen=True)
class Dispose:
    """``dispose(lhs, variant)`` — deallocate; the variant must match."""

    lhs: Path
    variant: str
    line: int = 0

    def __str__(self) -> str:
        return f"dispose({self.lhs}, {self.variant})"


@dataclass(frozen=True)
class If:
    """Conditional with optional else branch."""

    cond: object
    then_body: Tuple[object, ...]
    else_body: Tuple[object, ...]
    line: int = 0

    def __str__(self) -> str:
        text = f"if {self.cond} then ..."
        return text + (" else ..." if self.else_body else "")


@dataclass(frozen=True)
class While:
    """Loop with an optional invariant annotation after ``do``.

    A missing invariant defaults to the well-formedness predicate,
    exactly as the paper's system does (§5).
    """

    cond: object
    invariant: Optional[Annotation]
    body: Tuple[object, ...]
    line: int = 0

    def __str__(self) -> str:
        return f"while {self.cond} do ..."


@dataclass(frozen=True)
class AssertStmt:
    """A cut-point assertion appearing between statements."""

    annotation: Annotation
    line: int = 0

    def __str__(self) -> str:
        return "{" + self.annotation.text + "}"


#: A statement is Assign | New | Dispose | If | While | AssertStmt.
Statement = object


# ----------------------------------------------------------------------
# Program
# ----------------------------------------------------------------------

@dataclass
class Program:
    """A parsed program.

    ``pre`` and ``post`` are the leading/trailing assertions of the
    main block (None means "well-formedness only").  ``body`` is the
    flattened statement list of the main block.
    """

    name: str
    enums: List[EnumDecl] = field(default_factory=list)
    pointers: List[PointerDecl] = field(default_factory=list)
    records: List[RecordDecl] = field(default_factory=list)
    var_decls: List[VarDecl] = field(default_factory=list)
    procedures: List[ProcDecl] = field(default_factory=list)
    pre: Optional[Annotation] = None
    post: Optional[Annotation] = None
    body: List[Statement] = field(default_factory=list)
