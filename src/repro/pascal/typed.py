"""Typed intermediate representation of checked programs.

The type checker (:mod:`repro.pascal.types`) lowers the parsed AST
into these nodes: paths are resolved against the schema, comparisons
are split into pointer comparisons and variant tests, and assignment
targets are split into variable and field targets.  Both the concrete
interpreter and the symbolic transduction engine run on this IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.pascal.ast import Annotation
from repro.stores.schema import Schema


@dataclass(frozen=True)
class TPath:
    """A resolved pointer path.

    ``steps`` holds one (field name, record type of the field's target)
    pair per traversal; ``var_type`` is the record type the variable
    points to.
    """

    var: str
    var_type: str
    steps: Tuple[Tuple[str, str], ...] = ()

    @property
    def final_type(self) -> str:
        """The record type of the cell the path denotes."""
        return self.steps[-1][1] if self.steps else self.var_type

    def __str__(self) -> str:
        return self.var + "".join(f"^.{name}" for name, _ in self.steps)


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TPtrCompare:
    """Pointer (in)equality; None stands for ``nil``."""

    left: Optional[TPath]
    right: Optional[TPath]
    negated: bool

    def __str__(self) -> str:
        op = "<>" if self.negated else "="
        return f"{self.left or 'nil'} {op} {self.right or 'nil'}"


@dataclass(frozen=True)
class TVariantTest:
    """``cell^.tag = variant`` (or ``<>``)."""

    cell: TPath
    type_name: str
    variant: str
    negated: bool

    def __str__(self) -> str:
        op = "<>" if self.negated else "="
        return f"{self.cell}^.tag {op} {self.variant}"


@dataclass(frozen=True)
class TAnd:
    """Short-circuit conjunction."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class TOr:
    """Short-circuit disjunction."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class TNot:
    """Negation."""

    inner: object

    def __str__(self) -> str:
        return f"not {self.inner}"


#: A typed guard expression.
TGuard = Union[TPtrCompare, TVariantTest, TAnd, TOr, TNot]


# ----------------------------------------------------------------------
# Assignment targets
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VarLhs:
    """Assignment to a program variable."""

    name: str
    type_name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FieldLhs:
    """Assignment to a pointer field of the cell ``cell`` denotes."""

    cell: TPath
    field: str
    target_type: str

    def __str__(self) -> str:
        return f"{self.cell}^.{self.field}"


TLhs = Union[VarLhs, FieldLhs]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TAssign:
    """``lhs := rhs`` (rhs None means ``nil``)."""

    lhs: TLhs
    rhs: Optional[TPath]
    line: int = 0

    def __str__(self) -> str:
        return f"{self.lhs} := {self.rhs or 'nil'}"


@dataclass(frozen=True)
class TNew:
    """``new(lhs, variant)`` for a record of ``type_name``."""

    lhs: TLhs
    type_name: str
    variant: str
    line: int = 0

    def __str__(self) -> str:
        return f"new({self.lhs}, {self.variant})"


@dataclass(frozen=True)
class TDispose:
    """``dispose(path, variant)``."""

    path: TPath
    type_name: str
    variant: str
    line: int = 0

    def __str__(self) -> str:
        return f"dispose({self.path}, {self.variant})"


@dataclass(frozen=True)
class TIf:
    """Typed conditional."""

    cond: TGuard
    then_body: Tuple[object, ...]
    else_body: Tuple[object, ...]
    line: int = 0

    def __str__(self) -> str:
        return f"if {self.cond} then ..."


@dataclass(frozen=True)
class TWhile:
    """Typed loop; invariant None means well-formedness only."""

    cond: TGuard
    invariant: Optional[Annotation]
    body: Tuple[object, ...]
    line: int = 0

    def __str__(self) -> str:
        return f"while {self.cond} do ..."


@dataclass(frozen=True)
class TAssertStmt:
    """Typed cut-point assertion (still raw store-logic text)."""

    annotation: Annotation
    line: int = 0

    def __str__(self) -> str:
        return "{" + self.annotation.text + "}"


TStatement = Union[TAssign, TNew, TDispose, TIf, TWhile, TAssertStmt]


@dataclass
class TypedProgram:
    """A fully checked program, ready for interpretation/verification."""

    name: str
    schema: Schema
    pre: Optional[Annotation]
    post: Optional[Annotation]
    body: List[TStatement] = field(default_factory=list)

    def statements(self) -> List[TStatement]:
        """The top-level statement list."""
        return list(self.body)
