"""Recursive-descent parser for the Pascal subset.

Produces :class:`repro.pascal.ast.Program`.  Assertion annotations are
kept as raw text; ``{data}`` / ``{pointer}`` annotations classify the
``var`` section they precede.  The first (last) assertion of the main
block becomes the program's precondition (postcondition).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.pascal import ast
from repro.pascal.lexer import Token, TokenKind, tokenize


def parse_program(text: str) -> ast.Program:
    """Parse a complete program source."""
    return _Parser(tokenize(text)).program()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str,
               token: Optional[Token] = None) -> ParseError:
        token = token or self._peek()
        return ParseError(f"{message} (found {token})", token.line,
                          token.column)

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {kind.value}")
        return self._next()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected '{word}'")
        return self._next()

    def _at_keyword(self, word: str) -> bool:
        return self._peek().is_keyword(word)

    def _ident(self) -> str:
        return self._expect(TokenKind.IDENT).value

    # -- program --------------------------------------------------------

    def program(self) -> ast.Program:
        self._expect_keyword("program")
        name = self._ident()
        self._expect(TokenKind.SEMI)
        program = ast.Program(name=name)
        self._declarations(program)
        body = self._block()
        self._expect(TokenKind.DOT)
        self._expect(TokenKind.EOF)
        statements = list(body)
        if statements and isinstance(statements[0], ast.AssertStmt):
            program.pre = statements.pop(0).annotation
        if statements and isinstance(statements[-1], ast.AssertStmt):
            program.post = statements.pop().annotation
        program.body = statements
        return program

    # -- declarations ---------------------------------------------------

    def _declarations(self, program: ast.Program) -> None:
        while True:
            token = self._peek()
            if token.is_keyword("type"):
                self._next()
                self._type_section(program)
            elif token.is_keyword("var"):
                self._next()
                self._var_section(program, None)
            elif token.kind is TokenKind.ANNOTATION and \
                    self._peek(1).is_keyword("var"):
                classification = token.value.lower()
                if classification not in ("data", "pointer"):
                    raise self._error(
                        "var classification must be {data} or {pointer}")
                self._next()
                self._next()
                self._var_section(program, classification)
            elif token.is_keyword("procedure"):
                self._next()
                program.procedures.append(self._procedure(token.line))
            else:
                return

    def _procedure(self, line: int) -> ast.ProcDecl:
        name = self._ident()
        self._expect(TokenKind.SEMI)
        body = self._block()
        self._expect(TokenKind.SEMI)
        return ast.ProcDecl(name, body, line)

    def _type_section(self, program: ast.Program) -> None:
        while self._peek().kind is TokenKind.IDENT and \
                self._peek(1).kind is TokenKind.EQ:
            name = self._ident()
            self._expect(TokenKind.EQ)
            self._type_definition(program, name)
            self._expect(TokenKind.SEMI)

    def _type_definition(self, program: ast.Program, name: str) -> None:
        token = self._peek()
        if token.kind is TokenKind.LPAREN:
            self._next()
            constants = [self._ident()]
            while self._peek().kind is TokenKind.COMMA:
                self._next()
                constants.append(self._ident())
            self._expect(TokenKind.RPAREN)
            program.enums.append(ast.EnumDecl(name, tuple(constants)))
        elif token.kind is TokenKind.CARET:
            self._next()
            program.pointers.append(ast.PointerDecl(name, self._ident()))
        elif token.is_keyword("record"):
            self._next()
            program.records.append(self._record_body(name))
        else:
            raise self._error("expected a type definition")

    def _record_body(self, name: str) -> ast.RecordDecl:
        self._expect_keyword("case")
        tag_field = self._ident()
        self._expect(TokenKind.COLON)
        tag_type = self._ident()
        self._expect_keyword("of")
        arms = [self._variant_arm()]
        while self._peek().kind is TokenKind.SEMI:
            self._next()
            if self._at_keyword("end"):
                break
            arms.append(self._variant_arm())
        self._expect_keyword("end")
        return ast.RecordDecl(name, tag_field, tag_type, tuple(arms))

    def _variant_arm(self) -> ast.VariantArm:
        tags = [self._ident()]
        while self._peek().kind is TokenKind.COMMA:
            self._next()
            tags.append(self._ident())
        self._expect(TokenKind.COLON)
        self._expect(TokenKind.LPAREN)
        fields: List[ast.FieldDecl] = []
        if self._peek().kind is TokenKind.IDENT:
            fields.append(self._field_decl())
            while self._peek().kind is TokenKind.SEMI:
                self._next()
                fields.append(self._field_decl())
        self._expect(TokenKind.RPAREN)
        return ast.VariantArm(tuple(tags), tuple(fields))

    def _field_decl(self) -> ast.FieldDecl:
        name = self._ident()
        self._expect(TokenKind.COLON)
        return ast.FieldDecl(name, self._ident())

    def _var_section(self, program: ast.Program,
                     classification: Optional[str]) -> None:
        while True:
            token = self._peek()
            names = [self._ident()]
            while self._peek().kind is TokenKind.COMMA:
                self._next()
                names.append(self._ident())
            self._expect(TokenKind.COLON)
            type_name = self._ident()
            self._expect(TokenKind.SEMI)
            program.var_decls.append(
                ast.VarDecl(tuple(names), type_name, classification,
                            token.line))
            if not (self._peek().kind is TokenKind.IDENT
                    and self._peek(1).kind in (TokenKind.COMMA,
                                               TokenKind.COLON)):
                return

    # -- statements -----------------------------------------------------

    def _block(self) -> Tuple[object, ...]:
        self._expect_keyword("begin")
        statements = self._statement_list()
        self._expect_keyword("end")
        return statements

    def _statement_list(self) -> Tuple[object, ...]:
        statements: List[object] = []
        while True:
            while self._peek().kind is TokenKind.SEMI:
                self._next()
            token = self._peek()
            if token.is_keyword("end") or token.kind is TokenKind.EOF:
                return tuple(statements)
            parsed = self._statement()
            statements.extend(parsed)
            token = self._peek()
            if token.kind is TokenKind.SEMI:
                continue
            if token.kind is TokenKind.ANNOTATION:
                continue  # assertions need no separating semicolon
            if parsed and isinstance(statements[-1], ast.AssertStmt):
                continue  # ... nor do statements following one
            if token.is_keyword("end"):
                return tuple(statements)
            raise self._error("expected ';' or 'end'")

    def _statement(self) -> Tuple[object, ...]:
        """Parse one statement; blocks flatten into their contents."""
        token = self._peek()
        if token.kind is TokenKind.ANNOTATION:
            self._next()
            annotation = ast.Annotation(token.value, token.line,
                                        token.column)
            return (ast.AssertStmt(annotation, token.line),)
        if token.is_keyword("begin"):
            return self._block()
        if token.is_keyword("if"):
            return (self._if_statement(),)
        if token.is_keyword("while"):
            return (self._while_statement(),)
        if token.is_keyword("new") or token.is_keyword("dispose"):
            return (self._alloc_statement(),)
        if token.kind is TokenKind.IDENT:
            if self._peek(1).kind not in (TokenKind.ASSIGN,
                                          TokenKind.CARET):
                self._next()
                return (ast.ProcCall(token.value, token.line),)
            return (self._assignment(),)
        raise self._error("expected a statement")

    def _if_statement(self) -> ast.If:
        token = self._expect_keyword("if")
        cond = self._bool_expr()
        self._expect_keyword("then")
        then_body = self._statement()
        else_body: Tuple[object, ...] = ()
        if self._at_keyword("else"):
            self._next()
            else_body = self._statement()
        return ast.If(cond, then_body, else_body, token.line)

    def _while_statement(self) -> ast.While:
        token = self._expect_keyword("while")
        cond = self._bool_expr()
        self._expect_keyword("do")
        invariant: Optional[ast.Annotation] = None
        peeked = self._peek()
        if peeked.kind is TokenKind.ANNOTATION:
            self._next()
            invariant = ast.Annotation(peeked.value, peeked.line,
                                       peeked.column)
        body = self._statement()
        return ast.While(cond, invariant, body, token.line)

    def _alloc_statement(self) -> object:
        token = self._next()  # new or dispose
        self._expect(TokenKind.LPAREN)
        lhs = self._path()
        self._expect(TokenKind.COMMA)
        variant = self._ident()
        self._expect(TokenKind.RPAREN)
        if token.value == "new":
            return ast.New(lhs, variant, token.line)
        return ast.Dispose(lhs, variant, token.line)

    def _assignment(self) -> ast.Assign:
        token = self._peek()
        lhs = self._path()
        self._expect(TokenKind.ASSIGN)
        rhs = self._ptr_expr()
        return ast.Assign(lhs, rhs, token.line)

    # -- expressions ----------------------------------------------------

    def _path(self) -> ast.Path:
        var = self._ident()
        fields: List[str] = []
        while self._peek().kind is TokenKind.CARET:
            self._next()
            self._expect(TokenKind.DOT)
            fields.append(self._ident())
        return ast.Path(var, tuple(fields))

    def _ptr_expr(self) -> object:
        if self._at_keyword("nil"):
            self._next()
            return ast.NilExpr()
        return self._path()

    def _bool_expr(self) -> object:
        left = self._bool_term()
        while self._at_keyword("or"):
            self._next()
            left = ast.BoolOp("or", left, self._bool_term())
        return left

    def _bool_term(self) -> object:
        left = self._bool_factor()
        while self._at_keyword("and"):
            self._next()
            left = ast.BoolOp("and", left, self._bool_factor())
        return left

    def _bool_factor(self) -> object:
        token = self._peek()
        if token.is_keyword("not"):
            self._next()
            return ast.BoolNot(self._bool_factor())
        if token.kind is TokenKind.LPAREN:
            self._next()
            inner = self._bool_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        return self._relation()

    def _relation(self) -> ast.Compare:
        left = self._ptr_expr()
        token = self._peek()
        if token.kind is TokenKind.EQ:
            self._next()
            return ast.Compare(left, self._ptr_expr(), negated=False)
        if token.kind is TokenKind.NEQ:
            self._next()
            return ast.Compare(left, self._ptr_expr(), negated=True)
        raise self._error("expected '=' or '<>'")
