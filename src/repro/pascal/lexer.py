"""Tokeniser for the Pascal subset.

Pascal-style and case-insensitive for keywords (identifiers keep their
spelling).  ``(* ... *)`` comments are skipped; ``{ ... }`` braces are
*annotations* (assertions, invariants, ``{data}``/``{pointer}``
classifications) and become :attr:`TokenKind.ANNOTATION` tokens whose
value is the raw text between the braces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

KEYWORDS = frozenset([
    "and", "begin", "case", "dispose", "do", "else", "end", "if", "new",
    "nil", "not", "of", "or", "procedure", "program", "record", "then",
    "type", "var", "while",
])


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    ANNOTATION = "annotation"
    ASSIGN = ":="
    COLON = ":"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    CARET = "^"
    LPAREN = "("
    RPAREN = ")"
    EQ = "="
    NEQ = "<>"
    EOF = "end of input"


@dataclass(frozen=True)
class Token:
    """One token with its source location (1-based)."""

    kind: TokenKind
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True iff this token is the given keyword."""
        return self.kind is TokenKind.KEYWORD and self.value == word

    def __str__(self) -> str:
        if self.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            return self.value
        if self.kind is TokenKind.ANNOTATION:
            return "{" + self.value + "}"
        return self.kind.value


def tokenize(text: str) -> List[Token]:
    """Tokenise a whole source text; raises ParseError on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    line = 1
    column = 1
    index = 0
    length = len(text)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance()
            continue
        if text.startswith("(*", index):
            start_line, start_col = line, column
            end = text.find("*)", index + 2)
            if end < 0:
                raise ParseError("unterminated comment", start_line,
                                 start_col)
            advance(end + 2 - index)
            continue
        if char == "{":
            start_line, start_col = line, column
            end = text.find("}", index + 1)
            if end < 0:
                raise ParseError("unterminated annotation", start_line,
                                 start_col)
            body = text[index + 1:end]
            advance(end + 1 - index)
            yield Token(TokenKind.ANNOTATION, body.strip(), start_line,
                        start_col)
            continue
        if char.isalpha() or char == "_":
            start_line, start_col = line, column
            start = index
            while index < length and (text[index].isalnum()
                                      or text[index] == "_"):
                advance()
            word = text[start:index]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token(TokenKind.KEYWORD, lowered, start_line,
                            start_col)
            else:
                yield Token(TokenKind.IDENT, word, start_line, start_col)
            continue
        start_line, start_col = line, column
        if text.startswith(":=", index):
            advance(2)
            yield Token(TokenKind.ASSIGN, ":=", start_line, start_col)
            continue
        if text.startswith("<>", index):
            advance(2)
            yield Token(TokenKind.NEQ, "<>", start_line, start_col)
            continue
        simple = {
            ":": TokenKind.COLON, ";": TokenKind.SEMI,
            ",": TokenKind.COMMA, ".": TokenKind.DOT,
            "^": TokenKind.CARET, "(": TokenKind.LPAREN,
            ")": TokenKind.RPAREN, "=": TokenKind.EQ,
        }
        kind = simple.get(char)
        if kind is None:
            raise ParseError(f"unexpected character {char!r}", line, column)
        advance()
        yield Token(kind, char, start_line, start_col)
    yield Token(TokenKind.EOF, "", line, column)
