"""Front end for the paper's Pascal subset (§2).

The language: enumeration types, record types with variant parts,
pointer types, and a while-fragment of statements (assignment, blocks,
conditionals, loops, ``new``/``dispose``).  Programs carry three kinds
of ``{...}`` annotations: variable classifications (``{data}`` /
``{pointer}``), assertions (precondition, postcondition, and cut-point
assertions inside statement lists), and loop invariants (immediately
after ``do``).  ``(* ... *)`` is a plain comment.

Use :func:`parse_program` then :func:`check_program`; the latter
returns the typed program together with its :class:`Schema`.
"""

from repro.pascal.lexer import Token, TokenKind, tokenize
from repro.pascal.parser import parse_program
from repro.pascal.types import check_program
from repro.pascal import ast

__all__ = ["Token", "TokenKind", "ast", "check_program", "parse_program",
           "tokenize"]
