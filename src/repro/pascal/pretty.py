"""Pretty-printing of parsed programs back to concrete syntax.

``pretty_program(parse_program(text))`` is a fixpoint: re-parsing the
output yields a structurally identical AST (the property tests rely on
this).  The typed IR prints through its ``__str__`` methods; this
module handles the full program shape including declarations and
annotations.
"""

from __future__ import annotations

from typing import List

from repro.pascal import ast

INDENT = "  "


def pretty_program(program: ast.Program) -> str:
    """Render a parsed program as source text."""
    lines: List[str] = [f"program {program.name};"]
    if program.enums or program.pointers or program.records:
        lines.append("type")
        for enum in program.enums:
            lines.append(f"{INDENT}{enum.name} = "
                         f"({', '.join(enum.constants)});")
        for pointer in program.pointers:
            lines.append(f"{INDENT}{pointer.name} = ^{pointer.target};")
        for record in program.records:
            lines.extend(_record_lines(record))
    for decl in program.var_decls:
        prefix = f"{{{decl.classification}}} " if decl.classification \
            else ""
        lines.append(f"{prefix}var {', '.join(decl.names)}: "
                     f"{decl.type_name};")
    for procedure in program.procedures:
        lines.append(f"procedure {procedure.name};")
        lines.append("begin")
        lines.extend(_statements(procedure.body, 1))
        lines.append("end;")
    lines.append("begin")
    if program.pre is not None:
        lines.append(f"{INDENT}{{{program.pre.text}}}")
    lines.extend(_statements(program.body, 1))
    if program.post is not None:
        lines.append(f"{INDENT}{{{program.post.text}}}")
    lines.append("end.")
    return "\n".join(lines) + "\n"


def _record_lines(record: ast.RecordDecl) -> List[str]:
    lines = [f"{INDENT}{record.name} = record case "
             f"{record.tag_field}: {record.tag_type} of"]
    arms = []
    for arm in record.arms:
        fields = "; ".join(f"{field.name}: {field.type_name}"
                           for field in arm.fields)
        arms.append(f"{INDENT * 2}{', '.join(arm.tags)}: ({fields})")
    lines.append(";\n".join(arms))
    lines.append(f"{INDENT}end;")
    return lines


def _statements(statements, depth: int) -> List[str]:
    lines: List[str] = []
    pad = INDENT * depth
    for index, statement in enumerate(statements):
        last = index == len(statements) - 1
        semi = "" if last else ";"
        if isinstance(statement, ast.AssertStmt):
            lines.append(f"{pad}{{{statement.annotation.text}}}")
        elif isinstance(statement, ast.If):
            lines.extend(_if_lines(statement, depth, semi))
        elif isinstance(statement, ast.While):
            lines.extend(_while_lines(statement, depth, semi))
        else:
            lines.append(f"{pad}{statement}{semi}")
    return lines


def _block(body, depth: int, suffix: str) -> List[str]:
    pad = INDENT * depth
    lines = [f"{pad}begin"]
    lines.extend(_statements(body, depth + 1))
    lines.append(f"{pad}end{suffix}")
    return lines


def _if_lines(statement: ast.If, depth: int, semi: str) -> List[str]:
    pad = INDENT * depth
    lines = [f"{pad}if {statement.cond} then"]
    if statement.else_body:
        lines.extend(_block(statement.then_body, depth + 1, ""))
        lines.append(f"{pad}else")
        lines.extend(_block(statement.else_body, depth + 1, semi))
    else:
        lines.extend(_block(statement.then_body, depth + 1, semi))
    return lines


def _while_lines(statement: ast.While, depth: int,
                 semi: str) -> List[str]:
    pad = INDENT * depth
    lines = [f"{pad}while {statement.cond} do"]
    if statement.invariant is not None:
        lines.append(f"{pad}{INDENT}{{{statement.invariant.text}}}")
    lines.extend(_block(statement.body, depth + 1, semi))
    return lines
