"""Type checker: parsed AST -> (:class:`TypedProgram`, :class:`Schema`).

Enforces the paper's restrictions (§2):

* only enumeration, record-with-variants, and pointer types;
* every program variable has a pointer type and is classified
  ``{data}`` or ``{pointer}``;
* at most one pointer field per variant (linear linked lists), and all
  record fields are pointer-typed — data content is carried by the
  variant tag;
* no pointer arithmetic (guaranteed syntactically).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TypeError_
from repro.pascal import ast
from repro.pascal.typed import (FieldLhs, TAnd, TAssertStmt, TAssign,
                                TDispose, TGuard, TIf, TLhs, TNew, TNot,
                                TOr, TPath, TPtrCompare, TStatement,
                                TVariantTest, TWhile, TypedProgram, VarLhs)
from repro.stores.schema import FieldInfo, RecordType, Schema


def check_program(program: ast.Program) -> TypedProgram:
    """Type-check a parsed program; raises TypeError_ on any problem."""
    checker = _Checker(program)
    return checker.run()


class _Checker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.schema = Schema()
        #: pointer type name -> record type name
        self.pointer_types: Dict[str, str] = {}
        #: enum constant -> enum type name
        self.enum_constants: Dict[str, str] = {}
        #: procedure name -> declaration
        self.procedures: Dict[str, ast.ProcDecl] = {}
        #: procedure name -> fully inlined typed body
        self._inlined: Dict[str, Tuple[TStatement, ...]] = {}
        self._inlining: List[str] = []

    # ------------------------------------------------------------------

    def run(self) -> TypedProgram:
        self._collect_enums()
        self._collect_pointers()
        self._collect_records()
        self._collect_vars()
        self._collect_procedures()
        self.schema.validate()
        body = list(self._statements(self.program.body))
        return TypedProgram(name=self.program.name, schema=self.schema,
                            pre=self.program.pre, post=self.program.post,
                            body=body)

    def _collect_procedures(self) -> None:
        for decl in self.program.procedures:
            if decl.name in self.procedures:
                raise TypeError_(
                    f"procedure {decl.name} declared twice")
            if decl.name in self.schema.data_vars or \
                    decl.name in self.schema.pointer_vars or \
                    decl.name in self.enum_constants:
                raise TypeError_(
                    f"procedure {decl.name} collides with another name")
            self.procedures[decl.name] = decl

    def _inline(self, name: str, line: int) -> Tuple[TStatement, ...]:
        cached = self._inlined.get(name)
        if cached is not None:
            return cached
        decl = self.procedures.get(name)
        if decl is None:
            raise TypeError_(f"line {line}: unknown procedure {name}")
        if name in self._inlining:
            cycle = " -> ".join(self._inlining + [name])
            raise TypeError_(
                f"recursive procedures are not supported: {cycle}")
        self._inlining.append(name)
        body = self._statements(decl.body)
        self._inlining.pop()
        self._inlined[name] = body
        return body

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _collect_enums(self) -> None:
        for decl in self.program.enums:
            if decl.name in self.schema.enums:
                raise TypeError_(f"duplicate type {decl.name}")
            self.schema.enums[decl.name] = decl.constants
            for constant in decl.constants:
                if constant in self.enum_constants:
                    raise TypeError_(
                        f"enum constant {constant} declared twice")
                self.enum_constants[constant] = decl.name

    def _collect_pointers(self) -> None:
        record_names = {decl.name for decl in self.program.records}
        for decl in self.program.pointers:
            if decl.target not in record_names:
                raise TypeError_(
                    f"pointer type {decl.name} targets unknown record "
                    f"{decl.target}")
            self.pointer_types[decl.name] = decl.target
            self.schema.pointer_aliases[decl.name] = decl.target

    def _collect_records(self) -> None:
        for decl in self.program.records:
            if decl.tag_type not in self.schema.enums:
                raise TypeError_(
                    f"record {decl.name}: tag type {decl.tag_type} is not "
                    f"an enumeration")
            variants: Dict[str, Optional[FieldInfo]] = {}
            for arm in decl.arms:
                info = self._arm_field(decl, arm)
                for tag in arm.tags:
                    if tag in variants:
                        raise TypeError_(
                            f"record {decl.name}: variant {tag} declared "
                            f"twice")
                    if tag not in self.schema.enums[decl.tag_type]:
                        raise TypeError_(
                            f"record {decl.name}: {tag} is not a constant "
                            f"of {decl.tag_type}")
                    variants[tag] = info
            self.schema.records[decl.name] = RecordType(
                decl.name, decl.tag_field, decl.tag_type, variants)

    def _arm_field(self, decl: ast.RecordDecl,
                   arm: ast.VariantArm) -> Optional[FieldInfo]:
        if not arm.fields:
            return None
        if len(arm.fields) > 1:
            raise TypeError_(
                f"record {decl.name}: variant {arm.tags[0]} has "
                f"{len(arm.fields)} pointer fields; linear lists allow "
                f"at most one")
        field = arm.fields[0]
        target = self.pointer_types.get(field.type_name)
        if target is None:
            raise TypeError_(
                f"record {decl.name}: field {field.name} must have a "
                f"pointer type, got {field.type_name}")
        if field.name == decl.tag_field:
            raise TypeError_(
                f"record {decl.name}: field {field.name} collides with "
                f"the tag field")
        return FieldInfo(field.name, target)

    def _collect_vars(self) -> None:
        for decl in self.program.var_decls:
            if decl.classification is None:
                raise TypeError_(
                    f"line {decl.line}: var section must be annotated "
                    f"{{data}} or {{pointer}}")
            target = self.pointer_types.get(decl.type_name)
            if target is None:
                raise TypeError_(
                    f"line {decl.line}: variables must have pointer "
                    f"types, got {decl.type_name}")
            table = self.schema.data_vars \
                if decl.classification == "data" \
                else self.schema.pointer_vars
            for name in decl.names:
                if name in self.schema.data_vars or \
                        name in self.schema.pointer_vars:
                    raise TypeError_(f"variable {name} declared twice")
                if name in self.enum_constants:
                    raise TypeError_(
                        f"variable {name} collides with an enum constant")
                table[name] = target

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _pointer_path(self, path: ast.Path) -> TPath:
        """Resolve a path whose every step is a pointer field."""
        var_type = self._var_record(path.var)
        steps: List[Tuple[str, str]] = []
        current = var_type
        for name in path.fields:
            current = self._field_target(current, name, path)
            steps.append((name, current))
        return TPath(path.var, var_type, tuple(steps))

    def _var_record(self, name: str) -> str:
        if name in self.schema.data_vars:
            return self.schema.data_vars[name]
        if name in self.schema.pointer_vars:
            return self.schema.pointer_vars[name]
        raise TypeError_(f"unknown variable {name}")

    def _field_target(self, record_name: str, field_name: str,
                      path: ast.Path) -> str:
        record = self.schema.records[record_name]
        if field_name == record.tag_field:
            raise TypeError_(
                f"{path}: the tag field {field_name} is not a pointer "
                f"field")
        targets = {info.target for info in record.variants.values()
                   if info is not None and info.name == field_name}
        if not targets:
            raise TypeError_(
                f"{path}: record {record_name} has no pointer field "
                f"{field_name}")
        if len(targets) > 1:
            raise TypeError_(
                f"{path}: field {field_name} of {record_name} has "
                f"conflicting target types across variants")
        return next(iter(targets))

    def _is_tag_path(self, path: ast.Path) -> bool:
        """True when the path's last field is a record's tag field."""
        if not path.fields or path.var not in {**self.schema.data_vars,
                                               **self.schema.pointer_vars}:
            return False
        try:
            cell = self._pointer_path(
                ast.Path(path.var, path.fields[:-1]))
        except TypeError_:
            return False
        record = self.schema.records[cell.final_type]
        return path.fields[-1] == record.tag_field

    # ------------------------------------------------------------------
    # Guards
    # ------------------------------------------------------------------

    def _guard(self, expr: object) -> TGuard:
        if isinstance(expr, ast.BoolOp):
            left = self._guard(expr.left)
            right = self._guard(expr.right)
            return TAnd(left, right) if expr.op == "and" \
                else TOr(left, right)
        if isinstance(expr, ast.BoolNot):
            return TNot(self._guard(expr.inner))
        if isinstance(expr, ast.Compare):
            return self._comparison(expr)
        raise TypeError_(f"not a boolean expression: {expr}")

    def _comparison(self, expr: ast.Compare) -> TGuard:
        left_tag = isinstance(expr.left, ast.Path) and \
            self._is_tag_path(expr.left)
        right_tag = isinstance(expr.right, ast.Path) and \
            self._is_tag_path(expr.right)
        if left_tag or right_tag:
            tag_side, other = (expr.left, expr.right) if left_tag \
                else (expr.right, expr.left)
            return self._variant_test(tag_side, other, expr.negated)
        return self._ptr_compare(expr)

    def _variant_test(self, tag_side: ast.Path, other: object,
                      negated: bool) -> TVariantTest:
        cell = self._pointer_path(ast.Path(tag_side.var,
                                           tag_side.fields[:-1]))
        record = self.schema.records[cell.final_type]
        if not (isinstance(other, ast.Path) and not other.fields
                and other.var in self.enum_constants):
            raise TypeError_(
                f"{tag_side} must be compared with a constant of "
                f"{record.tag_type}")
        constant = other.var
        if self.enum_constants[constant] != record.tag_type:
            raise TypeError_(
                f"{tag_side}: {constant} is not a constant of "
                f"{record.tag_type}")
        return TVariantTest(cell, record.name, constant, negated)

    def _ptr_compare(self, expr: ast.Compare) -> TPtrCompare:
        left = self._operand(expr.left)
        right = self._operand(expr.right)
        if left is not None and right is not None and \
                left.final_type != right.final_type:
            raise TypeError_(
                f"cannot compare {left} ({left.final_type}) with "
                f"{right} ({right.final_type})")
        return TPtrCompare(left, right, expr.negated)

    def _operand(self, expr: object) -> Optional[TPath]:
        if isinstance(expr, ast.NilExpr):
            return None
        if isinstance(expr, ast.Path):
            if not expr.fields and expr.var in self.enum_constants:
                raise TypeError_(
                    f"enum constant {expr.var} used as a pointer")
            return self._pointer_path(expr)
        raise TypeError_(f"not a pointer expression: {expr}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _statements(self, statements) -> Tuple[TStatement, ...]:
        """Type a statement list; procedure calls splice their inlined
        bodies in place."""
        result: List[TStatement] = []
        for statement in statements:
            if isinstance(statement, ast.ProcCall):
                result.extend(self._inline(statement.name,
                                           statement.line))
            else:
                result.append(self._statement(statement))
        return tuple(result)

    def _statement(self, statement: object) -> TStatement:
        if isinstance(statement, ast.Assign):
            return self._assign(statement)
        if isinstance(statement, ast.New):
            return self._new(statement)
        if isinstance(statement, ast.Dispose):
            return self._dispose(statement)
        if isinstance(statement, ast.If):
            return TIf(self._guard(statement.cond),
                       self._statements(statement.then_body),
                       self._statements(statement.else_body),
                       statement.line)
        if isinstance(statement, ast.While):
            return TWhile(self._guard(statement.cond), statement.invariant,
                          self._statements(statement.body),
                          statement.line)
        if isinstance(statement, ast.AssertStmt):
            return TAssertStmt(statement.annotation, statement.line)
        raise TypeError_(f"unknown statement {statement!r}")

    def _lhs(self, path: ast.Path) -> TLhs:
        if not path.fields:
            return VarLhs(path.var, self._var_record(path.var))
        cell = self._pointer_path(ast.Path(path.var, path.fields[:-1]))
        field_name = path.fields[-1]
        target = self._field_target(cell.final_type, field_name, path)
        return FieldLhs(cell, field_name, target)

    def _assign(self, statement: ast.Assign) -> TAssign:
        lhs = self._lhs(statement.lhs)
        rhs = self._operand(statement.rhs)
        lhs_type = lhs.type_name if isinstance(lhs, VarLhs) \
            else lhs.target_type
        if rhs is not None and rhs.final_type != lhs_type:
            raise TypeError_(
                f"line {statement.line}: cannot assign {rhs} "
                f"({rhs.final_type}) to {lhs} ({lhs_type})")
        return TAssign(lhs, rhs, statement.line)

    def _new(self, statement: ast.New) -> TNew:
        lhs = self._lhs(statement.lhs)
        type_name = lhs.type_name if isinstance(lhs, VarLhs) \
            else lhs.target_type
        self._check_variant(type_name, statement.variant, statement.line)
        return TNew(lhs, type_name, statement.variant, statement.line)

    def _dispose(self, statement: ast.Dispose) -> TDispose:
        path = self._pointer_path(statement.lhs)
        self._check_variant(path.final_type, statement.variant,
                            statement.line)
        return TDispose(path, path.final_type, statement.variant,
                        statement.line)

    def _check_variant(self, type_name: str, variant: str,
                       line: int) -> None:
        if not self.schema.variant_exists(type_name, variant):
            raise TypeError_(
                f"line {line}: record {type_name} has no variant "
                f"{variant}")
