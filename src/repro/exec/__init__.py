"""Concrete execution of checked programs over concrete stores.

The reference semantics of the Pascal subset: used to simulate
counterexamples (the paper's "cartoon of store modifications", §5) and
as the oracle in differential tests against the symbolic engine.
"""

from repro.exec.interpreter import (AssertionFailure, Interpreter,
                                    OutOfMemory, Trace, TraceStep)

__all__ = ["AssertionFailure", "Interpreter", "OutOfMemory", "Trace",
           "TraceStep"]
