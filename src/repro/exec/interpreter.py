"""The concrete interpreter for typed programs.

Semantics mirror the symbolic transduction engine exactly:

* dereferencing nil, a garbage cell, a variant without the field, or
  an uninitialised field raises :class:`ExecutionError`;
* guards are short-circuit; reading the tag of nil or garbage (or of
  a record of an unexpected type) is an error;
* ``new`` converts the lowest-id garbage cell (the deterministic
  allocator) and raises :class:`OutOfMemory` when none exists; the
  fresh cell's field starts uninitialised; the target lvalue is
  evaluated *after* allocation;
* ``dispose`` requires a record cell of exactly the stated type and
  variant; the cell becomes garbage with no outgoing pointer, and any
  other references to it dangle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ExecutionError
from repro.pascal.typed import (FieldLhs, TAnd, TAssertStmt, TAssign,
                                TDispose, TIf, TNew, TNot, TOr, TPath,
                                TPtrCompare, TVariantTest, TWhile,
                                TypedProgram, VarLhs)
from repro.storelogic.check import check_formula
from repro.storelogic.eval import eval_formula
from repro.storelogic.parser import parse_formula
from repro.stores.model import NIL_ID, CellKind, Store
from repro.stores.render import render_store


class OutOfMemory(ExecutionError):
    """``new`` found no garbage cell — the excused alloc condition."""


class AssertionFailure(ExecutionError):
    """A cut-point assertion evaluated to false during simulation."""


@dataclass
class TraceStep:
    """One frame of the execution cartoon."""

    statement: str
    line: int
    picture: str


@dataclass
class Trace:
    """The statement-by-statement record of one run."""

    steps: List[TraceStep] = field(default_factory=list)
    failure: Optional[str] = None

    def render(self) -> str:
        """Multi-line rendition of the whole cartoon."""
        blocks = []
        for index, step in enumerate(self.steps):
            header = f"[{index}] {step.statement}"
            blocks.append(header + "\n" + _indent(step.picture))
        if self.failure:
            blocks.append(f"FAILURE: {self.failure}")
        return "\n".join(blocks)


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


class Interpreter:
    """Executes a typed program's statements on a concrete store."""

    def __init__(self, program: TypedProgram,
                 check_assertions: bool = False,
                 max_loop_iterations: int = 10000) -> None:
        self.program = program
        self.check_assertions = check_assertions
        self.max_loop_iterations = max_loop_iterations

    # ------------------------------------------------------------------

    def run(self, store: Store, trace: Optional[Trace] = None) -> Store:
        """Run the whole program body in place; returns the store.

        Raises ExecutionError on runtime errors.  When a ``trace`` is
        supplied, a frame is appended after every primitive statement.
        """
        self._sequence(store, self.program.body, trace)
        return store

    def run_statements(self, store: Store, statements: Sequence[object],
                       trace: Optional[Trace] = None) -> Store:
        """Run an arbitrary (typed) statement list on a store.

        Used by the verifier to simulate a counterexample on just the
        statements of the failing subgoal.
        """
        self._sequence(store, statements, trace)
        return store

    def _sequence(self, store: Store, statements: Sequence[object],
                  trace: Optional[Trace]) -> None:
        for statement in statements:
            self._step(store, statement, trace)

    def _step(self, store: Store, statement: object,
              trace: Optional[Trace]) -> None:
        try:
            self._dispatch(store, statement, trace)
        except ExecutionError as exc:
            if trace is not None and trace.failure is None:
                trace.failure = str(exc)
                trace.steps.append(TraceStep(str(statement),
                                             getattr(statement, "line", 0),
                                             render_store(store)))
            raise
        if trace is not None and not isinstance(statement, (TIf, TWhile)):
            trace.steps.append(TraceStep(str(statement),
                                         getattr(statement, "line", 0),
                                         render_store(store)))

    def _dispatch(self, store: Store, statement: object,
                  trace: Optional[Trace]) -> None:
        if isinstance(statement, TAssign):
            target = NIL_ID if statement.rhs is None \
                else self._path_value(store, statement.rhs)
            self._store_into(store, statement.lhs, target)
        elif isinstance(statement, TNew):
            self._new(store, statement)
        elif isinstance(statement, TDispose):
            self._dispose(store, statement)
        elif isinstance(statement, TIf):
            if self._guard(store, statement.cond):
                self._sequence(store, statement.then_body, trace)
            else:
                self._sequence(store, statement.else_body, trace)
        elif isinstance(statement, TWhile):
            iterations = 0
            while self._guard(store, statement.cond):
                self._check_assert(store, statement.invariant)
                self._sequence(store, statement.body, trace)
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise ExecutionError(
                        f"line {statement.line}: loop exceeded "
                        f"{self.max_loop_iterations} iterations")
        elif isinstance(statement, TAssertStmt):
            self._check_assert(store, statement.annotation, fail=True)
        else:
            raise ExecutionError(f"unknown statement {statement!r}")

    # ------------------------------------------------------------------
    # Paths, lvalues, guards
    # ------------------------------------------------------------------

    def _path_value(self, store: Store, path: TPath) -> int:
        ident = store.var(path.var)
        for field_name, _ in path.steps:
            ident = self._deref(store, ident, field_name, str(path))
        return ident

    def _deref(self, store: Store, ident: int, field_name: str,
               context: str) -> int:
        cell = store.cell(ident)
        if cell.kind is CellKind.NIL:
            raise ExecutionError(f"{context}: dereference of nil")
        if cell.kind is CellKind.GARBAGE:
            raise ExecutionError(
                f"{context}: dereference of a dangling pointer "
                f"(cell {ident} was disposed)")
        record = store.schema.record(cell.type_name or "")
        info = record.field_of(cell.variant or "")
        if info is None or info.name != field_name:
            raise ExecutionError(
                f"{context}: variant {cell.variant} of {cell.type_name} "
                f"has no field {field_name}")
        if cell.next is None:
            raise ExecutionError(
                f"{context}: field {field_name} of cell {ident} is "
                f"uninitialised")
        return cell.next

    def _store_into(self, store: Store, lhs: object, target: int) -> None:
        if isinstance(lhs, VarLhs):
            store.set_var(lhs.name, target)
            return
        assert isinstance(lhs, FieldLhs)
        ident = self._path_value(store, lhs.cell)
        cell = store.cell(ident)
        if cell.kind is not CellKind.RECORD:
            raise ExecutionError(
                f"{lhs}: writing a field of a {cell.kind.value} cell")
        record = store.schema.record(cell.type_name or "")
        info = record.field_of(cell.variant or "")
        if info is None or info.name != lhs.field:
            raise ExecutionError(
                f"{lhs}: variant {cell.variant} of {cell.type_name} has "
                f"no field {lhs.field}")
        cell.next = target

    def _guard(self, store: Store, guard: object) -> bool:
        if isinstance(guard, TPtrCompare):
            left = NIL_ID if guard.left is None \
                else self._path_value(store, guard.left)
            right = NIL_ID if guard.right is None \
                else self._path_value(store, guard.right)
            return (left != right) if guard.negated else (left == right)
        if isinstance(guard, TVariantTest):
            ident = self._path_value(store, guard.cell)
            cell = store.cell(ident)
            if cell.kind is not CellKind.RECORD or \
                    cell.type_name != guard.type_name:
                raise ExecutionError(
                    f"{guard}: reading the tag of cell {ident}, which is "
                    f"not a {guard.type_name} record")
            matches = cell.variant == guard.variant
            return (not matches) if guard.negated else matches
        if isinstance(guard, TAnd):
            return self._guard(store, guard.left) and \
                self._guard(store, guard.right)
        if isinstance(guard, TOr):
            return self._guard(store, guard.left) or \
                self._guard(store, guard.right)
        if isinstance(guard, TNot):
            return not self._guard(store, guard.inner)
        raise ExecutionError(f"unknown guard {guard!r}")

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _new(self, store: Store, statement: TNew) -> None:
        ident = store.first_garbage()
        if ident is None:
            raise OutOfMemory(
                f"line {statement.line}: new({statement.lhs}, "
                f"{statement.variant}) found no free cell")
        cell = store.cell(ident)
        cell.kind = CellKind.RECORD
        cell.type_name = statement.type_name
        cell.variant = statement.variant
        cell.next = None
        self._store_into(store, statement.lhs, ident)

    def _dispose(self, store: Store, statement: TDispose) -> None:
        ident = self._path_value(store, statement.path)
        cell = store.cell(ident)
        if cell.kind is not CellKind.RECORD or \
                cell.type_name != statement.type_name or \
                cell.variant != statement.variant:
            raise ExecutionError(
                f"line {statement.line}: dispose({statement.path}, "
                f"{statement.variant}) on a cell that is not a "
                f"{statement.type_name}:{statement.variant} record")
        cell.kind = CellKind.GARBAGE
        cell.type_name = None
        cell.variant = None
        cell.next = None

    # ------------------------------------------------------------------
    # Assertions
    # ------------------------------------------------------------------

    def _check_assert(self, store: Store, annotation,
                      fail: bool = False) -> None:
        if annotation is None or not (self.check_assertions or fail):
            return
        formula = check_formula(parse_formula(annotation.text),
                                self.program.schema)
        if not eval_formula(formula, store):
            raise AssertionFailure(
                f"assertion {{{annotation.text}}} does not hold")
