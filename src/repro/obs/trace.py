"""Hierarchical span tracing with a zero-overhead no-op sink.

A *span* is one timed region of the pipeline — ``subgoal``,
``compile``, ``automata.product`` — with free-form attributes (state
counts, BDD node counts, formula sizes) and child spans.  Spans form a
tree mirroring the call structure, which the reporters render as a
per-phase timing tree and export as JSON.

Instrumented code does not thread a tracer through every signature; it
calls the module-level :func:`span`, which delegates to the process's
*active* tracer.  The default active tracer is :data:`NULL_TRACER`,
whose ``span`` returns a shared no-op span — no allocation, no clock
read — so leaving instrumentation in hot paths costs one function
call when tracing is off.

Two levels of granularity:

* **phase** spans (the default) — a handful per subgoal; cheap enough
  for ``--profile``;
* **detail** spans (``detail=True``) — one per automaton operation,
  possibly thousands per subgoal; recorded only by a
  ``Tracer(detail=True)`` (the CLI's ``--trace``).

Example:
    >>> tracer = Tracer()
    >>> with activate(tracer):
    ...     with span("compile") as sp:
    ...         if sp:
    ...             sp.annotate(states=7)
    >>> tracer.roots[0].name
    'compile'
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class Span:
    """One timed, attributed region; also its own context manager.

    Truthiness distinguishes real spans from the no-op span, so
    callers can gate expensive attribute computation::

        with span("automata.minimize", detail=True) as sp:
            result = dfa.minimize()
            if sp:
                sp.annotate(states=result.num_states)
    """

    __slots__ = ("name", "attrs", "children", "start", "end", "_tracer")

    def __init__(self, name: str, attrs: Dict[str, object],
                 tracer: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.children: List["Span"] = []
        self.start = 0.0
        self.end: Optional[float] = None
        self._tracer = tracer

    # -- context manager ----------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end = time.perf_counter()
        self._tracer._pop(self)
        return False

    def __bool__(self) -> bool:
        return True

    # -- data ----------------------------------------------------------

    @property
    def seconds(self) -> float:
        """Duration; reads the clock while the span is still open."""
        return (self.end if self.end is not None
                else time.perf_counter()) - self.start

    def annotate(self, **attrs: object) -> None:
        """Attach or overwrite attributes."""
        self.attrs.update(attrs)

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (schema: name/seconds/attrs/children)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds:.6f}s, {self.attrs!r})"


class _NullSpan:
    """The shared do-nothing span returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Records a forest of spans.

    Args:
        detail: also record ``detail=True`` (per-operation) spans.
        max_spans: hard cap on recorded spans; once reached, further
            spans become no-ops and are counted in ``spans_dropped``
            (a runaway trace must not exhaust memory).
    """

    enabled = True

    def __init__(self, detail: bool = False,
                 max_spans: int = 200_000) -> None:
        self.detail = detail
        self.max_spans = max_spans
        self.roots: List[Span] = []
        self.spans_recorded = 0
        self.spans_dropped = 0
        self._stack: List[Span] = []

    def span(self, name: str, detail: bool = False, **attrs: object):
        """Open a span as a child of the innermost open span."""
        if detail and not self.detail:
            return NULL_SPAN
        if self.spans_recorded >= self.max_spans:
            self.spans_dropped += 1
            return NULL_SPAN
        opened = Span(name, attrs, self)
        if self._stack:
            self._stack[-1].children.append(opened)
        else:
            self.roots.append(opened)
        self._stack.append(opened)
        self.spans_recorded += 1
        opened.start = time.perf_counter()
        return opened

    def _pop(self, span: Span) -> None:
        # Exits normally come in LIFO order; tolerate out-of-order
        # exits (e.g. a generator finalised late) by unwinding to the
        # span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the whole forest."""
        return {
            "spans": [root.to_dict() for root in self.roots],
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
        }


class _NullTracer:
    """The disabled sink: every span is the shared no-op span."""

    enabled = False
    detail = False

    def span(self, name: str, detail: bool = False,
             **attrs: object) -> _NullSpan:
        return NULL_SPAN


NULL_TRACER = _NullTracer()

#: The process-wide active tracer.  A plain module global, not a
#: context variable: the verifier is single-threaded and the lookup
#: sits on hot paths.
_ACTIVE = NULL_TRACER


def current_tracer():
    """The active tracer (the null sink when tracing is off)."""
    return _ACTIVE


def set_tracer(tracer) -> None:
    """Install ``tracer`` (or the null sink for ``None``) globally."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER


def span(name: str, detail: bool = False, **attrs: object):
    """Open a span on the active tracer (no-op when tracing is off)."""
    return _ACTIVE.span(name, detail, **attrs)


@contextmanager
def activate(tracer):
    """Install ``tracer`` for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def tracer_from_env(env: Optional[Dict[str, str]] = None) -> Optional[Tracer]:
    """A detail tracer when ``REPRO_TRACE`` is set to a truthy value.

    Recognised as enabled: any value except the empty string and
    ``0``.  Returns None when the variable is absent or falsy.
    """
    value = (env if env is not None else os.environ).get("REPRO_TRACE", "")
    if value in ("", "0"):
        return None
    return Tracer(detail=True)
