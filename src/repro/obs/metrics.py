"""Counters, gauges and histograms for the symbolic pipeline.

The BDD managers keep their own always-on integer counters (memo hits
and misses are too hot for any indirection; see
:meth:`repro.bdd.mtbdd.Mtbdd.cache_stats`).  This registry covers
everything above that layer: distributions of intermediate automaton
sizes, projection fan-outs, per-phase counts — measurements that are
only interesting when someone asked for them.

Mirrors :mod:`repro.obs.trace`: a process-wide active registry
defaulting to :data:`NULL_REGISTRY`, whose metric handles are shared
no-op objects, so instrumentation can stay in the code unconditionally.

Example:
    >>> registry = MetricsRegistry()
    >>> with activate_metrics(registry):
    ...     current_metrics().counter("products").inc()
    ...     current_metrics().histogram("states").observe(12)
    >>> registry.counter("products").value
    1
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Optional


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Counters accumulate: the merged count is the sum."""
        self.value += other.value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value, with a running maximum."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self.max_value = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def merge(self, other: "Gauge") -> None:
        """Gauges merge by maximum — the max-over-subgoals rule the
        ``verify.tracks_*`` gauges follow, so a merged view reports
        the same number a single-process run would."""
        if other.value > self.value:
            self.value = other.value
        if other.max_value > self.max_value:
            self.max_value = other.max_value

    def to_dict(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value,
                "max": self.max_value}


class Histogram:
    """A distribution over non-negative values.

    Buckets are powers of two (bucket ``k`` counts observations
    ``2^(k-1) < v <= 2^k``, bucket 0 counts ``v <= 1``), which suits
    the quantities measured here — state counts, node counts, formula
    sizes — whose interesting structure is their order of magnitude.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bucket = max(0, int(value) - 1).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Histograms merge as if every observation had been made on
        this one: counts, totals and buckets sum; min/max combine."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum
        for bucket, count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "type": "histogram", "count": self.count,
            "total": self.total, "min": self.minimum,
            "max": self.maximum, "mean": self.mean,
            # JSON object keys must be strings; "le_2^k" is the
            # bucket's inclusive upper bound.
            "buckets": {f"le_2^{k}": self.buckets[k]
                        for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Creates-on-first-use registry of named metrics.

    Handle creation, merging and export are guarded by a lock so the
    registry can be shared between threads (the serving daemon's
    dispatcher, request handlers and stats endpoint all touch the
    same registry).  The individual metric operations (``inc``,
    ``set``, ``observe``) stay lock-free — they are single bytecode
    read-modify-writes on the hot path, and the daemon only ever
    mutates a given handle from one thread at a time.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, object]:
        # Locks cannot cross the worker process boundary; the reply
        # envelope ships the metric tables only.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(name, Counter(name))
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(name, Gauge(name))
        return found

    def histogram(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(name,
                                                    Histogram(name))
        return found

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Fold another registry into this one, metric by metric:
        counters sum, gauges take maxima, histograms accumulate.

        A non-empty ``prefix`` records the other registry's metrics
        under namespaced names instead (``worker.3.<name>``), which is
        how the parallel executor keeps both a per-worker view and —
        via a second prefix-less merge — the merged view whose numbers
        match a single-process run.
        """
        for name, counter in other._counters.items():
            self.counter(prefix + name).merge(counter)
        for name, gauge in other._gauges.items():
            self.gauge(prefix + name).merge(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(prefix + name).merge(histogram)

    def to_dict(self) -> Dict[str, object]:
        """All metrics, name-sorted, JSON-ready."""
        merged: Dict[str, object] = {}
        for table in (self._counters, self._gauges, self._histograms):
            for name, metric in table.items():
                merged[name] = metric.to_dict()
        return {name: merged[name] for name in sorted(merged)}


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0
    max_value = 0

    def set(self, value) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    count = 0

    def observe(self, value) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class _NullRegistry:
    """The disabled sink: all handles are shared no-op metrics."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def merge(self, other, prefix: str = "") -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {}


NULL_REGISTRY = _NullRegistry()

_ACTIVE = NULL_REGISTRY


def current_metrics():
    """The active registry (the null sink when metrics are off)."""
    return _ACTIVE


def set_metrics(registry) -> None:
    """Install ``registry`` (or the null sink for ``None``) globally."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY


@contextmanager
def activate_metrics(registry):
    """Install ``registry`` for the duration of a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_REGISTRY
    try:
        yield registry
    finally:
        _ACTIVE = previous
