"""Observability: span tracing, metrics, and structured exports.

The verifier is a pipeline of expensive symbolic phases — symbolic
execution, formula translation, the automaton reduction (products,
projections, minimisations), emptiness checking, counterexample
decoding — and the paper's whole evaluation (§6) is a table of
internal measurements of that pipeline.  This package is the
measurement substrate:

* :mod:`repro.obs.trace` — a lightweight hierarchical span tracer
  with a zero-overhead no-op sink when disabled;
* :mod:`repro.obs.metrics` — counters, gauges and histograms with the
  same always-usable null registry.

Both follow the same pattern: a process-wide *active* instance that
defaults to a null implementation, so instrumented code never checks
"is tracing on?" — it just calls :func:`repro.obs.trace.span` and the
null sink swallows it.
"""

from repro.obs.trace import (NULL_TRACER, Span, Tracer, activate,
                             current_tracer, set_tracer, span,
                             tracer_from_env)
from repro.obs.metrics import (NULL_REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, activate_metrics,
                               current_metrics, set_metrics)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NULL_REGISTRY",
    "NULL_TRACER", "Span", "Tracer", "activate", "activate_metrics",
    "current_metrics", "current_tracer", "set_metrics", "set_tracer",
    "span", "tracer_from_env",
]
