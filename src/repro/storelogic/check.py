"""Name and type checking of store-logic assertions against a schema.

:func:`check_formula` validates every variable, field and variant test
in an assertion and returns an equivalent formula in which pointer
type aliases (``List``) are resolved to record type names (``Item``)
— the paper writes tests like ``(List:red)?`` with the pointer type.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.errors import TranslationError, TypeError_
from repro.storelogic import ast
from repro.stores.schema import Schema


def check_formula(formula: object, schema: Schema) -> object:
    """Check an assertion and resolve its type aliases.

    Raises TranslationError when the assertion mentions unknown
    variables, fields, types or variants.
    """
    return _formula(formula, schema, frozenset())


def _formula(node: object, schema: Schema,
             bound: FrozenSet[str]) -> object:
    if isinstance(node, (ast.STrue, ast.SFalse)):
        return node
    if isinstance(node, ast.SEq):
        _term(node.left, schema, bound)
        _term(node.right, schema, bound)
        return node
    if isinstance(node, ast.SRoute):
        _term(node.left, schema, bound)
        _term(node.right, schema, bound)
        return ast.SRoute(node.left, _route(node.route, schema),
                          node.right)
    if isinstance(node, ast.SNot):
        return ast.SNot(_formula(node.inner, schema, bound))
    if isinstance(node, (ast.SAnd, ast.SOr, ast.SImplies, ast.SIff)):
        return type(node)(_formula(node.left, schema, bound),
                          _formula(node.right, schema, bound))
    if isinstance(node, (ast.SEx, ast.SAll)):
        for name in node.names:
            if name == "nil":
                raise TranslationError("cannot bind the name 'nil'")
        inner_bound = bound | frozenset(node.names)
        return type(node)(node.names,
                          _formula(node.body, schema, inner_bound))
    raise TranslationError(f"unknown formula node {node!r}")


def free_program_vars(formula: object) -> FrozenSet[str]:
    """The program variables an assertion mentions.

    Bound cell variables (``ex q: ...``) shadow program variables of
    the same name and are excluded, so on a checked formula the result
    is a subset of the schema's variables.  ``nil`` is never included.
    """
    return _free_vars(formula, frozenset())


def _free_vars(node: object, bound: FrozenSet[str]) -> FrozenSet[str]:
    if isinstance(node, (ast.STrue, ast.SFalse)):
        return frozenset()
    if isinstance(node, (ast.SEq, ast.SRoute)):
        return _term_vars(node.left, bound) | _term_vars(node.right, bound)
    if isinstance(node, ast.SNot):
        return _free_vars(node.inner, bound)
    if isinstance(node, (ast.SAnd, ast.SOr, ast.SImplies, ast.SIff)):
        return _free_vars(node.left, bound) | _free_vars(node.right, bound)
    if isinstance(node, (ast.SEx, ast.SAll)):
        return _free_vars(node.body, bound | frozenset(node.names))
    raise TranslationError(f"unknown formula node {node!r}")


def _term_vars(node: object, bound: FrozenSet[str]) -> FrozenSet[str]:
    if isinstance(node, ast.TermNil):
        return frozenset()
    if isinstance(node, ast.TermVar):
        if node.name in bound:
            return frozenset()
        return frozenset([node.name])
    if isinstance(node, ast.TermDeref):
        return _term_vars(node.base, bound)
    raise TranslationError(f"unknown term node {node!r}")


def _term(node: object, schema: Schema, bound: FrozenSet[str]) -> None:
    if isinstance(node, ast.TermNil):
        return
    if isinstance(node, ast.TermVar):
        if node.name in bound:
            return
        if node.name in schema.data_vars or \
                node.name in schema.pointer_vars:
            return
        raise TranslationError(
            f"unknown variable {node.name} in assertion")
    if isinstance(node, ast.TermDeref):
        _term(node.base, schema, bound)
        if not _field_exists(schema, node.field):
            raise TranslationError(
                f"no record type has a pointer field {node.field}")
        return
    raise TranslationError(f"unknown term node {node!r}")


def _field_exists(schema: Schema, field: str) -> bool:
    for record in schema.records.values():
        for info in record.variants.values():
            if info is not None and info.name == field:
                return True
    return False


def _route(node: object, schema: Schema) -> object:
    if isinstance(node, ast.RouteField):
        if not _field_exists(schema, node.field):
            raise TranslationError(
                f"no record type has a pointer field {node.field}")
        return node
    if isinstance(node, (ast.RouteTestNil, ast.RouteTestGarb)):
        return node
    if isinstance(node, ast.RouteTestVariant):
        try:
            record_name = schema.resolve_record(node.type_name)
        except TypeError_ as exc:
            raise TranslationError(str(exc)) from None
        if not schema.variant_exists(record_name, node.variant):
            raise TranslationError(
                f"record {record_name} has no variant {node.variant}")
        return ast.RouteTestVariant(record_name, node.variant)
    if isinstance(node, (ast.RouteCat, ast.RouteUnion)):
        return type(node)(_route(node.left, schema),
                          _route(node.right, schema))
    if isinstance(node, ast.RouteStar):
        return ast.RouteStar(_route(node.inner, schema))
    raise TranslationError(f"unknown routing node {node!r}")
