"""Abstract syntax of the store logic (paper §3).

Terms denote cells::

    c ::= x | p | c^.n | nil | q (bound cell variable)

Routing relations are regular expressions over traversals and tests::

    R ::= n | (T:v)? | nil? | garb? | R.R | R+R | R*

Formulas::

    phi ::= c1 = c2 | c1 <R> c2 | ~phi | phi & phi | ex q: phi | ...

``c1 <> c2`` is sugar for ``~(c1 = c2)`` and the unary ``<R>c`` for
``c<R>c``, both resolved by the parser.  Atomic formulas are *false*
when a term is undefined (a traversal from nil, from a garbage cell,
through a variant without the field, or through an uninitialised
field) — the paper's partial-term semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TermVar:
    """A program variable or a quantifier-bound cell variable.

    Bound cell variables shadow program variables of the same name
    (the paper's ``delete`` does exactly this with ``q``).
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TermNil:
    """The nil cell."""

    def __str__(self) -> str:
        return "nil"


@dataclass(frozen=True)
class TermDeref:
    """Pointer traversal ``base^.field``."""

    base: object
    field: str

    def __str__(self) -> str:
        return f"{self.base}^.{self.field}"


# ----------------------------------------------------------------------
# Routing relations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RouteField:
    """Traverse a pointer field."""

    field: str

    def __str__(self) -> str:
        return self.field


@dataclass(frozen=True)
class RouteTestVariant:
    """``(T:v)?`` — the cell has record type T (or the pointer type
    aliasing it) and variant v."""

    type_name: str
    variant: str

    def __str__(self) -> str:
        return f"({self.type_name}:{self.variant})?"


@dataclass(frozen=True)
class RouteTestNil:
    """``nil?`` — the cell is the nil cell."""

    def __str__(self) -> str:
        return "nil?"


@dataclass(frozen=True)
class RouteTestGarb:
    """``garb?`` — the cell is a garbage cell."""

    def __str__(self) -> str:
        return "garb?"


@dataclass(frozen=True)
class RouteCat:
    """Concatenation ``R1.R2``."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"{self.left}.{self.right}"


@dataclass(frozen=True)
class RouteUnion:
    """Union ``R1+R2``."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left}+{self.right})"


@dataclass(frozen=True)
class RouteStar:
    """Kleene star ``R*``."""

    inner: object

    def __str__(self) -> str:
        return f"{self.inner}*"


def route_plus(route: object) -> RouteCat:
    """``R+`` desugars to ``R.R*``."""
    return RouteCat(route, RouteStar(route))


# ----------------------------------------------------------------------
# Formulas
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class STrue:
    """The true formula."""

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class SFalse:
    """The false formula."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class SEq:
    """``left = right`` — both defined and equal."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class SRoute:
    """``left <R> right`` — some R-path leads from left to right."""

    left: object
    route: object
    right: object

    def __str__(self) -> str:
        return f"{self.left}<{self.route}>{self.right}"


@dataclass(frozen=True)
class SNot:
    """Negation."""

    inner: object

    def __str__(self) -> str:
        return f"~({self.inner})"


@dataclass(frozen=True)
class SAnd:
    """Conjunction."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class SOr:
    """Disjunction."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class SImplies:
    """Implication."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} => {self.right})"


@dataclass(frozen=True)
class SIff:
    """Bi-implication."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} <=> {self.right})"


@dataclass(frozen=True)
class SEx:
    """``ex q1, q2: body`` — existential over cells of the store."""

    names: Tuple[str, ...]
    body: object

    def __str__(self) -> str:
        return f"ex {', '.join(self.names)}: {self.body}"


@dataclass(frozen=True)
class SAll:
    """``all q1, q2: body`` — universal over cells of the store."""

    names: Tuple[str, ...]
    body: object

    def __str__(self) -> str:
        return f"all {', '.join(self.names)}: {self.body}"
