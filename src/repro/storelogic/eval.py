"""Concrete evaluation of store-logic formulas.

Evaluates an assertion against a :class:`Store` directly, implementing
the logic's semantics by definition:

* terms denote cells or are *undefined* (traversal from nil or a
  garbage cell, through a missing variant field, or through an
  uninitialised field);
* atomic formulas are false when a term is undefined;
* routing ``c<R>d`` holds when the NFA of ``R`` accepts some path from
  ``c`` to ``d`` in the store graph, tests acting as self-loops;
* quantifiers range over *all* cells (nil, records, garbage).

This is the oracle the test-suite compares the symbolic translation
against, and the explainer used to annotate counterexamples.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.errors import TranslationError
from repro.automata.explicit import Nfa, Regex
from repro.storelogic import ast
from repro.stores.model import NIL_ID, CellKind, Store


def eval_formula(formula: object, store: Store,
                 env: Optional[Dict[str, int]] = None) -> bool:
    """Truth value of ``formula`` in ``store``.

    ``env`` carries values of bound cell variables (used internally by
    quantifiers); bound names shadow program variables.
    """
    return _Evaluator(store).formula(formula, env or {})


def eval_term(term: object, store: Store,
              env: Optional[Dict[str, int]] = None) -> Optional[int]:
    """The cell a term denotes, or None when undefined."""
    return _Evaluator(store).term(term, env or {})


class _Evaluator:
    def __init__(self, store: Store) -> None:
        self.store = store
        self._route_nfas: Dict[int, Nfa] = {}

    # -- terms ----------------------------------------------------------

    def term(self, node: object, env: Dict[str, int]) -> Optional[int]:
        if isinstance(node, ast.TermNil):
            return NIL_ID
        if isinstance(node, ast.TermVar):
            if node.name in env:
                return env[node.name]
            return self.store.var(node.name)
        if isinstance(node, ast.TermDeref):
            base = self.term(node.base, env)
            if base is None:
                return None
            return self._deref(base, node.field)
        raise TranslationError(f"unknown term node {node!r}")

    def _deref(self, ident: int, field: str) -> Optional[int]:
        cell = self.store.cell(ident)
        if cell.kind is not CellKind.RECORD:
            return None
        record = self.store.schema.record(cell.type_name or "")
        info = record.field_of(cell.variant or "")
        if info is None or info.name != field:
            return None
        return cell.next  # None when uninitialised

    # -- formulas -------------------------------------------------------

    def formula(self, node: object, env: Dict[str, int]) -> bool:
        if isinstance(node, ast.STrue):
            return True
        if isinstance(node, ast.SFalse):
            return False
        if isinstance(node, ast.SEq):
            left = self.term(node.left, env)
            right = self.term(node.right, env)
            return left is not None and left == right
        if isinstance(node, ast.SRoute):
            left = self.term(node.left, env)
            right = self.term(node.right, env)
            if left is None or right is None:
                return False
            return self._route_holds(node.route, left, right)
        if isinstance(node, ast.SNot):
            return not self.formula(node.inner, env)
        if isinstance(node, ast.SAnd):
            return self.formula(node.left, env) and \
                self.formula(node.right, env)
        if isinstance(node, ast.SOr):
            return self.formula(node.left, env) or \
                self.formula(node.right, env)
        if isinstance(node, ast.SImplies):
            return (not self.formula(node.left, env)) or \
                self.formula(node.right, env)
        if isinstance(node, ast.SIff):
            return self.formula(node.left, env) == \
                self.formula(node.right, env)
        if isinstance(node, (ast.SEx, ast.SAll)):
            universal = isinstance(node, ast.SAll)
            return self._quantified(node, env, universal)
        raise TranslationError(f"unknown formula node {node!r}")

    def _quantified(self, node: object, env: Dict[str, int],
                    universal: bool) -> bool:
        cells = [cell.ident for cell in self.store.cells()]

        def go(names: Tuple[str, ...], current: Dict[str, int]) -> bool:
            if not names:
                body = node.body  # type: ignore[attr-defined]
                return self.formula(body, current)
            name, rest = names[0], names[1:]
            results = (go(rest, {**current, name: ident})
                       for ident in cells)
            return all(results) if universal else any(results)

        return go(node.names, env)  # type: ignore[attr-defined]

    # -- routing --------------------------------------------------------

    def _route_holds(self, route: object, source: int,
                     target: int) -> bool:
        nfa = self._route_nfas.get(id(route))
        if nfa is None:
            nfa = _route_regex(route).to_nfa()
            self._route_nfas[id(route)] = nfa
        # BFS over (cell, nfa-state) pairs.
        start = {(source, q) for q in nfa.eps_closure(nfa.initial)}
        seen: Set[Tuple[int, int]] = set(start)
        frontier = list(start)
        while frontier:
            cell_id, state = frontier.pop()
            if cell_id == target and state in nfa.accepting:
                return True
            for (src, symbol), targets in nfa.transitions.items():
                if src != state:
                    continue
                for moved in self._apply_symbol(symbol, cell_id):
                    for nxt in nfa.eps_closure(targets):
                        pair = (moved, nxt)
                        if pair not in seen:
                            seen.add(pair)
                            frontier.append(pair)
        return False

    def _apply_symbol(self, symbol: object,
                      cell_id: int) -> Iterable[int]:
        if isinstance(symbol, ast.RouteField):
            moved = self._deref(cell_id, symbol.field)
            return [] if moved is None else [moved]
        cell = self.store.cell(cell_id)
        if isinstance(symbol, ast.RouteTestNil):
            return [cell_id] if cell.kind is CellKind.NIL else []
        if isinstance(symbol, ast.RouteTestGarb):
            return [cell_id] if cell.kind is CellKind.GARBAGE else []
        if isinstance(symbol, ast.RouteTestVariant):
            matches = (cell.kind is CellKind.RECORD
                       and cell.type_name == symbol.type_name
                       and cell.variant == symbol.variant)
            return [cell_id] if matches else []
        raise TranslationError(f"unknown routing symbol {symbol!r}")


def _route_regex(route: object) -> Regex:
    """Lower a routing relation to a Regex over traversal/test symbols."""
    if isinstance(route, (ast.RouteField, ast.RouteTestNil,
                          ast.RouteTestGarb, ast.RouteTestVariant)):
        return Regex.symbol(route)
    if isinstance(route, ast.RouteCat):
        return _route_regex(route.left) + _route_regex(route.right)
    if isinstance(route, ast.RouteUnion):
        return _route_regex(route.left) | _route_regex(route.right)
    if isinstance(route, ast.RouteStar):
        return _route_regex(route.inner).star()
    raise TranslationError(f"unknown routing node {route!r}")
