"""The paper's logic of stores (§3).

A first-order logic whose terms denote cells: program variables,
``nil``, and pointer traversals; atomic formulas are (in)equality and
*routing relations* — regular expressions over pointer traversals and
tests (``nil?``, ``garb?``, ``(T:v)?``) relating two cells.

* :mod:`repro.storelogic.ast` — formula/term/route representations;
* :mod:`repro.storelogic.parser` — the assertion syntax used in
  ``{...}`` program annotations;
* :mod:`repro.storelogic.eval` — evaluation against a concrete
  :class:`Store` (test oracle + counterexample explanation);
* :mod:`repro.storelogic.translate` — translation into M2L against a
  symbolic store interpretation (the verifier's path);
* :mod:`repro.storelogic.check` — name/type checking of assertions
  against a schema.
"""

from repro.storelogic.ast import (RouteCat, RouteField, RouteStar,
                                  RouteTestGarb, RouteTestNil,
                                  RouteTestVariant, RouteUnion, SAll, SAnd,
                                  SEq, SEx, SFalse, SIff, SImplies, SNot,
                                  SOr, SRoute, STrue, TermDeref, TermNil,
                                  TermVar)
from repro.storelogic.parser import parse_formula
from repro.storelogic.eval import eval_formula
from repro.storelogic.check import check_formula

__all__ = [
    "RouteCat", "RouteField", "RouteStar", "RouteTestGarb", "RouteTestNil",
    "RouteTestVariant", "RouteUnion", "SAll", "SAnd", "SEq", "SEx",
    "SFalse", "SIff", "SImplies", "SNot", "SOr", "SRoute", "STrue",
    "TermDeref", "TermNil", "TermVar", "check_formula", "eval_formula",
    "parse_formula",
]
