"""Translation of store-logic assertions into M2L.

Given a :class:`SymbolicStore` interpretation, every assertion becomes
an M2L formula over the initial string's tracks (paper §6: "it turns
out to be a straightforward task to inductively translate formulas of
our store logic into equivalent formulas of M2L").

* cell terms become *position functions* (true at the position the
  term denotes, nowhere when the term is undefined);
* atomic formulas existentially bind positions for their terms, so
  they are false on undefined terms — the partial-term semantics;
* routing relations translate structurally; Kleene star uses one
  second-order quantifier ("every R-closed set containing the source
  contains the target");
* cell-variable quantifiers are relativised to cells (nil, record, or
  garbage positions — never lim positions).

Assertions must have been resolved with
:func:`repro.storelogic.check.check_formula` first (pointer aliases in
variant tests rewritten to record type names).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import TranslationError
from repro.mso.ast import Formula, Var, VarKind
from repro.mso.build import FormulaBuilder as F
from repro.storelogic import ast
from repro.stores.encode import record_label
from repro.symbolic.state import (PosFn, Rel2, SymbolicStore, fresh_pos,
                                  memo1)


def translate_formula(formula: object, store: SymbolicStore) -> Formula:
    """Translate a checked assertion under the given interpretation."""
    return _Translator(store).formula(formula, {})


class _Translator:
    def __init__(self, store: SymbolicStore) -> None:
        self.store = store

    # -- terms ----------------------------------------------------------

    def term(self, node: object, env: Dict[str, Var]) -> PosFn:
        if isinstance(node, ast.TermNil):
            return memo1(lambda p: F.first(p))
        if isinstance(node, ast.TermVar):
            bound = env.get(node.name)
            if bound is not None:
                return memo1(lambda p, b=bound: F.eq_pos(b, p))
            if node.name not in self.store.var_pos:
                raise TranslationError(
                    f"unknown variable {node.name} in assertion")
            return self.store.var_pos[node.name]
        if isinstance(node, ast.TermDeref):
            base = self.term(node.base, env)
            deref = self.store.deref(node.field)

            def step(p: Var) -> Formula:
                mid = fresh_pos("tt")
                return F.ex1([mid], F.and_(base(mid), deref(mid, p)))

            return memo1(step)
        raise TranslationError(f"unknown term node {node!r}")

    # -- routing --------------------------------------------------------

    def route(self, node: object) -> Rel2:
        if isinstance(node, ast.RouteField):
            return self.store.deref(node.field)
        if isinstance(node, ast.RouteTestNil):
            return lambda p, q: F.and_(F.eq_pos(p, q), F.first(p))
        if isinstance(node, ast.RouteTestGarb):
            return lambda p, q: F.and_(F.eq_pos(p, q), self.store.garb(p))
        if isinstance(node, ast.RouteTestVariant):
            label = record_label(node.type_name, node.variant)
            if label not in self.store.label_of:
                raise TranslationError(
                    f"unknown label {node.type_name}:{node.variant}")
            fn = self.store.label_of[label]
            return lambda p, q: F.and_(F.eq_pos(p, q), fn(p))
        if isinstance(node, ast.RouteCat):
            left = self.route(node.left)
            right = self.route(node.right)

            def cat(p: Var, q: Var) -> Formula:
                mid = fresh_pos("rc")
                return F.ex1([mid], F.and_(left(p, mid), right(mid, q)))

            return cat
        if isinstance(node, ast.RouteUnion):
            left = self.route(node.left)
            right = self.route(node.right)
            return lambda p, q: F.or_(left(p, q), right(p, q))
        if isinstance(node, ast.RouteStar):
            inner = self.route(node.inner)

            def star(p: Var, q: Var) -> Formula:
                closure = Var.fresh("rs", VarKind.SECOND)
                a, b = fresh_pos("rs"), fresh_pos("rs")
                closed = F.all1([a, b], F.implies(
                    F.and_(F.mem(a, closure), inner(a, b)),
                    F.mem(b, closure)))
                return F.all2([closure], F.implies(
                    F.and_(F.mem(p, closure), closed),
                    F.mem(q, closure)))

            return star
        raise TranslationError(f"unknown routing node {node!r}")

    # -- formulas -------------------------------------------------------

    def formula(self, node: object, env: Dict[str, Var]) -> Formula:
        if isinstance(node, ast.STrue):
            return F.conj([])
        if isinstance(node, ast.SFalse):
            return F.disj([])
        if isinstance(node, ast.SEq):
            left = self.term(node.left, env)
            right = self.term(node.right, env)
            here = fresh_pos("se")
            return F.ex1([here], F.and_(left(here), right(here)))
        if isinstance(node, ast.SRoute):
            left = self.term(node.left, env)
            right = self.term(node.right, env)
            relation = self.route(node.route)
            p, q = fresh_pos("sr"), fresh_pos("sr")
            return F.ex1([p, q], F.conj([left(p), right(q),
                                         relation(p, q)]))
        if isinstance(node, ast.SNot):
            return F.not_(self.formula(node.inner, env))
        if isinstance(node, ast.SAnd):
            return F.and_(self.formula(node.left, env),
                          self.formula(node.right, env))
        if isinstance(node, ast.SOr):
            return F.or_(self.formula(node.left, env),
                         self.formula(node.right, env))
        if isinstance(node, ast.SImplies):
            return F.implies(self.formula(node.left, env),
                             self.formula(node.right, env))
        if isinstance(node, ast.SIff):
            return F.iff(self.formula(node.left, env),
                         self.formula(node.right, env))
        if isinstance(node, (ast.SEx, ast.SAll)):
            universal = isinstance(node, ast.SAll)
            inner_env = dict(env)
            cell_vars = []
            for name in node.names:
                cell_var = fresh_pos(name)
                inner_env[name] = cell_var
                cell_vars.append(cell_var)
            body = self.formula(node.body, inner_env)
            domain = F.conj(self.store.is_cell(v) for v in cell_vars)
            if universal:
                return F.all1(cell_vars, F.implies(domain, body))
            return F.ex1(cell_vars, F.and_(domain, body))
        raise TranslationError(f"unknown formula node {node!r}")
