"""Pretty-printing of store-logic assertions.

``pretty_formula`` emits the same concrete syntax
:mod:`repro.storelogic.parser` reads; printing then re-parsing yields
a structurally equal formula (up to the sugar the parser resolves:
``<>`` prints as ``~(... = ...)``'s sugared form and ``R+`` as
``R.R*``).
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.storelogic import ast

_PREC_IFF = 0
_PREC_IMPLIES = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_UNARY = 4


def pretty_formula(formula: object) -> str:
    """Render an assertion in the annotation syntax."""
    return _formula(formula, 0)


def pretty_route(route: object) -> str:
    """Render a routing relation."""
    return _route(route, 0)


def _parens(text: str, prec: int, context: int) -> str:
    return f"({text})" if prec < context else text


def _formula(node: object, context: int) -> str:
    if isinstance(node, ast.STrue):
        return "true"
    if isinstance(node, ast.SFalse):
        return "false"
    if isinstance(node, ast.SEq):
        return f"{_term(node.left)} = {_term(node.right)}"
    if isinstance(node, ast.SRoute):
        route = _route(node.route, 0)
        if node.left == node.right:
            return f"<{route}>{_term(node.right)}"
        return f"{_term(node.left)}<{route}>{_term(node.right)}"
    if isinstance(node, ast.SNot):
        if isinstance(node.inner, ast.SEq):
            inner = node.inner
            return f"{_term(inner.left)} <> {_term(inner.right)}"
        return _parens(f"~{_formula(node.inner, _PREC_UNARY)}",
                       _PREC_UNARY, context)
    if isinstance(node, ast.SAnd):
        text = (f"{_formula(node.left, _PREC_AND)} & "
                f"{_formula(node.right, _PREC_AND)}")
        return _parens(text, _PREC_AND, context + 1)
    if isinstance(node, ast.SOr):
        text = (f"{_formula(node.left, _PREC_OR)} | "
                f"{_formula(node.right, _PREC_OR)}")
        return _parens(text, _PREC_OR, context + 1)
    if isinstance(node, ast.SImplies):
        text = (f"{_formula(node.left, _PREC_IMPLIES + 1)} => "
                f"{_formula(node.right, _PREC_IMPLIES)}")
        return _parens(text, _PREC_IMPLIES, context + 1)
    if isinstance(node, ast.SIff):
        text = (f"{_formula(node.left, _PREC_IFF + 1)} <=> "
                f"{_formula(node.right, _PREC_IFF + 1)}")
        return _parens(text, _PREC_IFF, context + 1)
    if isinstance(node, (ast.SEx, ast.SAll)):
        word = "ex" if isinstance(node, ast.SEx) else "all"
        names = ", ".join(node.names)
        text = f"{word} {names}: {_formula(node.body, 0)}"
        return _parens(text, 0, context + 1)
    raise TranslationError(f"unknown formula node {node!r}")


def _term(node: object) -> str:
    if isinstance(node, ast.TermNil):
        return "nil"
    if isinstance(node, ast.TermVar):
        return node.name
    if isinstance(node, ast.TermDeref):
        return f"{_term(node.base)}^.{node.field}"
    raise TranslationError(f"unknown term node {node!r}")


#: Routing precedence: union < concatenation < postfix.
_R_UNION = 0
_R_CAT = 1
_R_POST = 2


def _route(node: object, context: int) -> str:
    if isinstance(node, ast.RouteField):
        return node.field
    if isinstance(node, ast.RouteTestNil):
        return "nil?"
    if isinstance(node, ast.RouteTestGarb):
        return "garb?"
    if isinstance(node, ast.RouteTestVariant):
        return f"({node.type_name}:{node.variant})?"
    if isinstance(node, ast.RouteCat):
        text = (f"{_route(node.left, _R_CAT)}."
                f"{_route(node.right, _R_CAT)}")
        return _parens(text, _R_CAT, context + 1)
    if isinstance(node, ast.RouteUnion):
        text = (f"{_route(node.left, _R_UNION)}+"
                f"{_route(node.right, _R_UNION)}")
        return _parens(text, _R_UNION, context + 1)
    if isinstance(node, ast.RouteStar):
        return f"{_route(node.inner, _R_POST + 1)}*"
    raise TranslationError(f"unknown routing node {node!r}")
