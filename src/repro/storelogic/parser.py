"""Parser for the assertion syntax of the store logic.

The concrete syntax follows the paper's examples::

    x<next*>p & p^.next = nil
    all c, d: c<next>d => <garb?>d
    ~<(List:red)?>p => x<next*>p
    ex g: <garb?>g

Operators (loosest first): ``<=>``, ``=>`` (right associative),
``|``/``or``, ``&``/``and``, ``~``/``not``; quantifier bodies extend
as far right as possible.  ``c1 <> c2`` is parsed as ``~(c1 = c2)``
and ``<R>c`` as ``c<R>c``.

In routing relations ``+`` is *union* when a relation follows and the
postfix "one or more" otherwise, so both ``x<next+>p`` and
``a+b`` parse as the paper intends.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List

from repro.errors import ParseError
from repro.storelogic import ast


class _Kind(enum.Enum):
    IDENT = "identifier"
    LPAREN = "("
    RPAREN = ")"
    COLON = ":"
    COMMA = ","
    DOT = "."
    CARET = "^"
    QUESTION = "?"
    STAR = "*"
    PLUS = "+"
    LT = "<"
    GT = ">"
    EQ = "="
    NEQ = "<>"
    AND = "&"
    OR = "|"
    NOT = "~"
    IMPLIES = "=>"
    IFF = "<=>"
    EOF = "end of formula"


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=>|<>|=>|[()=:,.^?*+<>&|~!])
""", re.VERBOSE)

_OP_KINDS = {
    "(": _Kind.LPAREN, ")": _Kind.RPAREN, ":": _Kind.COLON,
    ",": _Kind.COMMA, ".": _Kind.DOT, "^": _Kind.CARET,
    "?": _Kind.QUESTION, "*": _Kind.STAR, "+": _Kind.PLUS,
    "<": _Kind.LT, ">": _Kind.GT, "=": _Kind.EQ, "<>": _Kind.NEQ,
    "&": _Kind.AND, "|": _Kind.OR, "~": _Kind.NOT, "!": _Kind.NOT,
    "=>": _Kind.IMPLIES, "<=>": _Kind.IFF,
}


@dataclass(frozen=True)
class _Token:
    kind: _Kind
    value: str
    column: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise ParseError(
                f"bad character {text[index]!r} in formula", 1, index + 1)
        if match.lastgroup == "ident":
            tokens.append(_Token(_Kind.IDENT, match.group(), index + 1))
        elif match.lastgroup == "op":
            tokens.append(_Token(_OP_KINDS[match.group()], match.group(),
                                 index + 1))
        index = match.end()
    tokens.append(_Token(_Kind.EOF, "", len(text) + 1))
    return tokens


def parse_formula(text: str) -> object:
    """Parse an assertion; raises ParseError on malformed input."""
    parser = _Parser(_tokenize(text), text)
    formula = parser.formula()
    parser.expect(_Kind.EOF)
    return formula


class _Parser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self._tokens = tokens
        self._index = 0
        self._source = source

    def peek(self, offset: int = 0) -> _Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> _Token:
        token = self.peek()
        if token.kind is not _Kind.EOF:
            self._index += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} (at column {token.column} of {self._source!r})",
            1, token.column)

    def expect(self, kind: _Kind) -> _Token:
        if self.peek().kind is not kind:
            raise self.error(f"expected {kind.value}")
        return self.next()

    def at_word(self, word: str) -> bool:
        token = self.peek()
        return token.kind is _Kind.IDENT and token.value == word

    # -- formulas -------------------------------------------------------

    def formula(self) -> object:
        return self._iff()

    def _iff(self) -> object:
        left = self._implies()
        while self.peek().kind is _Kind.IFF:
            self.next()
            left = ast.SIff(left, self._implies())
        return left

    def _implies(self) -> object:
        left = self._or()
        if self.peek().kind is _Kind.IMPLIES:
            self.next()
            return ast.SImplies(left, self._implies())
        return left

    def _or(self) -> object:
        left = self._and()
        while self.peek().kind is _Kind.OR or self.at_word("or"):
            self.next()
            left = ast.SOr(left, self._and())
        return left

    def _and(self) -> object:
        left = self._unary()
        while self.peek().kind is _Kind.AND or self.at_word("and"):
            self.next()
            left = ast.SAnd(left, self._unary())
        return left

    def _unary(self) -> object:
        token = self.peek()
        if token.kind is _Kind.NOT or self.at_word("not"):
            self.next()
            return ast.SNot(self._unary())
        if self.at_word("all") or self.at_word("ex"):
            universal = token.value == "all"
            self.next()
            names = [self.expect(_Kind.IDENT).value]
            while self.peek().kind is _Kind.COMMA:
                self.next()
                names.append(self.expect(_Kind.IDENT).value)
            self.expect(_Kind.COLON)
            body = self.formula()
            node = ast.SAll if universal else ast.SEx
            return node(tuple(names), body)
        return self._primary()

    def _primary(self) -> object:
        token = self.peek()
        if self.at_word("true"):
            self.next()
            return ast.STrue()
        if self.at_word("false"):
            self.next()
            return ast.SFalse()
        if token.kind is _Kind.LPAREN:
            self.next()
            inner = self.formula()
            self.expect(_Kind.RPAREN)
            return inner
        if token.kind is _Kind.LT:
            self.next()
            route = self._route()
            self.expect(_Kind.GT)
            term = self._term()
            return ast.SRoute(term, route, term)
        return self._relation()

    def _relation(self) -> object:
        left = self._term()
        token = self.peek()
        if token.kind is _Kind.EQ:
            self.next()
            return ast.SEq(left, self._term())
        if token.kind is _Kind.NEQ:
            self.next()
            return ast.SNot(ast.SEq(left, self._term()))
        if token.kind is _Kind.LT:
            self.next()
            route = self._route()
            self.expect(_Kind.GT)
            return ast.SRoute(left, route, self._term())
        raise self.error("expected '=', '<>' or '<R>' after a term")

    # -- terms ----------------------------------------------------------

    def _term(self) -> object:
        token = self.peek()
        if token.kind is not _Kind.IDENT:
            raise self.error("expected a cell term")
        self.next()
        term: object = ast.TermNil() if token.value == "nil" \
            else ast.TermVar(token.value)
        while self.peek().kind is _Kind.CARET:
            self.next()
            self.expect(_Kind.DOT)
            field = self.expect(_Kind.IDENT).value
            term = ast.TermDeref(term, field)
        return term

    # -- routing relations ------------------------------------------------

    def _route(self) -> object:
        left = self._route_cat()
        while self.peek().kind is _Kind.PLUS and \
                self._starts_route(self.peek(1)):
            self.next()
            left = ast.RouteUnion(left, self._route_cat())
        return left

    def _route_cat(self) -> object:
        left = self._route_postfix()
        while self.peek().kind is _Kind.DOT:
            self.next()
            left = ast.RouteCat(left, self._route_postfix())
        return left

    def _route_postfix(self) -> object:
        inner = self._route_primary()
        while True:
            token = self.peek()
            if token.kind is _Kind.STAR:
                self.next()
                inner = ast.RouteStar(inner)
            elif token.kind is _Kind.PLUS and \
                    not self._starts_route(self.peek(1)):
                self.next()
                inner = ast.route_plus(inner)
            else:
                return inner

    def _starts_route(self, token: _Token) -> bool:
        return token.kind in (_Kind.IDENT, _Kind.LPAREN)

    def _route_primary(self) -> object:
        token = self.peek()
        if token.kind is _Kind.IDENT:
            self.next()
            if self.peek().kind is _Kind.QUESTION:
                self.next()
                if token.value == "nil":
                    return ast.RouteTestNil()
                if token.value == "garb":
                    return ast.RouteTestGarb()
                raise self.error(
                    f"unknown test {token.value}?; use nil?, garb? or "
                    f"(T:v)?")
            return ast.RouteField(token.value)
        if token.kind is _Kind.LPAREN:
            if self.peek(1).kind is _Kind.IDENT and \
                    self.peek(2).kind is _Kind.COLON:
                self.next()
                type_name = self.expect(_Kind.IDENT).value
                self.expect(_Kind.COLON)
                variant = self.expect(_Kind.IDENT).value
                self.expect(_Kind.RPAREN)
                self.expect(_Kind.QUESTION)
                return ast.RouteTestVariant(type_name, variant)
            self.next()
            inner = self._route()
            self.expect(_Kind.RPAREN)
            return inner
        raise self.error("expected a routing relation")
