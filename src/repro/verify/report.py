"""Textual reports of verification results.

Formats single-program reports for the CLI and the rows of the
paper's §6 statistics table (Program | Time | Formula | States |
Nodes) for the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.verify.engine import VerificationResult

TABLE_HEADER = (f"{'Program':<12} {'Time (s)':>9} {'Formula':>9} "
                f"{'States':>7} {'Nodes':>7}  Valid")


def format_table_row(result: VerificationResult) -> str:
    """One row of the §6-style statistics table."""
    return (f"{result.program:<12} {result.seconds:>9.2f} "
            f"{result.formula_size:>9} {result.max_states:>7} "
            f"{result.max_nodes:>7}  {'yes' if result.valid else 'NO'}")


def format_table(results: Iterable[VerificationResult]) -> str:
    """The whole statistics table."""
    lines = [TABLE_HEADER, "-" * len(TABLE_HEADER)]
    lines.extend(format_table_row(result) for result in results)
    return "\n".join(lines)


def format_result(result: VerificationResult,
                  verbose: bool = False) -> str:
    """Full report for one program."""
    lines: List[str] = []
    verdict = "VERIFIED" if result.valid else "FAILED"
    lines.append(f"{result.program}: {verdict} "
                 f"({len(result.results)} subgoals, "
                 f"{result.seconds:.2f}s, formula size "
                 f"{result.formula_size}, max automaton "
                 f"{result.max_states} states / {result.max_nodes} "
                 f"BDD nodes)")
    for subgoal_result in result.results:
        mark = "ok " if subgoal_result.valid else "FAIL"
        lines.append(f"  [{mark}] {subgoal_result.description} "
                     f"({subgoal_result.seconds:.2f}s, "
                     f"{subgoal_result.stats.max_states} states)")
        if verbose or not subgoal_result.valid:
            for item in subgoal_result.subgoal.check:
                lines.append(f"         check: {item.name}")
    counterexample = result.counterexample
    if counterexample is not None:
        lines.append("counterexample:")
        lines.extend("  " + line
                     for line in counterexample.render().splitlines())
    return "\n".join(lines)
