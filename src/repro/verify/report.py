"""Textual and structured reports of verification results.

Formats single-program reports for the CLI, the rows of the paper's
§6 statistics table (Program | Time | Formula | States | Nodes) for
the benchmark harness, the per-phase timing tree behind the CLI's
``--profile`` flag, and the JSON document behind ``--json``.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.obs.trace import Span
from repro.verify.engine import Outcome, VerificationResult

TABLE_HEADER = (f"{'Program':<12} {'Time (s)':>9} {'Formula':>9} "
                f"{'States':>7} {'Nodes':>7}  Valid")


def _verdict_cell(result: VerificationResult) -> str:
    """The Valid column: yes/NO for decided runs, the degraded outcome
    name (TIMEOUT, BUDGET_EXCEEDED, ...) otherwise."""
    outcome = result.outcome
    if outcome is Outcome.VERIFIED:
        return "yes"
    if outcome is Outcome.FAILED:
        return "NO"
    return outcome.value


def format_table_row(result: VerificationResult) -> str:
    """One row of the §6-style statistics table."""
    return (f"{result.program:<12} {result.seconds:>9.2f} "
            f"{result.formula_size:>9} {result.max_states:>7} "
            f"{result.max_nodes:>7}  {_verdict_cell(result)}")


def format_table(results: Iterable[VerificationResult]) -> str:
    """The whole statistics table."""
    lines = [TABLE_HEADER, "-" * len(TABLE_HEADER)]
    lines.extend(format_table_row(result) for result in results)
    return "\n".join(lines)


def format_result(result: VerificationResult,
                  verbose: bool = False) -> str:
    """Full report for one program."""
    lines: List[str] = []
    lines.append(f"{result.program}: {result.outcome.value} "
                 f"({len(result.results)} subgoals, "
                 f"{result.seconds:.2f}s, formula size "
                 f"{result.formula_size}, max automaton "
                 f"{result.max_states} states / {result.max_nodes} "
                 f"BDD nodes)")
    if result.error is not None:
        lines.append(f"  error: {result.error}")
    for subgoal_result in result.results:
        outcome = subgoal_result.outcome
        if outcome is Outcome.VERIFIED:
            mark = "ok "
        elif outcome is Outcome.FAILED:
            mark = "FAIL"
        else:
            mark = outcome.value
        extra = ""
        if subgoal_result.attempts > 1:
            extra = f", {subgoal_result.attempts} attempts"
        if subgoal_result.statements_after < \
                subgoal_result.statements_before:
            extra += (f", sliced "
                      f"{subgoal_result.statements_before}->"
                      f"{subgoal_result.statements_after}")
        if subgoal_result.cache is not None and \
                subgoal_result.cache["hit"]:
            extra += ", cached"
        lines.append(f"  [{mark}] {subgoal_result.description} "
                     f"({subgoal_result.seconds:.2f}s, "
                     f"{subgoal_result.stats.max_states} states"
                     f"{extra})")
        if subgoal_result.error is not None:
            lines.append(f"         cause: {subgoal_result.error}")
        if verbose or outcome is Outcome.FAILED:
            for item in subgoal_result.subgoal.check:
                lines.append(f"         check: {item.name}")
    if result.interrupted:
        lines.append("  interrupted: run stopped early on Ctrl-C; "
                     "remaining subgoals undecided")
    counterexample = result.counterexample
    if counterexample is not None:
        lines.append("counterexample:")
        lines.extend("  " + line
                     for line in counterexample.render().splitlines())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Timing tree (--profile) and JSON (--json)
# ----------------------------------------------------------------------

def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:7.2f}s "
    return f"{seconds * 1000:7.1f}ms"


def _format_attrs(span: Span) -> str:
    shown = {key: value for key, value in span.attrs.items()
             if key not in ("description", "seconds")}
    if not shown:
        return ""
    return "  " + " ".join(f"{key}={value}"
                           for key, value in shown.items())


def format_span(span: Span, prefix: str = "") -> List[str]:
    """Render one span's subtree as indented lines."""
    lines = [f"{prefix}{span.name:<{max(1, 40 - len(prefix))}} "
             f"{_format_seconds(span.seconds)}{_format_attrs(span)}"]
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        connector = "└─ " if last else "├─ "
        lines.extend(_shift(format_span(child, ""),
                            prefix + connector,
                            prefix + ("   " if last else "│  ")))
    return lines


def _shift(lines: List[str], head: str, rest: str) -> List[str]:
    return [head + lines[0]] + [rest + line for line in lines[1:]]


def format_timing_tree(result: VerificationResult) -> str:
    """The per-phase timing tree of a traced verification.

    Each subgoal heads one tree whose total is exactly the subgoal's
    reported ``seconds``; untraced subgoals print a one-line summary.
    """
    lines = [f"{result.program}: timing "
             f"({len(result.results)} subgoals, "
             f"{result.seconds:.2f}s total)"]
    for subgoal_result in result.results:
        span = subgoal_result.span
        if span is None:
            lines.append(f"  {subgoal_result.description}: "
                         f"{subgoal_result.seconds:.2f}s "
                         f"(run with --profile or --trace for phases)")
            continue
        lines.append(f"  {subgoal_result.description} "
                     f"— {subgoal_result.seconds:.2f}s")
        for line in format_span(span)[1:]:
            lines.append("  " + line)
    return "\n".join(lines)


def format_json(result: VerificationResult, indent: int = 2) -> str:
    """The schema-stable JSON document of one verification run."""
    return json.dumps(result.to_dict(), indent=indent, sort_keys=False)
