"""The verification engine: programs -> subgoals -> decided triples.

The engine applies the paper's recipe (§5).  For
``{pre} ... while B do {I} S ... {post}`` it emits:

1. **entry** — from the precondition, the code before the loop
   establishes the invariant and makes the guard safe to evaluate;
2. **preservation** — from ``I`` and a true, safely evaluated guard,
   the body re-establishes ``I`` (and guard safety);
3. the verification of the rest continues from ``I & ~B``.

Cut-point assertions split triples the same way.  A missing invariant
or assertion stands for "well-formedness only", the system default.

Every subgoal is decided *completely*: the loop-free statements are
executed symbolically (:mod:`repro.symbolic.exec`), the obligation

    wf_string & assume & ~oom  =>  ~error & wf_graph & checks

is compiled to an automaton, and validity is its universality.  A
failing subgoal yields the shortest string in the difference language,
decoded into a concrete store and simulated for explanation (§5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, List, Optional, Sequence,
                    Tuple)

from repro.analysis.coi import cone_of_influence, guard_vars
from repro.errors import ExecutionError, VerificationError
from repro.mso.ast import Formula
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import CompilationStats, Compiler
from repro.pascal import check_program, parse_program
from repro.pascal.ast import Annotation
from repro.pascal.typed import (TAssertStmt, TIf, TWhile, TypedProgram)
from repro.storelogic.check import check_formula, free_program_vars
from repro.storelogic.eval import eval_formula
from repro.storelogic.parser import parse_formula
from repro.storelogic.ast import STrue
from repro.obs.metrics import current_metrics
from repro.stores.encode import Symbol, decode_store
from repro.stores.model import Store
from repro.storelogic.translate import translate_formula
from repro.obs import trace as obs_trace
from repro.obs.trace import Span
from repro.symbolic.exec import eval_guard, exec_statements
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import SymbolicStore, initial_store
from repro.symbolic.wf import wf_graph, wf_string
from repro.exec.interpreter import Interpreter, Trace
from repro.verify.counterexample import Counterexample, explain_failure


@dataclass
class Obligation:
    """One named assume/check item of a subgoal."""

    name: str
    #: builds the M2L formula under a given interpretation
    producer: Callable[[SymbolicStore], Formula]
    #: evaluates the same condition on a concrete store (explanations)
    concrete: Optional[Callable[[Store], bool]] = None
    #: the program variables the formula mentions (cone-of-influence
    #: seeds; see :mod:`repro.analysis.coi`)
    vars: FrozenSet[str] = frozenset()


@dataclass
class Subgoal:
    """A loop-free Hoare triple to decide."""

    description: str
    assume: List[Obligation]
    statements: Tuple[object, ...]
    check: List[Obligation]


@dataclass
class SubgoalResult:
    """Outcome of deciding one subgoal."""

    subgoal: Subgoal
    valid: bool
    counterexample: Optional[Counterexample]
    stats: CompilationStats
    formula_size: int
    seconds: float
    #: Phase timing tree of this decision, when a tracer was active;
    #: its total equals :attr:`seconds`.
    span: Optional[Span] = None
    #: Automaton tracks of the full store alphabet, and after the
    #: cone-of-influence reduction (equal when reduction is off).
    tracks_before: int = 0
    tracks_after: int = 0

    @property
    def description(self) -> str:
        return self.subgoal.description

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable schema; see
        :meth:`VerificationResult.to_dict`)."""
        counterexample = None
        if self.counterexample is not None:
            counterexample = {
                "description": self.counterexample.description,
                "explanation": self.counterexample.explanation,
            }
        return {
            "description": self.description,
            "valid": self.valid,
            "seconds": self.seconds,
            "formula_size": self.formula_size,
            "tracks_before": self.tracks_before,
            "tracks_after": self.tracks_after,
            "stats": self.stats.to_dict(),
            "span": self.span.to_dict() if self.span else None,
            "counterexample": counterexample,
        }


@dataclass
class VerificationResult:
    """Outcome of verifying a whole program."""

    program: str
    results: List[SubgoalResult] = field(default_factory=list)

    @property
    def valid(self) -> bool:
        """True iff every subgoal was decided valid."""
        return all(result.valid for result in self.results)

    @property
    def counterexample(self) -> Optional[Counterexample]:
        """The first counterexample, if any."""
        for result in self.results:
            if result.counterexample is not None:
                return result.counterexample
        return None

    @property
    def seconds(self) -> float:
        return sum(result.seconds for result in self.results)

    @property
    def formula_size(self) -> int:
        return sum(result.formula_size for result in self.results)

    @property
    def max_states(self) -> int:
        return max((result.stats.max_states for result in self.results),
                   default=0)

    @property
    def max_nodes(self) -> int:
        return max((result.stats.max_nodes for result in self.results),
                   default=0)

    @property
    def tracks_before(self) -> int:
        """Tracks of the full store alphabet (max over subgoals)."""
        return max((result.tracks_before for result in self.results),
                   default=0)

    @property
    def tracks_after(self) -> int:
        """Tracks actually compiled, after the cone-of-influence
        reduction (max over subgoals)."""
        return max((result.tracks_after for result in self.results),
                   default=0)

    def aggregate_stats(self) -> CompilationStats:
        """All subgoal statistics merged into one record (counters
        summed, high-water marks maximised)."""
        merged = CompilationStats()
        for result in self.results:
            merged.merge(result.stats)
        return merged

    def to_dict(self) -> Dict[str, object]:
        """A schema-stable, JSON-ready document of the whole run.

        Top-level keys: ``schema_version``, ``program``, ``valid``,
        ``seconds``, ``formula_size``, ``max_states``, ``max_nodes``,
        ``stats`` (merged), ``subgoals`` (each with ``description``,
        ``valid``, ``seconds``, ``formula_size``, ``stats``, ``span``,
        ``counterexample``).  New keys may be added; existing keys
        keep their meaning.
        """
        return {
            "schema_version": 1,
            "program": self.program,
            "valid": self.valid,
            "seconds": self.seconds,
            "formula_size": self.formula_size,
            "max_states": self.max_states,
            "max_nodes": self.max_nodes,
            "tracks_before": self.tracks_before,
            "tracks_after": self.tracks_after,
            "stats": self.aggregate_stats().to_dict(),
            "subgoals": [result.to_dict() for result in self.results],
        }


def verify_source(text: str, **kwargs: object) -> VerificationResult:
    """Parse, check and verify a program source."""
    return verify_program(check_program(parse_program(text)), **kwargs)


def verify_program(program: TypedProgram,
                   **kwargs: object) -> VerificationResult:
    """Verify a typed program."""
    return Verifier(program, **kwargs).verify()  # type: ignore[arg-type]


class Verifier:
    """Decides all of one program's subgoals.

    Args:
        program: the typed program to verify.
        minimize_during: minimise intermediate automata (ablation
            switch; leave True).
        simulate: run counterexamples through the concrete interpreter
            for richer explanations.
        stop_at_first_failure: skip remaining subgoals after one fails.
        reduce: drop automaton tracks of variables outside each
            subgoal's cone of influence (:mod:`repro.analysis.coi`).
            Verdicts and counterexamples are unaffected; automata only
            get smaller.  ``--no-reduce`` on the CLI turns it off.
        tracer: record phase spans into this tracer for the duration
            of :meth:`verify` (None leaves the process's active tracer
            in charge — usually the no-op sink).
    """

    def __init__(self, program: TypedProgram,
                 minimize_during: bool = True,
                 simulate: bool = True,
                 stop_at_first_failure: bool = False,
                 reduce: bool = True,
                 tracer: Optional[obs_trace.Tracer] = None) -> None:
        self.program = program
        self.minimize_during = minimize_during
        self.simulate = simulate
        self.reduce = reduce
        self.stop_at_first_failure = stop_at_first_failure
        self.tracer = tracer
        # One concrete interpreter serves every obligation and
        # counterexample simulation; it is stateless between runs.
        self._interpreter = Interpreter(program)
        # Guard formulas per (store generation, loop position): stable
        # identities, unlike id(), which may be reused after GC.
        self._guard_cache: Dict[Tuple[int, int, str],
                                Tuple[Formula, Formula]] = {}

    # ------------------------------------------------------------------

    def verify(self) -> VerificationResult:
        """Collect and decide every subgoal."""
        if self.tracer is not None:
            with obs_trace.activate(self.tracer):
                return self._verify()
        return self._verify()

    def _verify(self) -> VerificationResult:
        result = VerificationResult(self.program.name)
        with obs_trace.span("verify", program=self.program.name):
            with obs_trace.span("subgoals.split") as sp:
                subgoals = self.collect_subgoals()
                if sp:
                    sp.annotate(subgoals=len(subgoals))
            for subgoal in subgoals:
                result.results.append(self.decide(subgoal))
                if self.stop_at_first_failure and \
                        not result.results[-1].valid:
                    break
            # Gauges mirror the JSON report: the max over subgoals,
            # not whichever subgoal happened to be decided last.
            metrics = current_metrics()
            metrics.gauge("verify.tracks_before").set(
                result.tracks_before)
            metrics.gauge("verify.tracks_after").set(
                result.tracks_after)
        return result

    # ------------------------------------------------------------------
    # Subgoal collection
    # ------------------------------------------------------------------

    def collect_subgoals(self) -> List[Subgoal]:
        """Split the program into loop-free triples."""
        subgoals: List[Subgoal] = []
        pre = [self._assertion_obligation("precondition",
                                          self.program.pre)]
        post = [self._assertion_obligation("postcondition",
                                           self.program.post)]
        self._split(subgoals, pre, tuple(self.program.body), post,
                    "postcondition")
        return subgoals

    def _split(self, subgoals: List[Subgoal], assume: List[Obligation],
               statements: Tuple[object, ...], final: List[Obligation],
               final_desc: str) -> None:
        prefix: List[object] = []
        for statement in statements:
            if isinstance(statement, TWhile):
                inv = self._assertion_obligation(
                    f"invariant (line {statement.line})",
                    statement.invariant)
                guard_safe = self._guard_obligation(statement, safe=True)
                guard_true = self._guard_obligation(statement, value=True)
                guard_false = self._guard_obligation(statement,
                                                     value=False)
                subgoals.append(Subgoal(
                    f"loop entry (line {statement.line})",
                    assume, tuple(prefix), [inv, guard_safe]))
                self._split(subgoals, [inv, guard_safe, guard_true],
                            statement.body, [inv, guard_safe],
                            f"invariant preservation "
                            f"(line {statement.line})")
                assume = [inv, guard_safe, guard_false]
                prefix = []
            elif isinstance(statement, TAssertStmt):
                cut = self._assertion_obligation(
                    f"assertion (line {statement.line})",
                    statement.annotation)
                subgoals.append(Subgoal(
                    f"assertion (line {statement.line})",
                    assume, tuple(prefix), [cut]))
                assume = [cut]
                prefix = []
            else:
                self._reject_nested_loops(statement)
                prefix.append(statement)
        subgoals.append(Subgoal(final_desc, assume, tuple(prefix), final))

    def _reject_nested_loops(self, statement: object) -> None:
        if isinstance(statement, TIf):
            for inner in statement.then_body + statement.else_body:
                if isinstance(inner, (TWhile, TAssertStmt)):
                    raise VerificationError(
                        "loops and assertions inside conditional "
                        "branches are not supported; hoist the "
                        "conditional or add a cut-point assertion "
                        "before it", line=getattr(inner, "line", 0))
                self._reject_nested_loops(inner)

    # ------------------------------------------------------------------
    # Obligations
    # ------------------------------------------------------------------

    def _assertion_obligation(self, name: str,
                              annotation: Optional[Annotation]
                              ) -> Obligation:
        if annotation is None:
            formula: object = STrue()
            text = "true (well-formedness only)"
        else:
            formula = check_formula(parse_formula(annotation.text),
                                    self.program.schema)
            text = annotation.text
        return Obligation(
            name=f"{name}: {{{text}}}",
            producer=lambda st, f=formula: translate_formula(f, st),
            concrete=lambda store, f=formula: eval_formula(f, store),
            vars=free_program_vars(formula))

    def _guard_obligation(self, loop: TWhile, safe: bool = False,
                          value: Optional[bool] = None) -> Obligation:
        interpreter = self._interpreter

        def producer(st: SymbolicStore) -> Formula:
            val, err = self._eval_guard_cached(st, loop)
            if safe:
                return F.not_(err)
            return val if value else F.not_(val)

        def concrete(store: Store) -> bool:
            try:
                result = interpreter._guard(store, loop.cond)
            except ExecutionError:
                return not safe and value is None
            if safe:
                return True
            return result if value else not result

        kind = "guard is safe to evaluate" if safe else \
            f"guard is {'true' if value else 'false'}"
        return Obligation(name=f"{kind}: {loop.cond}",
                          producer=producer, concrete=concrete,
                          vars=guard_vars(loop.cond))

    def _eval_guard_cached(self, st: SymbolicStore,
                           loop: TWhile) -> Tuple[Formula, Formula]:
        # The guard is identified by its loop's position in the source
        # and its text, the store by its generation — both stable,
        # whereas id() values can be recycled once the objects from an
        # earlier decide() are garbage-collected, which would silently
        # return a formula built over a dead store's variables.
        key = (st.generation, loop.line, str(loop.cond))
        found = self._guard_cache.get(key)
        if found is None:
            found = eval_guard(st, loop.cond)
            self._guard_cache[key] = found
        return found

    # ------------------------------------------------------------------
    # Deciding one subgoal
    # ------------------------------------------------------------------

    def _subgoal_layout(self, subgoal: Subgoal) -> TrackLayout:
        """The track layout for one subgoal: the full alphabet, or the
        cone-of-influence subset when reduction is on."""
        schema = self.program.schema
        if not self.reduce:
            return TrackLayout(schema)
        # Assume obligations are evaluated on the initial store, so
        # their variables must keep their tracks no matter what the
        # statements later overwrite; only check obligations (read
        # from the final store) flow backward through kills.
        assume_vars: FrozenSet[str] = frozenset()
        for obligation in subgoal.assume:
            assume_vars |= obligation.vars
        check_vars: FrozenSet[str] = frozenset()
        for obligation in subgoal.check:
            check_vars |= obligation.vars
        keep = cone_of_influence(subgoal.statements, check_vars,
                                 schema, assume_seeds=assume_vars)
        return TrackLayout(schema, variables=keep)

    def decide(self, subgoal: Subgoal) -> SubgoalResult:
        """Decide one loop-free triple completely."""
        started = time.perf_counter()
        with obs_trace.span("subgoal",
                            description=subgoal.description) as sub:
            schema = self.program.schema
            compiler = Compiler(minimize_during=self.minimize_during)
            layout = self._subgoal_layout(subgoal)
            tracks_before = len(layout.labels) + len(schema.all_vars())
            tracks_after = len(layout.free_vars())
            current_metrics().counter("verify.tracks_dropped").inc(
                tracks_before - tracks_after)
            if sub:
                sub.annotate(tracks_before=tracks_before,
                             tracks_after=tracks_after)
            layout.register(compiler)
            st0 = initial_store(schema, layout)
            with obs_trace.span("exec.symbolic") as sp:
                outcome = exec_statements(st0, subgoal.statements)
                if sp:
                    sp.annotate(statements=len(subgoal.statements))
            with obs_trace.span("translate") as sp:
                assume = F.conj(
                    [wf_string(layout)]
                    + [item.producer(st0) for item in subgoal.assume]
                    + [F.not_(outcome.oom)])
                obligation = F.conj(
                    [F.not_(outcome.error), wf_graph(outcome.store)]
                    + [item.producer(outcome.store)
                       for item in subgoal.check])
                negation = F.and_(assume, F.not_(obligation))
                formula_size = negation.size()
                if sp:
                    sp.annotate(formula_size=formula_size)
            with obs_trace.span("compile") as sp:
                dfa = compiler.compile(negation)
                if sp:
                    sp.annotate(states=dfa.num_states,
                                nodes=dfa.bdd_node_count())
            with obs_trace.span("universality") as sp:
                word = dfa.shortest_accepted()
                if sp:
                    sp.annotate(valid=word is None,
                                word_length=None if word is None
                                else len(word))
            counterexample = None
            if word is not None:
                with obs_trace.span("counterexample"):
                    counterexample = self._build_counterexample(
                        subgoal, layout, compiler, word)
        # With tracing on, the reported time is exactly the subgoal
        # span's total, so the --profile tree sums up consistently.
        elapsed = sub.seconds if sub else time.perf_counter() - started
        if sub:
            sub.annotate(seconds=elapsed, valid=word is None)
        return SubgoalResult(subgoal=subgoal, valid=word is None,
                             counterexample=counterexample,
                             stats=compiler.stats,
                             formula_size=formula_size, seconds=elapsed,
                             span=sub if sub else None,
                             tracks_before=tracks_before,
                             tracks_after=tracks_after)

    # ------------------------------------------------------------------
    # Counterexamples
    # ------------------------------------------------------------------

    def _build_counterexample(self, subgoal: Subgoal,
                              layout: TrackLayout, compiler: Compiler,
                              word: Sequence[Dict[int, bool]]
                              ) -> Counterexample:
        with obs_trace.span("counterexample.decode") as sp:
            symbols = layout.word_to_symbols(word, compiler.tracks())
            # Variables reduced away carry no track; the reduced
            # system assumed them nil, so place them on position 0.
            dropped = layout.dropped_vars()
            if dropped and symbols:
                symbols[0] = Symbol(
                    symbols[0].label,
                    symbols[0].bitmap | frozenset(dropped))
            store = decode_store(self.program.schema, symbols)
            if sp:
                sp.annotate(word_length=len(word))
        trace: Optional[Trace] = None
        runtime_error: Optional[str] = None
        final_store: Optional[Store] = None
        failed: List[str] = []
        if self.simulate:
            with obs_trace.span("counterexample.simulate"):
                working = store.clone()
                trace = Trace()
                try:
                    self._interpreter.run_statements(
                        working, subgoal.statements, trace)
                    final_store = working
                except ExecutionError as exc:
                    runtime_error = str(exc)
                if final_store is not None:
                    for item in subgoal.check:
                        if item.concrete is not None and \
                                not item.concrete(final_store):
                            failed.append(item.name)
        explanation = explain_failure(final_store, failed, runtime_error)
        return Counterexample(description=subgoal.description,
                              symbols=symbols, store=store, trace=trace,
                              explanation=explanation)
