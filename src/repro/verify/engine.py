"""The verification engine: programs -> subgoals -> decided triples.

The engine applies the paper's recipe (§5).  For
``{pre} ... while B do {I} S ... {post}`` it emits:

1. **entry** — from the precondition, the code before the loop
   establishes the invariant and makes the guard safe to evaluate;
2. **preservation** — from ``I`` and a true, safely evaluated guard,
   the body re-establishes ``I`` (and guard safety);
3. the verification of the rest continues from ``I & ~B``.

Cut-point assertions split triples the same way.  A missing invariant
or assertion stands for "well-formedness only", the system default.

Every subgoal is decided *completely*: the loop-free statements are
executed symbolically (:mod:`repro.symbolic.exec`), the obligation

    wf_string & assume & ~oom  =>  ~error & wf_graph & checks

is compiled to an automaton, and validity is its universality.  A
failing subgoal yields the shortest string in the difference language,
decoded into a concrete store and simulated for explanation (§5).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import (Callable, Dict, FrozenSet, List, Optional, Sequence,
                    Tuple)

from repro.analysis.coi import cone_of_influence, guard_vars
from repro.analysis.fingerprint import subgoal_fingerprint
from repro.analysis.order import choose_order
from repro.analysis.slice import (SliceResult, dropped_statements,
                                  slice_statements, statement_count)
from repro.errors import ExecutionError, VerificationError
from repro.mso.ast import Formula
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import CompilationStats, Compiler
from repro.pascal import check_program, parse_program
from repro.pascal.ast import Annotation
from repro.pascal.typed import (TAssertStmt, TIf, TWhile, TypedProgram)
from repro.storelogic.check import check_formula, free_program_vars
from repro.storelogic.eval import eval_formula
from repro.storelogic.parser import parse_formula
from repro.storelogic.ast import STrue
from repro.obs.metrics import current_metrics
from repro.stores.encode import Symbol, decode_store
from repro.stores.model import Store
from repro.storelogic.translate import translate_formula
from repro.obs import trace as obs_trace
from repro.obs.trace import Span
from repro.robust import budget as robust_budget
from repro.robust import faults
from repro.robust.budget import Budget, BudgetExceeded
from repro.symbolic.exec import eval_guard, exec_statements
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import SymbolicStore, initial_store
from repro.symbolic.wf import wf_graph, wf_string
from repro.exec.interpreter import Interpreter, Trace
from repro.verify.cache import open_cache
from repro.verify.counterexample import Counterexample, explain_failure


class Outcome(Enum):
    """How one subgoal (or a whole run) ended.

    ``VERIFIED`` / ``FAILED`` are verdicts; the remaining members are
    *degraded* outcomes — the decision procedure did not finish, but
    the run carried on and recorded why:

    * ``TIMEOUT`` — the wall-clock deadline passed;
    * ``BUDGET_EXCEEDED`` — a node/state/step cap (or an injected
      budget fault) tripped on every attempt;
    * ``ERROR`` — an internal exception survived the retry ladder;
    * ``INTERRUPTED`` — the run stopped on Ctrl-C with subgoals still
      undecided (whole-run aggregate only).
    """

    VERIFIED = "VERIFIED"
    FAILED = "FAILED"
    TIMEOUT = "TIMEOUT"
    BUDGET_EXCEEDED = "BUDGET_EXCEEDED"
    ERROR = "ERROR"
    INTERRUPTED = "INTERRUPTED"

    @property
    def decided(self) -> bool:
        """True for real verdicts, False for degraded outcomes."""
        return self in (Outcome.VERIFIED, Outcome.FAILED)


#: Aggregation order: the *worst* subgoal outcome names the run.
_OUTCOME_SEVERITY = {
    Outcome.VERIFIED: 0,
    Outcome.TIMEOUT: 1,
    Outcome.BUDGET_EXCEEDED: 2,
    Outcome.INTERRUPTED: 3,
    Outcome.ERROR: 4,
    Outcome.FAILED: 5,
}


def _outcome_of_exception(exc: BaseException) -> Outcome:
    if isinstance(exc, BudgetExceeded):
        if exc.limit == robust_budget.LIMIT_DEADLINE:
            return Outcome.TIMEOUT
        return Outcome.BUDGET_EXCEEDED
    return Outcome.ERROR


def _describe_exception(exc: BaseException) -> str:
    if isinstance(exc, BudgetExceeded):
        return str(exc)
    message = str(exc)
    name = type(exc).__name__
    return f"{name}: {message}" if message else name


@dataclass
class Obligation:
    """One named assume/check item of a subgoal."""

    name: str
    #: builds the M2L formula under a given interpretation
    producer: Callable[[SymbolicStore], Formula]
    #: evaluates the same condition on a concrete store (explanations)
    concrete: Optional[Callable[[Store], bool]] = None
    #: the program variables the formula mentions (cone-of-influence
    #: seeds; see :mod:`repro.analysis.coi`)
    vars: FrozenSet[str] = frozenset()
    #: a line-free canonical key of the obligation's condition, used by
    #: the verdict-cache fingerprint (the display ``name`` embeds line
    #: numbers and would defeat caching across reflows)
    key: str = ""


@dataclass
class Subgoal:
    """A loop-free Hoare triple to decide."""

    description: str
    assume: List[Obligation]
    statements: Tuple[object, ...]
    check: List[Obligation]


@dataclass
class SubgoalResult:
    """Outcome of deciding one subgoal."""

    subgoal: Subgoal
    valid: bool
    counterexample: Optional[Counterexample]
    stats: CompilationStats
    formula_size: int
    seconds: float
    #: Phase timing tree of this decision, when a tracer was active;
    #: its total equals :attr:`seconds`.
    span: Optional[Span] = None
    #: Automaton tracks of the full store alphabet, and after the
    #: cone-of-influence reduction (equal when reduction is off).
    tracks_before: int = 0
    tracks_after: int = 0
    #: How the decision ended: a verdict (``VERIFIED``/``FAILED``) or
    #: a degraded outcome (``TIMEOUT``/``BUDGET_EXCEEDED``/``ERROR``).
    outcome: Outcome = Outcome.VERIFIED
    #: Human-readable cause for degraded outcomes, else None.
    error: Optional[str] = None
    #: Decision attempts made (2 when the retry ladder toggled the
    #: cone-of-influence reduction).
    attempts: int = 1
    #: Budget consumption of this subgoal (steps/seconds/tripped),
    #: None when no budget was active.
    budget: Optional[Dict[str, object]] = None
    #: Recursive statement counts of the subgoal before and after the
    #: statement-level backward slice (equal when slicing is off).
    statements_before: int = 0
    statements_after: int = 0
    #: The BDD track order the ordering pass chose for the kept
    #: program variables, None when the pass was off.
    variable_order: Optional[Tuple[str, ...]] = None
    #: Verdict-cache trace (``{"fingerprint": ..., "hit": bool}``) when
    #: a cache was consulted, else None.
    cache: Optional[Dict[str, object]] = None

    @property
    def description(self) -> str:
        return self.subgoal.description

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable schema; see
        :meth:`VerificationResult.to_dict`)."""
        counterexample = None
        if self.counterexample is not None:
            counterexample = {
                "description": self.counterexample.description,
                "explanation": self.counterexample.explanation,
            }
        return {
            "description": self.description,
            "valid": self.valid,
            "outcome": self.outcome.value,
            "error": self.error,
            "attempts": self.attempts,
            "budget": self.budget,
            "seconds": self.seconds,
            "formula_size": self.formula_size,
            "tracks_before": self.tracks_before,
            "tracks_after": self.tracks_after,
            "statements_before": self.statements_before,
            "statements_after": self.statements_after,
            "variable_order": (None if self.variable_order is None
                               else list(self.variable_order)),
            "cache": self.cache,
            "stats": self.stats.to_dict(),
            "span": self.span.to_dict() if self.span else None,
            "counterexample": counterexample,
        }


@dataclass
class VerificationResult:
    """Outcome of verifying a whole program."""

    program: str
    results: List[SubgoalResult] = field(default_factory=list)
    #: Front-end failure before any subgoal could be decided (only set
    #: by degraded drivers such as ``repro table --keep-going``).
    error: Optional[str] = None
    #: True when the run stopped early on KeyboardInterrupt; the
    #: recorded results are the subgoals decided before the interrupt.
    interrupted: bool = False
    #: The budget limits the run was configured with, None when
    #: unlimited.
    budget: Optional[Dict[str, object]] = None

    @property
    def valid(self) -> bool:
        """True iff every subgoal was decided valid (an interrupted or
        errored run is never valid — its verdict is unknown)."""
        if self.error is not None or self.interrupted:
            return False
        return all(result.valid for result in self.results)

    @property
    def outcome(self) -> Outcome:
        """The worst outcome across subgoals (``FAILED`` dominates,
        then ``ERROR``, ``INTERRUPTED``, ``BUDGET_EXCEEDED``,
        ``TIMEOUT``)."""
        worst = Outcome.VERIFIED
        if self.error is not None:
            worst = Outcome.ERROR
        elif self.interrupted:
            worst = Outcome.INTERRUPTED
        for result in self.results:
            if _OUTCOME_SEVERITY[result.outcome] > \
                    _OUTCOME_SEVERITY[worst]:
                worst = result.outcome
        return worst

    @property
    def counterexample(self) -> Optional[Counterexample]:
        """The first counterexample, if any."""
        for result in self.results:
            if result.counterexample is not None:
                return result.counterexample
        return None

    @property
    def seconds(self) -> float:
        return sum(result.seconds for result in self.results)

    @property
    def formula_size(self) -> int:
        return sum(result.formula_size for result in self.results)

    @property
    def max_states(self) -> int:
        return max((result.stats.max_states for result in self.results),
                   default=0)

    @property
    def max_nodes(self) -> int:
        return max((result.stats.max_nodes for result in self.results),
                   default=0)

    @property
    def tracks_before(self) -> int:
        """Tracks of the full store alphabet (max over subgoals)."""
        return max((result.tracks_before for result in self.results),
                   default=0)

    @property
    def tracks_after(self) -> int:
        """Tracks actually compiled, after the cone-of-influence
        reduction (max over subgoals)."""
        return max((result.tracks_after for result in self.results),
                   default=0)

    @property
    def statements_before(self) -> int:
        """Statements collected into subgoals (sum, recursive count)."""
        return sum(result.statements_before for result in self.results)

    @property
    def statements_after(self) -> int:
        """Statements kept by the backward slice (sum)."""
        return sum(result.statements_after for result in self.results)

    @property
    def cache_hits(self) -> int:
        """Subgoals answered from the verdict cache."""
        return sum(1 for result in self.results
                   if result.cache is not None and result.cache["hit"])

    def aggregate_stats(self) -> CompilationStats:
        """All subgoal statistics merged into one record (counters
        summed, high-water marks maximised)."""
        merged = CompilationStats()
        for result in self.results:
            merged.merge(result.stats)
        return merged

    def to_dict(self) -> Dict[str, object]:
        """A schema-stable, JSON-ready document of the whole run.

        Top-level keys: ``schema_version``, ``program``, ``valid``,
        ``outcome``, ``error``, ``interrupted``, ``budget``,
        ``seconds``, ``formula_size``, ``max_states``, ``max_nodes``,
        ``stats`` (merged), ``subgoals`` (each with ``description``,
        ``valid``, ``outcome``, ``error``, ``attempts``, ``budget``,
        ``seconds``, ``formula_size``, ``stats``, ``span``,
        ``counterexample``).  Schema version 2 added the outcome and
        budget keys; new keys may be added, existing keys keep their
        meaning.
        """
        return {
            "schema_version": 2,
            "program": self.program,
            "valid": self.valid,
            "outcome": self.outcome.value,
            "error": self.error,
            "interrupted": self.interrupted,
            "budget": self.budget,
            "seconds": self.seconds,
            "formula_size": self.formula_size,
            "max_states": self.max_states,
            "max_nodes": self.max_nodes,
            "tracks_before": self.tracks_before,
            "tracks_after": self.tracks_after,
            "statements_before": self.statements_before,
            "statements_after": self.statements_after,
            "cache_hits": self.cache_hits,
            "stats": self.aggregate_stats().to_dict(),
            "subgoals": [result.to_dict() for result in self.results],
        }


@dataclass
class SubgoalPlan:
    """One prepared decision attempt: the (possibly sliced) statements
    to execute symbolically and how to lay out the tracks."""

    #: apply the cone-of-influence alphabet reduction
    reduce: bool
    #: the statement slice (the identity slice when slicing is off)
    sliced: SliceResult
    #: the cone-of-influence variable subset, None for the full
    #: alphabet
    keep: Optional[FrozenSet[str]]
    #: the chosen track order, None for declaration order
    variable_order: Optional[Tuple[str, ...]]
    #: True when the chosen order differs from declaration order
    order_changed: bool = False

    @property
    def statements(self) -> Tuple[object, ...]:
        return self.sliced.statements

    def layout(self, schema) -> TrackLayout:
        return TrackLayout(schema, variables=self.keep,
                           order=self.variable_order)


def _trace_mode() -> str:
    """The active tracer's mode, as a cache-fingerprint component: a
    cached result carries its recorded span, so a hit must have been
    computed under the same tracing configuration."""
    tracer = obs_trace.current_tracer()
    if tracer is obs_trace.NULL_TRACER:
        return "off"
    return "detail" if getattr(tracer, "detail", False) else "on"


def verify_source(text: str, **kwargs: object) -> VerificationResult:
    """Parse, check and verify a program source."""
    return verify_program(check_program(parse_program(text)), **kwargs)


def verify_program(program: TypedProgram,
                   **kwargs: object) -> VerificationResult:
    """Verify a typed program."""
    return Verifier(program, **kwargs).verify()  # type: ignore[arg-type]


class Verifier:
    """Decides all of one program's subgoals.

    Args:
        program: the typed program to verify.
        minimize_during: minimise intermediate automata (ablation
            switch; leave True).
        simulate: run counterexamples through the concrete interpreter
            for richer explanations.
        stop_at_first_failure: skip remaining subgoals after one fails.
        reduce: drop automaton tracks of variables outside each
            subgoal's cone of influence (:mod:`repro.analysis.coi`).
            Verdicts and counterexamples are unaffected; automata only
            get smaller.  ``--no-reduce`` on the CLI turns it off.
        slice: drop dead pure-copy statements from each subgoal before
            symbolic execution (:mod:`repro.analysis.slice`).  Verdicts
            are unaffected (``docs/ARCHITECTURE.md`` §11); the
            transduction just wraps fewer predicates.  ``--no-slice``
            on the CLI turns it off.
        order: register BDD tracks in dependency-affinity order
            instead of declaration order (:mod:`repro.analysis.order`).
            Renames BDD levels only; ``--no-order`` turns it off.
        cache_dir: root of an on-disk verdict cache
            (:mod:`repro.verify.cache`); subgoals whose content
            fingerprint is already stored replay their decided result
            instead of recomputing it.  None (the default) disables
            caching.
        cache_max_mb: LRU size cap for the verdict cache in
            megabytes — least-recently-used entries are evicted once
            the cache grows past it.  None (the default) = unbounded.
        tracer: record phase spans into this tracer for the duration
            of :meth:`verify` (None leaves the process's active tracer
            in charge — usually the no-op sink).
        timeout: wall-clock budget in seconds for the whole run; the
            deadline is absolute, so once it passes every remaining
            subgoal degrades to a ``TIMEOUT`` outcome quickly.
        max_bdd_nodes: cap on each attempt's BDD-manager node count.
        max_states: cap on any single automaton's state count.
        max_steps: deterministic fuel cap on cooperative steps.
        retry_alternate: when a subgoal trips a (non-deadline) budget
            limit or raises, retry it once with the cone-of-influence
            reduction toggled before recording a degraded outcome.
        jobs: worker processes deciding subgoals concurrently; 1 (the
            default) keeps today's in-process sequential behaviour,
            ``N > 1`` fans subgoals out over :mod:`repro.parallel`.
            Verdicts, outcomes, counterexamples and per-subgoal stats
            are identical either way (see ``tests/diffcheck.py``); the
            run deadline is partitioned across subgoals instead of
            being one shared absolute clock.
    """

    def __init__(self, program: TypedProgram,
                 minimize_during: bool = True,
                 simulate: bool = True,
                 stop_at_first_failure: bool = False,
                 reduce: bool = True,
                 slice: bool = True,
                 order: bool = True,
                 cache_dir: Optional[str] = None,
                 cache_max_mb: Optional[float] = None,
                 tracer: Optional[obs_trace.Tracer] = None,
                 timeout: Optional[float] = None,
                 max_bdd_nodes: Optional[int] = None,
                 max_states: Optional[int] = None,
                 max_steps: Optional[int] = None,
                 retry_alternate: bool = True,
                 jobs: int = 1) -> None:
        self.program = program
        self.minimize_during = minimize_during
        self.simulate = simulate
        self.reduce = reduce
        self.slice = slice
        self.order = order
        self.cache_dir = cache_dir
        self.cache_max_mb = cache_max_mb
        self.cache = open_cache(cache_dir, max_mb=cache_max_mb)
        self.stop_at_first_failure = stop_at_first_failure
        self.tracer = tracer
        self.timeout = timeout
        self.max_bdd_nodes = max_bdd_nodes
        self.max_states = max_states
        self.max_steps = max_steps
        self.retry_alternate = retry_alternate
        self.jobs = jobs
        self._budget: Optional[Budget] = None
        # One concrete interpreter serves every obligation and
        # counterexample simulation; it is stateless between runs.
        self._interpreter = Interpreter(program)
        # Guard formulas per (store generation, loop position): stable
        # identities, unlike id(), which may be reused after GC.
        self._guard_cache: Dict[Tuple[int, int, str],
                                Tuple[Formula, Formula]] = {}

    # ------------------------------------------------------------------

    def _make_budget(self,
                     timeout: Optional[float]) -> Optional[Budget]:
        """A budget for the configured caps and the given wall-clock
        allowance, or None when every limit is unlimited."""
        if all(limit is None for limit in
               (timeout, self.max_bdd_nodes, self.max_states,
                self.max_steps)):
            return None
        return Budget(timeout=timeout,
                      max_bdd_nodes=self.max_bdd_nodes,
                      max_states=self.max_states,
                      max_steps=self.max_steps)

    def verify(self) -> VerificationResult:
        """Collect and decide every subgoal."""
        if self.jobs > 1:
            # The process-pool executor reassembles a result that is
            # verdict-identical to the sequential path below.
            from repro.parallel.pool import verify_parallel
            return verify_parallel(self)
        self._budget = self._make_budget(self.timeout)
        try:
            if self.tracer is not None:
                with obs_trace.activate(self.tracer):
                    return self._run_budgeted()
            return self._run_budgeted()
        finally:
            self._budget = None

    def _run_budgeted(self) -> VerificationResult:
        if self._budget is not None:
            with robust_budget.activate(self._budget):
                return self._verify()
        return self._verify()

    def decide_index(self, index: int,
                     timeout: Optional[float] = None) -> SubgoalResult:
        """Decide the subgoal at ``index`` of :meth:`collect_subgoals`.

        The parallel worker entry point: subgoal collection is
        deterministic, so parent and worker agree on the numbering
        without shipping the (unpicklable) subgoal closures across
        the process boundary.  ``timeout`` replaces the run timeout —
        the worker's slice of the partitioned run deadline.
        """
        effective = self.timeout if timeout is None else timeout
        self._budget = self._make_budget(effective)
        try:
            subgoals = self.collect_subgoals()
            subgoal = subgoals[index]
            if self._budget is not None:
                with robust_budget.activate(self._budget):
                    return self.decide(subgoal)
            return self.decide(subgoal)
        finally:
            self._budget = None

    def _verify(self) -> VerificationResult:
        result = VerificationResult(self.program.name)
        if self._budget is not None:
            result.budget = self._budget.limits()
        with obs_trace.span("verify", program=self.program.name):
            with obs_trace.span("subgoals.split") as sp:
                subgoals = self.collect_subgoals()
                if sp:
                    sp.annotate(subgoals=len(subgoals))
            metrics = current_metrics()
            for subgoal in subgoals:
                try:
                    decided = self.decide(subgoal)
                except KeyboardInterrupt:
                    # Ctrl-C: keep what was decided so far; the caller
                    # can still emit a partial structured report.
                    result.interrupted = True
                    break
                result.results.append(decided)
                metrics.counter(
                    f"verify.outcome.{decided.outcome.value}").inc()
                if self.stop_at_first_failure and not decided.valid:
                    break
            # Gauges mirror the JSON report: the max over subgoals,
            # not whichever subgoal happened to be decided last.
            metrics.gauge("verify.tracks_before").set(
                result.tracks_before)
            metrics.gauge("verify.tracks_after").set(
                result.tracks_after)
            if self._budget is not None:
                metrics.gauge("verify.budget.steps").set(
                    self._budget.steps)
        return result

    # ------------------------------------------------------------------
    # Subgoal collection
    # ------------------------------------------------------------------

    def collect_subgoals(self) -> List[Subgoal]:
        """Split the program into loop-free triples."""
        subgoals: List[Subgoal] = []
        pre = [self._assertion_obligation("precondition",
                                          self.program.pre)]
        post = [self._assertion_obligation("postcondition",
                                           self.program.post)]
        self._split(subgoals, pre, tuple(self.program.body), post,
                    "postcondition")
        return subgoals

    def _split(self, subgoals: List[Subgoal], assume: List[Obligation],
               statements: Tuple[object, ...], final: List[Obligation],
               final_desc: str) -> None:
        prefix: List[object] = []
        for statement in statements:
            if isinstance(statement, TWhile):
                inv = self._assertion_obligation(
                    f"invariant (line {statement.line})",
                    statement.invariant)
                guard_safe = self._guard_obligation(statement, safe=True)
                guard_true = self._guard_obligation(statement, value=True)
                guard_false = self._guard_obligation(statement,
                                                     value=False)
                subgoals.append(Subgoal(
                    f"loop entry (line {statement.line})",
                    assume, tuple(prefix), [inv, guard_safe]))
                self._split(subgoals, [inv, guard_safe, guard_true],
                            statement.body, [inv, guard_safe],
                            f"invariant preservation "
                            f"(line {statement.line})")
                assume = [inv, guard_safe, guard_false]
                prefix = []
            elif isinstance(statement, TAssertStmt):
                cut = self._assertion_obligation(
                    f"assertion (line {statement.line})",
                    statement.annotation)
                subgoals.append(Subgoal(
                    f"assertion (line {statement.line})",
                    assume, tuple(prefix), [cut]))
                assume = [cut]
                prefix = []
            else:
                self._reject_nested_loops(statement)
                prefix.append(statement)
        subgoals.append(Subgoal(final_desc, assume, tuple(prefix), final))

    def _reject_nested_loops(self, statement: object) -> None:
        if isinstance(statement, TIf):
            for inner in statement.then_body + statement.else_body:
                if isinstance(inner, (TWhile, TAssertStmt)):
                    raise VerificationError(
                        "loops and assertions inside conditional "
                        "branches are not supported; hoist the "
                        "conditional or add a cut-point assertion "
                        "before it", line=getattr(inner, "line", 0))
                self._reject_nested_loops(inner)

    # ------------------------------------------------------------------
    # Obligations
    # ------------------------------------------------------------------

    def _assertion_obligation(self, name: str,
                              annotation: Optional[Annotation]
                              ) -> Obligation:
        if annotation is None:
            formula: object = STrue()
            text = "true (well-formedness only)"
        else:
            formula = check_formula(parse_formula(annotation.text),
                                    self.program.schema)
            text = annotation.text
        return Obligation(
            name=f"{name}: {{{text}}}",
            producer=lambda st, f=formula: translate_formula(f, st),
            concrete=lambda store, f=formula: eval_formula(f, store),
            vars=free_program_vars(formula),
            key=("assert:true" if annotation is None
                 else f"assert:{annotation.text}"))

    def _guard_obligation(self, loop: TWhile, safe: bool = False,
                          value: Optional[bool] = None) -> Obligation:
        interpreter = self._interpreter

        def producer(st: SymbolicStore) -> Formula:
            val, err = self._eval_guard_cached(st, loop)
            if safe:
                return F.not_(err)
            return val if value else F.not_(val)

        def concrete(store: Store) -> bool:
            try:
                result = interpreter._guard(store, loop.cond)
            except ExecutionError:
                return not safe and value is None
            if safe:
                return True
            return result if value else not result

        kind = "guard is safe to evaluate" if safe else \
            f"guard is {'true' if value else 'false'}"
        return Obligation(name=f"{kind}: {loop.cond}",
                          producer=producer, concrete=concrete,
                          vars=guard_vars(loop.cond),
                          key=f"guard:{kind}:{loop.cond}")

    def _eval_guard_cached(self, st: SymbolicStore,
                           loop: TWhile) -> Tuple[Formula, Formula]:
        # The guard is identified by its loop's position in the source
        # and its text, the store by its generation — both stable,
        # whereas id() values can be recycled once the objects from an
        # earlier decide() are garbage-collected, which would silently
        # return a formula built over a dead store's variables.
        key = (st.generation, loop.line, str(loop.cond))
        found = self._guard_cache.get(key)
        if found is None:
            found = eval_guard(st, loop.cond)
            self._guard_cache[key] = found
        return found

    # ------------------------------------------------------------------
    # Deciding one subgoal
    # ------------------------------------------------------------------

    def _plan_subgoal(self, subgoal: Subgoal, reduce: bool,
                      slice_flag: bool, order_flag: bool) -> SubgoalPlan:
        """Prepare one decision attempt: slice the statements, compute
        the cone of influence of the *slice*, and choose the track
        order for the kept variables."""
        schema = self.program.schema
        # Assume obligations are evaluated on the initial store, so
        # their variables must keep their tracks no matter what the
        # statements later overwrite; only check obligations (read
        # from the final store) flow backward through kills — the
        # same asymmetry drives the statement slice.
        assume_vars: FrozenSet[str] = frozenset()
        for obligation in subgoal.assume:
            assume_vars |= obligation.vars
        check_vars: FrozenSet[str] = frozenset()
        for obligation in subgoal.check:
            check_vars |= obligation.vars
        if slice_flag:
            sliced = slice_statements(subgoal.statements, check_vars,
                                      schema)
        else:
            count = statement_count(subgoal.statements)
            sliced = SliceResult(tuple(subgoal.statements), count, count)
        keep: Optional[FrozenSet[str]] = None
        if reduce:
            keep = cone_of_influence(sliced.statements, check_vars,
                                     schema, assume_seeds=assume_vars)
        variable_order: Optional[Tuple[str, ...]] = None
        order_changed = False
        if order_flag:
            kept = (frozenset(schema.all_vars()) if keep is None
                    else frozenset(keep)) | frozenset(schema.data_vars)
            obligation_vars = [item.vars for item in
                               subgoal.assume + subgoal.check]
            variable_order = choose_order(sliced.statements,
                                          obligation_vars, schema, kept)
            declared = tuple(name for name in schema.all_vars()
                             if name in set(variable_order))
            order_changed = variable_order != declared
        return SubgoalPlan(reduce=reduce, sliced=sliced, keep=keep,
                           variable_order=variable_order,
                           order_changed=order_changed)

    def _fingerprint(self, subgoal: Subgoal, plan: SubgoalPlan) -> str:
        """The verdict-cache key of one subgoal under this engine's
        configuration.  Hashes the *original* statements — the slice,
        cone and order are deterministic functions of them (and the
        code fingerprint covers the functions themselves), while the
        counterexample simulation reads the originals directly."""
        options = (
            f"minimize={self.minimize_during}",
            f"simulate={self.simulate}",
            f"reduce={plan.reduce}",
            f"slice={self.slice}",
            f"order={self.order}",
            f"trace={_trace_mode()}",
        )
        return subgoal_fingerprint(
            self.program.schema, subgoal.statements,
            [item.key for item in subgoal.assume],
            [item.key for item in subgoal.check],
            options)

    def _cached_result(self, subgoal: Subgoal, fingerprint: str,
                       budget: Optional[Budget],
                       started: float) -> Optional[SubgoalResult]:
        """Replay a stored verdict, or None on a miss."""
        assert self.cache is not None
        wire = self.cache.lookup(fingerprint)
        if wire is None:
            return None
        # Deferred: wire.py imports this module at load time.
        from repro.parallel.wire import rebuild_subgoal_result
        try:
            result = rebuild_subgoal_result(wire, subgoal)
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — a bad entry is a miss
            current_metrics().counter(
                "verify.cache.rebuild_errors").inc()
            return None
        if not result.outcome.decided:
            return None
        elapsed = time.perf_counter() - started
        result.seconds = elapsed
        result.cache = {"fingerprint": fingerprint, "hit": True}
        result.budget = None
        if budget is not None:
            result.budget = {"steps": 0, "seconds": elapsed,
                             "tripped": None}
        return result

    def _store_result(self, fingerprint: str,
                      result: SubgoalResult) -> None:
        assert self.cache is not None
        from repro.parallel.wire import wire_subgoal_result
        try:
            wire = wire_subgoal_result(0, result)
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — caching must never fail
            return
        self.cache.store(fingerprint, wire)

    def analyze(self) -> Dict[str, object]:
        """The static per-subgoal preparation report behind
        ``repro analyze``: what the slice keeps and drops, which
        tracks the cone of influence removes, the chosen track order
        and the verdict-cache fingerprint.  Pure front-end work — no
        automata are built, nothing is decided."""
        schema = self.program.schema
        entries: List[Dict[str, object]] = []
        for subgoal in self.collect_subgoals():
            plan = self._plan_subgoal(subgoal, self.reduce, self.slice,
                                      self.order)
            layout = plan.layout(schema)
            dropped = dropped_statements(subgoal.statements,
                                         plan.statements)
            entries.append({
                "description": subgoal.description,
                "statements_before": plan.sliced.before,
                "statements_after": plan.sliced.after,
                "dropped_statements": [
                    {"line": getattr(statement, "line", 0),
                     "text": str(statement)}
                    for statement in dropped],
                "tracks_before": (len(layout.labels)
                                  + len(schema.all_vars())),
                "tracks_after": len(layout.free_vars()),
                "kept_vars": layout.var_names(),
                "dropped_vars": layout.dropped_vars(),
                "variable_order": (None if plan.variable_order is None
                                   else list(plan.variable_order)),
                "reordered": plan.order_changed,
                "fingerprint": self._fingerprint(subgoal, plan),
            })
        return {
            "schema_version": 1,
            "program": self.program.name,
            "options": {"reduce": self.reduce, "slice": self.slice,
                        "order": self.order},
            "subgoals": entries,
        }

    def decide(self, subgoal: Subgoal) -> SubgoalResult:
        """Decide one subgoal under the degradation ladder.

        The first attempt runs with the configured optimisations
        (reduction, slicing, ordering); when it trips a budget cap or
        raises, the subgoal is retried once with the reduction toggled
        and slicing/ordering off (``retry_alternate``).  A passed
        wall-clock deadline skips the retry — the second attempt could
        only time out again.  A subgoal that no attempt could decide
        is recorded with a degraded :class:`Outcome` instead of
        aborting the run.

        With a verdict cache configured, the subgoal's content
        fingerprint is looked up first; a hit replays the stored
        result.  Only first-attempt decided verdicts are stored — a
        degraded outcome or a retry-ladder success under a different
        plan says nothing about what the next run would compute.
        """
        budget = self._budget
        steps_before = budget.steps if budget is not None else 0
        started = time.perf_counter()
        plans = [self._plan_subgoal(subgoal, self.reduce, self.slice,
                                    self.order)]
        if self.retry_alternate:
            # The fallback rung toggles the reduction and turns the
            # other optimisations off — maximally different from the
            # first attempt.
            plans.append(self._plan_subgoal(subgoal, not self.reduce,
                                            False, False))
        fingerprint: Optional[str] = None
        if self.cache is not None:
            fingerprint = self._fingerprint(subgoal, plans[0])
            cached = self._cached_result(subgoal, fingerprint, budget,
                                         started)
            if cached is not None:
                return cached
        last_exc: Optional[BaseException] = None
        attempts = 0
        for plan in plans:
            attempts += 1
            try:
                faults.fire("verify.decide")
                result = self._decide_attempt(subgoal, plan)
            except KeyboardInterrupt:
                raise
            except BudgetExceeded as exc:
                last_exc = exc
                if exc.limit == robust_budget.LIMIT_DEADLINE:
                    break
                continue
            except Exception as exc:  # noqa: BLE001 — isolation is
                # the point: MemoryError/RecursionError included, any
                # attempt failure degrades instead of killing the run.
                last_exc = exc
                continue
            result.outcome = (Outcome.VERIFIED if result.valid
                              else Outcome.FAILED)
            result.attempts = attempts
            if budget is not None:
                result.budget = {
                    "steps": budget.steps - steps_before,
                    "seconds": result.seconds,
                    "tripped": None,
                }
            if fingerprint is not None:
                result.cache = {"fingerprint": fingerprint,
                                "hit": False}
                if attempts == 1 and result.outcome.decided:
                    self._store_result(fingerprint, result)
            return result
        elapsed = time.perf_counter() - started
        assert last_exc is not None
        outcome = _outcome_of_exception(last_exc)
        consumed: Optional[Dict[str, object]] = None
        if budget is not None:
            consumed = {
                "steps": budget.steps - steps_before,
                "seconds": elapsed,
                "tripped": ({"limit": last_exc.limit,
                             "site": last_exc.site}
                            if isinstance(last_exc, BudgetExceeded)
                            else None),
            }
        return SubgoalResult(subgoal=subgoal, valid=False,
                             counterexample=None,
                             stats=CompilationStats(),
                             formula_size=0, seconds=elapsed,
                             outcome=outcome,
                             error=_describe_exception(last_exc),
                             attempts=attempts, budget=consumed,
                             cache=(None if fingerprint is None else
                                    {"fingerprint": fingerprint,
                                     "hit": False}))

    def _decide_attempt(self, subgoal: Subgoal,
                        plan: SubgoalPlan) -> SubgoalResult:
        """Decide one loop-free triple completely (a single ladder
        attempt; fresh compiler and BDD manager each time)."""
        started = time.perf_counter()
        with obs_trace.span("subgoal",
                            description=subgoal.description) as sub:
            schema = self.program.schema
            compiler = Compiler(minimize_during=self.minimize_during)
            layout = plan.layout(schema)
            tracks_before = len(layout.labels) + len(schema.all_vars())
            tracks_after = len(layout.free_vars())
            metrics = current_metrics()
            metrics.counter("verify.tracks_dropped").inc(
                tracks_before - tracks_after)
            metrics.counter("verify.slice.statements_dropped").inc(
                plan.sliced.dropped)
            if plan.order_changed:
                metrics.counter("verify.order.reordered").inc()
            if sub:
                sub.annotate(tracks_before=tracks_before,
                             tracks_after=tracks_after,
                             statements_before=plan.sliced.before,
                             statements_after=plan.sliced.after,
                             reordered=plan.order_changed)
            layout.register(compiler)
            st0 = initial_store(schema, layout)
            with obs_trace.span("exec.symbolic") as sp:
                outcome = exec_statements(st0, plan.statements)
                if sp:
                    sp.annotate(statements=len(plan.statements))
            with obs_trace.span("translate") as sp:
                assume = F.conj(
                    [wf_string(layout)]
                    + [item.producer(st0) for item in subgoal.assume]
                    + [F.not_(outcome.oom)])
                obligation = F.conj(
                    [F.not_(outcome.error), wf_graph(outcome.store)]
                    + [item.producer(outcome.store)
                       for item in subgoal.check])
                negation = F.and_(assume, F.not_(obligation))
                formula_size = negation.size()
                if sp:
                    sp.annotate(formula_size=formula_size)
            with obs_trace.span("compile") as sp:
                dfa = compiler.compile(negation)
                if sp:
                    sp.annotate(states=dfa.num_states,
                                nodes=dfa.bdd_node_count())
            with obs_trace.span("universality") as sp:
                word = dfa.shortest_accepted()
                if sp:
                    sp.annotate(valid=word is None,
                                word_length=None if word is None
                                else len(word))
            counterexample = None
            if word is not None:
                with obs_trace.span("counterexample"):
                    counterexample = self._build_counterexample(
                        subgoal, layout, compiler, word)
        # With tracing on, the reported time is exactly the subgoal
        # span's total, so the --profile tree sums up consistently.
        elapsed = sub.seconds if sub else time.perf_counter() - started
        if sub:
            sub.annotate(seconds=elapsed, valid=word is None)
        return SubgoalResult(subgoal=subgoal, valid=word is None,
                             counterexample=counterexample,
                             stats=compiler.stats,
                             formula_size=formula_size, seconds=elapsed,
                             span=sub if sub else None,
                             tracks_before=tracks_before,
                             tracks_after=tracks_after,
                             statements_before=plan.sliced.before,
                             statements_after=plan.sliced.after,
                             variable_order=plan.variable_order)

    # ------------------------------------------------------------------
    # Counterexamples
    # ------------------------------------------------------------------

    def _build_counterexample(self, subgoal: Subgoal,
                              layout: TrackLayout, compiler: Compiler,
                              word: Sequence[Dict[int, bool]]
                              ) -> Counterexample:
        faults.fire("verify.counterexample")
        with obs_trace.span("counterexample.decode") as sp:
            symbols = layout.word_to_symbols(word, compiler.tracks())
            # Variables reduced away carry no track; the reduced
            # system assumed them nil, so place them on position 0.
            dropped = layout.dropped_vars()
            if dropped and symbols:
                symbols[0] = Symbol(
                    symbols[0].label,
                    symbols[0].bitmap | frozenset(dropped))
            store = decode_store(self.program.schema, symbols)
            if sp:
                sp.annotate(word_length=len(word))
        trace: Optional[Trace] = None
        runtime_error: Optional[str] = None
        final_store: Optional[Store] = None
        failed: List[str] = []
        if self.simulate:
            with obs_trace.span("counterexample.simulate"):
                working = store.clone()
                trace = Trace()
                try:
                    self._interpreter.run_statements(
                        working, subgoal.statements, trace)
                    final_store = working
                except ExecutionError as exc:
                    runtime_error = str(exc)
                if final_store is not None:
                    for item in subgoal.check:
                        if item.concrete is not None and \
                                not item.concrete(final_store):
                            failed.append(item.name)
        explanation = explain_failure(final_store, failed, runtime_error)
        return Counterexample(description=subgoal.description,
                              symbols=symbols, store=store, trace=trace,
                              explanation=explanation)
