"""Counterexamples: shortest failing initial stores, explained.

When a subgoal fails, the difference language ``L(assume) \\
L(obligation)`` is non-empty and regular; its shortest string decodes
to a concrete store (paper §5).  This module packages that store with
a simulation of the offending statements — the "small cartoon of store
modifications that explains the faulty behavior".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.stores.encode import Symbol
from repro.stores.model import Store
from repro.stores.render import render_store, render_symbols
from repro.exec.interpreter import Trace


@dataclass
class Counterexample:
    """A failing initial store for one subgoal."""

    #: Which subgoal failed (e.g. "postcondition", "invariant ...").
    description: str
    #: The encoded store string, in the paper's notation.
    symbols: List[Symbol]
    #: The decoded concrete store.
    store: Store
    #: Simulation of the subgoal's statements from the store (None
    #: when simulation was disabled).
    trace: Optional[Trace]
    #: What went wrong at the end (failed checks, wf violations, or
    #: the runtime error hit during simulation).
    explanation: str

    def render(self) -> str:
        """Human-readable account of the failure."""
        lines = [
            f"subgoal:  {self.description}",
            f"string:   {render_symbols(self.symbols)}",
            "initial store:",
            _indent(render_store(self.store)),
        ]
        if self.trace is not None and self.trace.steps:
            lines.append("simulation:")
            lines.append(_indent(self.trace.render()))
        lines.append(f"explanation: {self.explanation}")
        return "\n".join(lines)


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


def explain_failure(final_store: Optional[Store],
                    failed_checks: Sequence[str],
                    runtime_error: Optional[str]) -> str:
    """Compose the explanation string for a counterexample."""
    if runtime_error is not None:
        return f"runtime error: {runtime_error}"
    parts: List[str] = []
    if final_store is not None:
        violations = final_store.violations()
        if violations:
            parts.append("final store is not well-formed: "
                         + "; ".join(violations))
    if failed_checks:
        parts.append("failed obligations: " + "; ".join(failed_checks))
    if not parts:
        parts.append("obligation fails (symbolic check); the concrete "
                     "simulation could not localise it further")
    return " | ".join(parts)
