"""The Hoare-triple verifier (paper §4–§5).

:class:`Verifier` splits an annotated program into loop-free subgoals
(the three classic obligations per loop, plus one per cut-point
assertion), decides each one completely via the M2L pipeline, and
extracts shortest-store counterexamples for failures.
"""

from repro.verify.engine import (Outcome, Subgoal, SubgoalResult,
                                 VerificationResult, Verifier,
                                 verify_program, verify_source)
from repro.verify.counterexample import Counterexample
from repro.verify.report import format_result, format_table_row
from repro.verify.wp import (WpResult, triple_is_valid_by_inclusion,
                             wp_automaton)

__all__ = ["Counterexample", "Outcome", "Subgoal", "SubgoalResult",
           "VerificationResult", "Verifier", "WpResult",
           "format_result", "format_table_row",
           "triple_is_valid_by_inclusion", "verify_program",
           "verify_source", "wp_automaton"]
