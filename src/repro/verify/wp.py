"""Weakest preconditions as automata (paper §4).

The decision procedure's central object: for loop-free code ``S`` and
a postcondition ``Q``, the set of well-formed initial stores from
which ``S`` runs without error and ends in a well-formed store
satisfying ``Q`` is regular.  :func:`wp_automaton` computes it — the
paper's ``wp(S, Q)`` restricted to encodings of well-formed stores.

Triple validity is then exactly the inclusion the paper states::

    L(pre) ∩ L(alloc(S)) ⊆ L(wp(S, Q))

with ``alloc(S)`` the "enough free cells" assumption (our ``~oom``);
:func:`triple_is_valid_by_inclusion` decides triples that way, and the
test suite cross-validates it against the engine's implication check.
:meth:`WpResult.smallest_store` turns the machinery around: the
smallest input on which the code provably works — a synthesis use of
the decision procedure beyond what the paper demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.automata.symbolic import SymbolicDfa
from repro.mso.ast import Formula
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.pascal.typed import TypedProgram
from repro.storelogic.check import check_formula
from repro.storelogic.parser import parse_formula
from repro.storelogic.translate import translate_formula
from repro.stores.encode import decode_store
from repro.stores.model import Store
from repro.symbolic.exec import exec_statements
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_graph, wf_string


@dataclass
class WpResult:
    """The weakest-precondition automaton and its surroundings."""

    #: Accepts encodings of well-formed stores from which the code is
    #: safe and establishes the postcondition (out-of-memory excused).
    automaton: SymbolicDfa
    #: Accepts well-formed stores with too little memory for the code.
    oom_automaton: SymbolicDfa
    compiler: Compiler
    layout: TrackLayout

    def accepts_store(self, store: Store) -> bool:
        """Membership of a concrete well-formed store."""
        from repro.stores.encode import encode_store
        word = self.layout.symbols_to_word(encode_store(store),
                                           self.compiler.tracks())
        return self.automaton.accepts(word)

    def smallest_store(self, schema) -> Optional[Store]:
        """The smallest store in the wp language, or None if empty."""
        word = self.automaton.shortest_accepted()
        if word is None:
            return None
        symbols = self.layout.word_to_symbols(word,
                                              self.compiler.tracks())
        return decode_store(schema, symbols)


def wp_automaton(program: TypedProgram, statements,
                 postcondition: Optional[str] = None) -> WpResult:
    """The weakest precondition of loop-free ``statements``.

    ``postcondition`` is a store-logic assertion (None means
    "well-formedness only").  The result's language is over the
    canonical store encodings::

        wf_string & ~oom & ~error & wf_graph(final) & post(final)
        | wf_string & oom                     (excused stores)

    restricted to ``wf_string``, i.e. exactly the paper's
    ``alloc => wp`` reading: a store belongs when it either lacks the
    memory the code would need (excused) or runs safely into the
    postcondition.
    """
    schema = program.schema
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state0 = initial_store(schema, layout)
    outcome = exec_statements(state0, statements)
    post: Formula = F.conj([])
    if postcondition is not None:
        checked = check_formula(parse_formula(postcondition), schema)
        post = translate_formula(checked, outcome.store)
    wf0 = wf_string(layout)
    good = F.conj([F.not_(outcome.error), wf_graph(outcome.store), post])
    wp = F.and_(wf0, F.or_(outcome.oom, good))
    automaton = compiler.compile(wp)
    oom_automaton = compiler.compile(F.and_(wf0, outcome.oom))
    return WpResult(automaton=automaton, oom_automaton=oom_automaton,
                    compiler=compiler, layout=layout)


def triple_is_valid_by_inclusion(program: TypedProgram, statements,
                                 precondition: Optional[str],
                                 postcondition: Optional[str]) -> bool:
    """Decide a triple the way the paper phrases it: language
    inclusion ``L(pre) ∩ L(alloc) ⊆ L(wp(S, post))``.

    Equivalent to the engine's implication check; exists so the test
    suite can cross-validate the two formulations.
    """
    result = wp_automaton(program, statements, postcondition)
    compiler, layout = result.compiler, result.layout
    schema = program.schema
    state0 = initial_store(schema, layout)
    pre: Formula = F.conj([])
    if precondition is not None:
        checked = check_formula(parse_formula(precondition), schema)
        pre = translate_formula(checked, state0)
    lhs = compiler.compile(F.and_(wf_string(layout), pre))
    return result.automaton.includes(lhs)
