"""The content-addressed verdict cache.

Re-verifying an edited program repeats almost all of its work: only
the subgoals whose sliced statements or obligations changed can
decide differently.  This store maps a subgoal's content fingerprint
(:func:`repro.analysis.fingerprint.subgoal_fingerprint`) to its
decided result, so a warm run replays every unchanged subgoal from
disk — the seed of ROADMAP's verification-as-a-service direction.

Design points:

* **values are wire results** — the same flattened, picklable
  :class:`repro.parallel.wire.WireSubgoalResult` the parallel executor
  ships between processes, re-inflated against the caller's own
  ``Subgoal``.  A cache hit therefore renders and serialises exactly
  like a fresh decision (modulo wall-clock time and the hit marker);
* **only clean verdicts are stored** — a degraded outcome (timeout,
  budget, error) or a retry-ladder success under a *different* plan
  than the configured one says nothing about what the next run would
  see, so it is never cached;
* **corruption-tolerant** — any failure to read, unpickle or validate
  an entry is a miss, never an error (a cache must not be able to
  break the verifier); writes go through a per-process temporary file
  and an atomic rename, so a crashed or concurrent run leaves no
  half-written entry;
* **versioned** — entries live under a directory named by the cache
  schema version and the package code fingerprint, so upgrading the
  code abandons (rather than misreads) old entries; the fingerprint
  itself additionally covers the engine options and the store schema.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Optional

from repro.analysis.fingerprint import (CACHE_SCHEMA_VERSION,
                                        code_fingerprint)
from repro.obs.metrics import current_metrics


class VerdictCache:
    """An on-disk fingerprint -> wire-result store."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.directory = os.path.join(
            root, f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()}")

    # ------------------------------------------------------------------

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.pkl")

    def lookup(self, fingerprint: str):
        """The stored wire result, or None on a miss (including any
        corrupt, truncated or unreadable entry)."""
        started = time.perf_counter()
        try:
            with open(self._path(fingerprint), "rb") as handle:
                wire = pickle.load(handle)
            # Minimal shape check: a foreign object in the store must
            # read as a miss, not surface later as an attribute error.
            if not hasattr(wire, "outcome") or \
                    not hasattr(wire, "stats"):
                raise ValueError("not a wire subgoal result")
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — tolerance is the contract
            current_metrics().counter("verify.cache.misses").inc()
            return None
        metrics = current_metrics()
        metrics.counter("verify.cache.hits").inc()
        metrics.histogram("verify.cache.lookup_seconds").observe(
            time.perf_counter() - started)
        return wire

    def store(self, fingerprint: str, wire: object) -> None:
        """Persist one wire result; failures are silently dropped (a
        read-only or full cache directory must not fail the run)."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            final = self._path(fingerprint)
            temporary = f"{final}.{os.getpid()}.tmp"
            with open(temporary, "wb") as handle:
                pickle.dump(wire, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(temporary, final)
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — see docstring
            return
        current_metrics().counter("verify.cache.stores").inc()


def open_cache(cache_dir: Optional[str]) -> Optional["VerdictCache"]:
    """A cache rooted at ``cache_dir``, or None when caching is off."""
    if cache_dir is None:
        return None
    return VerdictCache(cache_dir)
