"""The content-addressed verdict cache.

Re-verifying an edited program repeats almost all of its work: only
the subgoals whose sliced statements or obligations changed can
decide differently.  This store maps a subgoal's content fingerprint
(:func:`repro.analysis.fingerprint.subgoal_fingerprint`) to its
decided result, so a warm run replays every unchanged subgoal from
disk — the seed of ROADMAP's verification-as-a-service direction.

Design points:

* **values are wire results** — the same flattened, picklable
  :class:`repro.parallel.wire.WireSubgoalResult` the parallel executor
  ships between processes, re-inflated against the caller's own
  ``Subgoal``.  A cache hit therefore renders and serialises exactly
  like a fresh decision (modulo wall-clock time and the hit marker);
* **only clean verdicts are stored** — a degraded outcome (timeout,
  budget, error) or a retry-ladder success under a *different* plan
  than the configured one says nothing about what the next run would
  see, so it is never cached;
* **corruption-tolerant** — any failure to read, unpickle or validate
  an entry is a miss, never an error (a cache must not be able to
  break the verifier); writes go through a per-process temporary file
  and an atomic rename, so a crashed or concurrent run leaves no
  half-written entry;
* **concurrency-safe** — a serving daemon has many workers deciding
  (and therefore storing) at once.  Each store takes a per-entry
  ``.lock`` file (``O_CREAT|O_EXCL``); a contended lock skips the
  store, which is sound because equal fingerprints name equal
  results.  Locks abandoned by crashed writers go stale after
  :data:`STALE_LOCK_SECONDS` and are swept away;
* **bounded** — an optional ``max_mb`` cap turns the store into an
  LRU: hits refresh an entry's mtime, and after each store the
  oldest entries are evicted until the cache fits.  Orphaned
  temporaries from crashed writers are swept by the same pass;
* **versioned** — entries live under a directory named by the cache
  schema version and the package code fingerprint, so upgrading the
  code abandons (rather than misreads) old entries; the fingerprint
  itself additionally covers the engine options and the store schema.

The ``serve.cache_write`` fault site fires at the top of
:meth:`VerdictCache.store`, so the injection matrix can prove a
failing cache write degrades to a skipped store, never a failed run.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Optional

from repro.analysis.fingerprint import (CACHE_SCHEMA_VERSION,
                                        code_fingerprint)
from repro.obs.metrics import current_metrics
from repro.robust import faults

#: A ``.lock`` or ``.tmp`` file older than this is an abandoned
#: artifact of a crashed writer, not a live one: stores take
#: milliseconds, so a minute of age is orders of magnitude past any
#: legitimate hold.
STALE_LOCK_SECONDS = 60.0


class VerdictCache:
    """An on-disk fingerprint -> wire-result store."""

    def __init__(self, root: str,
                 max_mb: Optional[float] = None) -> None:
        self.root = root
        self.max_mb = max_mb
        self.directory = os.path.join(
            root, f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()}")

    # ------------------------------------------------------------------

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, f"{fingerprint}.pkl")

    def lookup(self, fingerprint: str):
        """The stored wire result, or None on a miss (including any
        corrupt, truncated or unreadable entry)."""
        started = time.perf_counter()
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                wire = pickle.load(handle)
            # Minimal shape check: a foreign object in the store must
            # read as a miss, not surface later as an attribute error.
            if not hasattr(wire, "outcome") or \
                    not hasattr(wire, "stats"):
                raise ValueError("not a wire subgoal result")
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — tolerance is the contract
            current_metrics().counter("verify.cache.misses").inc()
            return None
        try:
            # A hit is a use: refresh the mtime so the LRU eviction
            # pass keeps hot entries and sheds cold ones.
            os.utime(path)
        except OSError:
            pass
        metrics = current_metrics()
        metrics.counter("verify.cache.hits").inc()
        metrics.histogram("verify.cache.lookup_seconds").observe(
            time.perf_counter() - started)
        return wire

    def store(self, fingerprint: str, wire: object) -> None:
        """Persist one wire result; failures are silently dropped (a
        read-only or full cache directory must not fail the run)."""
        try:
            faults.fire("serve.cache_write")
            os.makedirs(self.directory, exist_ok=True)
            final = self._path(fingerprint)
            lock = self._acquire_lock(final)
            if lock is None:
                # Another writer holds this fingerprint right now.
                # Equal fingerprints name equal results, so skipping
                # the duplicate store loses nothing — and never lets
                # two writers interleave on one entry.
                current_metrics().counter(
                    "verify.cache.lock_contended").inc()
                return
            try:
                temporary = f"{final}.{os.getpid()}.tmp"
                with open(temporary, "wb") as handle:
                    pickle.dump(wire, handle, pickle.HIGHEST_PROTOCOL)
                os.replace(temporary, final)
            finally:
                try:
                    os.unlink(lock)
                except OSError:
                    pass
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — see docstring
            current_metrics().counter("verify.cache.store_errors").inc()
            return
        current_metrics().counter("verify.cache.stores").inc()
        self._enforce_cap()

    # -- locking -------------------------------------------------------

    def _acquire_lock(self, final: str) -> Optional[str]:
        """Create ``<entry>.lock`` exclusively; returns its path, or
        None when another live writer holds it (stale locks are swept
        and re-tried once)."""
        lock = f"{final}.lock"
        for attempt in range(2):
            try:
                descriptor = os.open(lock,
                                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(descriptor)
                return lock
            except FileExistsError:
                if attempt:
                    return None
                try:
                    age = time.time() - os.path.getmtime(lock)
                except OSError:
                    continue  # holder just released; retry the open
                if age <= STALE_LOCK_SECONDS:
                    return None
                try:
                    os.unlink(lock)
                except OSError:
                    return None
                current_metrics().counter(
                    "verify.cache.stale_locks_removed").inc()
            except OSError:
                return None
        return None

    # -- LRU size cap --------------------------------------------------

    def _enforce_cap(self) -> None:
        """Evict least-recently-used entries until the cache fits
        ``max_mb``; sweep abandoned ``.tmp``/``.lock`` files as a side
        effect.  Best-effort throughout — eviction must never fail a
        run either."""
        if self.max_mb is None:
            return
        try:
            limit = self.max_mb * 1024 * 1024
            now = time.time()
            metrics = current_metrics()
            entries = []
            total = 0
            with os.scandir(self.directory) as scan:
                for entry in scan:
                    try:
                        if not entry.is_file():
                            continue
                        stat = entry.stat()
                    except OSError:
                        continue
                    if entry.name.endswith(".pkl"):
                        entries.append((stat.st_mtime, stat.st_size,
                                        entry.path))
                        total += stat.st_size
                    elif entry.name.endswith((".tmp", ".lock")) and \
                            now - stat.st_mtime > STALE_LOCK_SECONDS:
                        try:
                            os.unlink(entry.path)
                            metrics.counter(
                                "verify.cache.stale_locks_removed").inc()
                        except OSError:
                            pass
            metrics.gauge("verify.cache.bytes").set(total)
            if total <= limit:
                return
            entries.sort()  # oldest mtime (least recently used) first
            for _, size, path in entries:
                if total <= limit:
                    break
                if os.path.exists(f"{path}.lock"):
                    continue  # a live writer owns it; skip this round
                try:
                    os.unlink(path)
                except OSError:
                    continue
                total -= size
                metrics.counter("verify.cache.evictions").inc()
            metrics.gauge("verify.cache.bytes").set(total)
        except KeyboardInterrupt:
            raise
        except Exception:  # noqa: BLE001 — see docstring
            return


def open_cache(cache_dir: Optional[str],
               max_mb: Optional[float] = None
               ) -> Optional["VerdictCache"]:
    """A cache rooted at ``cache_dir``, or None when caching is off."""
    if cache_dir is None:
        return None
    return VerdictCache(cache_dir, max_mb=max_mb)
