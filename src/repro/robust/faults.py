"""Deterministic fault injection at named pipeline sites.

The degradation machinery (per-subgoal isolation, the retry ladder,
structured outcomes) is exactly the code that never runs on healthy
inputs, so it needs a way to be *made* to run: a fault plan names a
pipeline site and an exception kind, and the site's
:func:`fire` call raises that exception when the pipeline reaches it.

Plans come from the ``REPRO_FAULTS`` environment variable (the CLI
installs it on startup) or from the :func:`injected` context manager
(tests).  The spec grammar is a comma-separated list of rules::

    site:kind[:count]

where ``site`` is one of :data:`FAULT_SITES`, ``kind`` one of
:data:`FAULT_KINDS`, and the optional ``count`` limits how many times
the rule fires (default: every time the site is reached).  Examples::

    REPRO_FAULTS="mso.compile:memory"          # every compilation OOMs
    REPRO_FAULTS="verify.decide:budget:1"      # first attempt only
    REPRO_FAULTS="automata.product:error,exec.symbolic:timeout"

Kinds:

* ``budget`` — :class:`~repro.robust.budget.BudgetExceeded` with
  limit ``injected`` (degrades to a ``BUDGET_EXCEEDED`` outcome);
* ``timeout`` — :class:`BudgetExceeded` with limit ``deadline``
  (degrades to a ``TIMEOUT`` outcome, no retry);
* ``memory`` — :class:`MemoryError`;
* ``error`` — a plain :class:`RuntimeError` (an "impossible" internal
  failure);
* ``recursion`` — :class:`RecursionError`;
* ``interrupt`` — :class:`KeyboardInterrupt` (exercises the CLI's
  partial-report flush and exit code 130);
* ``exit`` — ``os._exit(13)``: the process dies instantly, without
  cleanup handlers, finally blocks or a traceback — a worker crash;
* ``kill`` — ``SIGKILL`` to the own process: indistinguishable from
  the kernel's OOM killer.  ``exit``/``kill`` (the *crash kinds*,
  :data:`CRASH_KINDS`) only make sense inside a worker process that a
  supervisor watches; fired in the main process they end the run, by
  design.

When no plan is installed, :func:`fire` is a single global read.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from repro.robust.budget import (LIMIT_DEADLINE, LIMIT_INJECTED,
                                 BudgetExceeded)

#: Every named injection point, in pipeline order.  Each name has a
#: matching ``fire(...)`` call in the module it names.
FAULT_SITES = (
    "verify.decide",          # repro.verify.engine — one per attempt
    "exec.symbolic",          # repro.symbolic.exec — statement lists
    "mso.compile",            # repro.mso.compile — formula -> DFA
    "automata.product",       # repro.automata.symbolic
    "automata.determinize",   # repro.automata.symbolic
    "automata.minimize",      # repro.automata.symbolic
    "verify.counterexample",  # repro.verify.engine — decode/simulate
    "serve.worker_spawn",     # repro.parallel.supervise — pool spawn
    "serve.heartbeat",        # repro.parallel.supervise — worker beat
    "serve.request_decode",   # repro.serve.protocol — request JSON
    "serve.cache_write",      # repro.verify.cache — entry store
)

#: Exception kinds a rule may raise.
FAULT_KINDS = ("budget", "timeout", "memory", "error", "recursion",
               "interrupt", "exit", "kill")

#: Kinds that terminate the process instead of raising — only
#: recoverable under a supervised worker pool.
CRASH_KINDS = ("exit", "kill")

#: The sites that fire only on serving/supervision paths (the matrix
#: tests drive them separately from the in-process decision sites).
SERVE_SITES = tuple(site for site in FAULT_SITES
                    if site.startswith("serve."))


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string is malformed."""


class _Rule:
    __slots__ = ("site", "kind", "remaining")

    def __init__(self, site: str, kind: str,
                 count: Optional[int]) -> None:
        self.site = site
        self.kind = kind
        self.remaining = count  # None = unlimited

    def raise_fault(self) -> None:
        if self.kind == "budget":
            raise BudgetExceeded(LIMIT_INJECTED, self.site, 0, 0)
        if self.kind == "timeout":
            raise BudgetExceeded(LIMIT_DEADLINE, self.site, 0, 0)
        if self.kind == "memory":
            raise MemoryError(f"injected out-of-memory at {self.site}")
        if self.kind == "recursion":
            raise RecursionError(f"injected recursion blowup at "
                                 f"{self.site}")
        if self.kind == "interrupt":
            raise KeyboardInterrupt
        if self.kind == "exit":
            os._exit(13)
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError(f"injected fault at {self.site}")


class FaultPlan:
    """A set of rules, indexed by site."""

    def __init__(self) -> None:
        self._rules: Dict[str, List[_Rule]] = {}

    def add(self, site: str, kind: str,
            count: Optional[int] = None) -> "FaultPlan":
        """Register one rule; returns self for chaining."""
        if site not in FAULT_SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; expected one of "
                f"{', '.join(FAULT_SITES)}")
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}")
        self._rules.setdefault(site, []).append(_Rule(site, kind, count))
        return self

    def fire(self, site: str) -> None:
        """Raise the configured fault if a live rule matches ``site``."""
        rules = self._rules.get(site)
        if not rules:
            return
        for rule in rules:
            if rule.remaining is None:
                rule.raise_fault()
            if rule.remaining > 0:
                rule.remaining -= 1
                rule.raise_fault()

    def to_spec(self) -> str:
        """Serialise back to the ``site:kind[:count]`` comma-list (the
        supervisor re-spawns workers with an updated spec)."""
        chunks: List[str] = []
        for rules in self._rules.values():
            for rule in rules:
                if rule.remaining is None:
                    chunks.append(f"{rule.site}:{rule.kind}")
                else:
                    chunks.append(
                        f"{rule.site}:{rule.kind}:{rule.remaining}")
        return ",".join(chunks)

    def consume_crash(self) -> bool:
        """Account one crash-kind firing in a *dead* worker.

        A worker that dies at an ``exit``/``kill`` site cannot report
        that its count-limited rule fired — so its supervisor, which
        observed the death, decrements the first live count-limited
        crash rule before re-spawning a replacement.  Returns True
        when a rule was decremented.  Unlimited crash rules are left
        alone: they mean "every attempt dies" (the quarantine path).
        """
        for rules in self._rules.values():
            for rule in rules:
                if rule.kind in CRASH_KINDS and \
                        rule.remaining is not None and \
                        rule.remaining > 0:
                    rule.remaining -= 1
                    return True
        return False


def parse_plan(spec: str) -> FaultPlan:
    """Parse a ``site:kind[:count]`` comma-list into a plan."""
    plan = FaultPlan()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) == 2:
            site, kind = parts
            count: Optional[int] = None
        elif len(parts) == 3:
            site, kind, count_text = parts
            try:
                count = int(count_text)
            except ValueError:
                raise FaultSpecError(
                    f"bad fault count in {chunk!r}") from None
        else:
            raise FaultSpecError(
                f"bad fault rule {chunk!r}; expected site:kind[:count]")
        plan.add(site.strip(), kind.strip(), count)
    return plan


_PLAN: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install a plan process-wide (None clears)."""
    global _PLAN
    _PLAN = plan


def install_from_env(environ: Optional[Dict[str, str]] = None) -> None:
    """Install the plan described by ``REPRO_FAULTS``, or clear it."""
    env = os.environ if environ is None else environ
    spec = env.get("REPRO_FAULTS", "")
    install(parse_plan(spec) if spec.strip() else None)


@contextmanager
def injected(spec: Union[str, FaultPlan]) -> Iterator[FaultPlan]:
    """Install a plan for the duration (test fixture entry point)."""
    plan = parse_plan(spec) if isinstance(spec, str) else spec
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def fire(site: str) -> None:
    """The per-site hook; a no-op unless a plan names ``site``."""
    if _PLAN is not None:
        _PLAN.fire(site)
