"""Resource governance: budgets, graceful degradation, fault injection.

The pipeline's worst case is non-elementary, so production use needs a
guarantee stronger than "usually fast": **every verification
terminates with a structured verdict**.  This package supplies the
three pieces:

* :mod:`repro.robust.budget` — a :class:`Budget` (wall-clock deadline,
  BDD-node cap, automaton-state cap, step fuel) with cheap cooperative
  cancellation checks threaded through the hot loops, raising a
  structured :class:`BudgetExceeded`;
* :mod:`repro.robust.faults` — deterministic fault injection at named
  pipeline sites (env var ``REPRO_FAULTS`` or the :func:`injected`
  context manager), so the error paths are testable;
* :mod:`repro.robust.recursion` — the :func:`deep_recursion` guard
  behind the hardened BDD recursions.

The verification engine (:mod:`repro.verify.engine`) consumes all
three: each subgoal is decided under the active budget, a tripped
budget or internal error triggers one retry under the alternate
cone-of-influence configuration, and irrecoverable subgoals are
recorded as ``TIMEOUT`` / ``BUDGET_EXCEEDED`` / ``ERROR`` outcomes
instead of aborting the run.
"""

from repro.robust.budget import (NULL_BUDGET, Budget, BudgetExceeded,
                                 activate, current_budget)
from repro.robust.faults import (FAULT_KINDS, FAULT_SITES, FaultPlan,
                                 FaultSpecError, injected, install,
                                 install_from_env, parse_plan)
from repro.robust.recursion import DEEP_RECURSION_LIMIT, deep_recursion

__all__ = ["Budget", "BudgetExceeded", "NULL_BUDGET", "activate",
           "current_budget", "FAULT_KINDS", "FAULT_SITES", "FaultPlan",
           "FaultSpecError", "injected", "install", "install_from_env",
           "parse_plan", "DEEP_RECURSION_LIMIT", "deep_recursion"]
