"""Guarding deep BDD recursions against Python's recursion limit.

A BDD over a long variable chain recurses once per level; with the
default interpreter limit of 1000 a few thousand levels kill the
operation with a :class:`RecursionError` half-way through a
verification.  Two defences, used by :mod:`repro.bdd.robdd`:

* the hottest recursion (binary ``apply``) is converted to an
  explicit work stack and cannot overflow at all;
* the remaining structurally-deep recursions (quantification,
  restriction, counting) run under :func:`deep_recursion`, which
  raises the interpreter limit for the duration and restores it on
  the way out.

MTBDD operations (:mod:`repro.bdd.mtbdd`) need neither: their
recursion depth is bounded by the number of automaton *tracks*, which
is small by construction (one per store label and live variable).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator

#: Default raised limit: enough for BDDs hundreds of times deeper than
#: any track layout produces, while staying well inside the C stack on
#: every platform CI runs (each frame of the guarded recursions is
#: small and non-generator).
DEEP_RECURSION_LIMIT = 50_000


@contextmanager
def deep_recursion(minimum: int = DEEP_RECURSION_LIMIT) -> Iterator[None]:
    """Raise the recursion limit to at least ``minimum``, restoring on
    exit.  Nests safely; a no-op when the limit is already high enough."""
    previous = sys.getrecursionlimit()
    if previous >= minimum:
        yield
        return
    sys.setrecursionlimit(minimum)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
