"""Resource budgets with cooperative cancellation.

The decision procedure is complete but non-elementary in the worst
case: one pathological subgoal can blow up in BDD nodes, automaton
states, or wall-clock time.  A :class:`Budget` turns those unbounded
failure modes into a structured, catchable :class:`BudgetExceeded` so
that every verification terminates with a verdict.

The pattern mirrors :mod:`repro.obs.trace`: a process-wide *active*
budget defaulting to :data:`NULL_BUDGET`, whose checks are no-ops, so
the cancellation points in the hot loops (:mod:`repro.bdd.robdd`,
:mod:`repro.bdd.mtbdd`, :mod:`repro.automata.symbolic`,
:mod:`repro.mso.compile`, :mod:`repro.symbolic.exec`) cost one
function call when no budget is set.

Three kinds of check, from hottest to coldest:

* :meth:`Budget.tick` — one per unit of work (a BDD cache miss, a
  product state, a formula node).  Counts steps; reads the wall clock
  only every :data:`TIME_CHECK_MASK` + 1 ticks.
* :meth:`Budget.check_nodes` / :meth:`Budget.check_states` — called
  with a current size when a structure grows (every few thousand BDD
  nodes, every automaton operation).
* :meth:`Budget.check_time` — an unconditional deadline read at phase
  boundaries (subgoal start, compilation start).

The wall-clock deadline is *absolute* — shared by every subgoal of a
run — while the node/state caps apply to each attempt's fresh BDD
manager.  See ``docs/ARCHITECTURE.md`` §9.

Example:
    >>> budget = Budget(max_steps=10)
    >>> with activate(budget):
    ...     try:
    ...         for _ in range(100):
    ...             tick("example")
    ...     except BudgetExceeded as exc:
    ...         print(exc.limit)
    steps
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

from repro.errors import ReproError

#: ``tick`` reads the wall clock once per this-many + 1 steps, so the
#: deadline check stays off the critical path of the BDD recursions.
TIME_CHECK_MASK = 0xFF

#: The limit names a :class:`BudgetExceeded` can carry.
LIMIT_DEADLINE = "deadline"
LIMIT_BDD_NODES = "bdd_nodes"
LIMIT_STATES = "automaton_states"
LIMIT_STEPS = "steps"
LIMIT_INJECTED = "injected"


class BudgetExceeded(ReproError):
    """A resource budget tripped a limit.

    Attributes:
        limit: which limit tripped — ``deadline``, ``bdd_nodes``,
            ``automaton_states``, ``steps``, or ``injected`` (from the
            fault-injection hook).
        site: the named pipeline site where the check fired
            (``bdd.apply``, ``automata.product``, ``mso.compile``, ...).
        value: the observed value at the trip point.
        cap: the configured limit.
    """

    def __init__(self, limit: str, site: str,
                 value: Union[int, float], cap: Union[int, float]) -> None:
        super().__init__(
            f"{limit} budget exceeded at {site} ({value} > {cap})")
        self.limit = limit
        self.site = site
        self.value = value
        self.cap = cap

    def __reduce__(self):
        # Exception's default pickling replays ``args`` (the formatted
        # message) into ``__init__``, which takes four positionals; a
        # budget trip must survive the worker->parent process boundary
        # intact, so rebuild from the structured fields instead.
        return (type(self), (self.limit, self.site, self.value, self.cap))


class Budget:
    """A cooperative resource budget for one verification run.

    Args:
        timeout: wall-clock seconds from construction; the deadline is
            absolute, so checks keep tripping once it has passed.
        max_bdd_nodes: cap on a BDD manager's total node count.
        max_states: cap on any single automaton's state count.
        max_steps: cap on total cooperative steps (cache misses,
            product states, ...) — a deterministic fuel limit.
    """

    __slots__ = ("timeout", "max_bdd_nodes", "max_states", "max_steps",
                 "started", "deadline", "steps", "tripped")

    #: Real budgets are active; the null budget is not.
    active = True

    def __init__(self, timeout: Optional[float] = None,
                 max_bdd_nodes: Optional[int] = None,
                 max_states: Optional[int] = None,
                 max_steps: Optional[int] = None) -> None:
        self.timeout = timeout
        self.max_bdd_nodes = max_bdd_nodes
        self.max_states = max_states
        self.max_steps = max_steps
        self.started = time.perf_counter()
        self.deadline = (None if timeout is None
                         else self.started + timeout)
        self.steps = 0
        self.tripped: Optional[BudgetExceeded] = None

    # ------------------------------------------------------------------

    def _trip(self, limit: str, site: str, value: Union[int, float],
              cap: Union[int, float]) -> None:
        exc = BudgetExceeded(limit, site, value, cap)
        self.tripped = exc
        raise exc

    def tick(self, site: str) -> None:
        """One unit of work at ``site``; the hot cancellation point."""
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            self._trip(LIMIT_STEPS, site, self.steps, self.max_steps)
        if self.deadline is not None and \
                (self.steps & TIME_CHECK_MASK) == 0 and \
                time.perf_counter() > self.deadline:
            self._trip(LIMIT_DEADLINE, site,
                       round(time.perf_counter() - self.started, 3),
                       self.timeout)

    def check_time(self, site: str) -> None:
        """Unconditional deadline check (phase boundaries)."""
        if self.deadline is not None and \
                time.perf_counter() > self.deadline:
            self._trip(LIMIT_DEADLINE, site,
                       round(time.perf_counter() - self.started, 3),
                       self.timeout)

    def check_nodes(self, site: str, count: int) -> None:
        """Check a BDD manager's node count against the cap."""
        if self.max_bdd_nodes is not None and count > self.max_bdd_nodes:
            self._trip(LIMIT_BDD_NODES, site, count, self.max_bdd_nodes)
        self.check_time(site)

    def check_states(self, site: str, count: int) -> None:
        """Check an automaton's state count against the cap."""
        if self.max_states is not None and count > self.max_states:
            self._trip(LIMIT_STATES, site, count, self.max_states)
        self.check_time(site)

    # ------------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return time.perf_counter() - self.started

    def limits(self) -> Dict[str, object]:
        """The configured limits, JSON-ready (None = unlimited)."""
        return {
            "timeout": self.timeout,
            "max_bdd_nodes": self.max_bdd_nodes,
            "max_states": self.max_states,
            "max_steps": self.max_steps,
        }

    def snapshot(self) -> Dict[str, object]:
        """Current consumption, JSON-ready."""
        tripped = None
        if self.tripped is not None:
            tripped = {"limit": self.tripped.limit,
                       "site": self.tripped.site}
        return {"steps": self.steps,
                "seconds": round(self.elapsed, 6),
                "tripped": tripped}


class _NullBudget:
    """The no-op budget: every check passes, nothing is counted."""

    __slots__ = ()
    active = False
    steps = 0
    tripped = None

    def tick(self, site: str) -> None:
        pass

    def check_time(self, site: str) -> None:
        pass

    def check_nodes(self, site: str, count: int) -> None:
        pass

    def check_states(self, site: str, count: int) -> None:
        pass

    def snapshot(self) -> None:
        return None


NULL_BUDGET = _NullBudget()

_ACTIVE: object = NULL_BUDGET


def current_budget():
    """The process's active budget (:data:`NULL_BUDGET` by default)."""
    return _ACTIVE


@contextmanager
def activate(budget: Budget) -> Iterator[Budget]:
    """Make ``budget`` the active budget for the duration."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = budget
    try:
        yield budget
    finally:
        _ACTIVE = previous


def tick(site: str) -> None:
    """Module-level hot cancellation point: ``current_budget().tick``."""
    _ACTIVE.tick(site)  # type: ignore[attr-defined]


def check_nodes(site: str, count: int) -> None:
    """Module-level node-cap check against the active budget."""
    _ACTIVE.check_nodes(site, count)  # type: ignore[attr-defined]


def check_states(site: str, count: int) -> None:
    """Module-level state-cap check against the active budget."""
    _ACTIVE.check_states(site, count)  # type: ignore[attr-defined]
