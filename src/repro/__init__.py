"""Automatic verification of pointer programs using monadic
second-order logic — a full reproduction of Jensen, Jørgensen,
Klarlund & Schwartzbach (PLDI 1997).

The package verifies annotated programs in a while-fragment of Pascal
over linear linked lists.  Assertions are written in a decidable
*store logic* (pointer equality, nil and garbage tests, regular
routing relations); Hoare triples over loop-free code are decided
completely by reduction to monadic second-order logic on finite
strings, compiled to automata with BDD-encoded transitions (the Mona
technique).  Failures come back as shortest concrete counterexample
stores with a simulated failure trace.

Quickstart::

    from repro import verify_source, format_result

    result = verify_source(open("reverse.pas").read())
    print(format_result(result))
    if not result.valid:
        print(result.counterexample.render())

Layer map (bottom-up): :mod:`repro.bdd` (ROBDDs and MTBDDs),
:mod:`repro.automata` (explicit + symbolic automata),
:mod:`repro.mso` (M2L-Str and its compiler), :mod:`repro.stores`
(concrete stores and the string encoding), :mod:`repro.pascal`
(front end), :mod:`repro.analysis` (CFGs, dataflow, lints, cone of
influence), :mod:`repro.storelogic` (the assertion logic),
:mod:`repro.symbolic` (transduction engine), :mod:`repro.exec`
(concrete interpreter), :mod:`repro.verify` (the Hoare engine), and
:mod:`repro.programs` (the paper's example corpus).
"""

from repro.analysis import (Diagnostic, Severity, cone_of_influence,
                            lint_program, lint_source)
from repro.errors import (ExecutionError, ParseError, ReproError,
                          StoreError, TranslationError, TypeError_,
                          VerificationError)
from repro.pascal import check_program, parse_program
from repro.storelogic import check_formula, eval_formula, parse_formula
from repro.stores import (Store, decode_store, encode_store, render_store,
                          render_symbols)
from repro.verify import (Counterexample, VerificationResult, Verifier,
                          format_result, verify_program, verify_source)
from repro.verify.report import (format_json, format_table,
                                 format_table_row, format_timing_tree)

__version__ = "1.0.0"

__all__ = [
    "Counterexample", "Diagnostic", "ExecutionError", "ParseError",
    "ReproError", "Severity", "Store", "StoreError", "TranslationError",
    "TypeError_", "VerificationError", "VerificationResult", "Verifier",
    "check_formula", "check_program", "cone_of_influence",
    "decode_store", "encode_store", "eval_formula", "format_json",
    "format_result", "format_table", "format_table_row",
    "format_timing_tree", "lint_program", "lint_source",
    "parse_formula", "parse_program", "render_store", "render_symbols",
    "verify_program", "verify_source",
]
