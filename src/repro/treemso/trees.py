"""Finite binary trees carrying track assignments.

A model of the tree logic is a finite binary tree; each node carries
one bit per variable track (first-order variables are encoded as
singleton node sets, as on strings).  Nodes may have a left child, a
right child, both, or neither.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(eq=False)
class Tree:
    """One tree node (and thereby the subtree below it).

    ``bits`` maps track indices to booleans; missing tracks read as
    False.  Nodes compare by identity (so they can live in sets — a
    second-order value is a frozenset of nodes).
    """

    bits: Dict[int, bool] = field(default_factory=dict)
    left: Optional["Tree"] = None
    right: Optional["Tree"] = None

    def nodes(self) -> List["Tree"]:
        """All nodes, in depth-first pre-order."""
        result = [self]
        if self.left is not None:
            result.extend(self.left.nodes())
        if self.right is not None:
            result.extend(self.right.nodes())
        return result

    def size(self) -> int:
        """Number of nodes."""
        return len(self.nodes())

    def bit(self, track: int) -> bool:
        """This node's bit for a track."""
        return self.bits.get(track, False)

    def with_bits(self, assignment: Dict["Tree", Dict[int, bool]]
                  ) -> "Tree":
        """A copy whose nodes carry extra bits from ``assignment``
        (keyed by the original node objects)."""
        bits = dict(self.bits)
        bits.update(assignment.get(self, {}))
        return Tree(bits,
                    self.left.with_bits(assignment)
                    if self.left else None,
                    self.right.with_bits(assignment)
                    if self.right else None)

    def render(self, names: Optional[Dict[int, str]] = None) -> str:
        """A small ASCII rendering, one node per line."""
        lines: List[str] = []

        def go(node: Optional["Tree"], prefix: str, tag: str) -> None:
            if node is None:
                return
            on = [str((names or {}).get(t, t))
                  for t, v in sorted(node.bits.items()) if v]
            lines.append(f"{prefix}{tag}[{','.join(on)}]")
            go(node.left, prefix + "  ", "L:")
            go(node.right, prefix + "  ", "R:")

        go(self, "", "")
        return "\n".join(lines)


def all_shapes(size: int) -> Iterator[Optional[Tree]]:
    """All binary tree shapes with exactly ``size`` nodes (no bits)."""
    if size == 0:
        yield None
        return
    for left_size in range(size):
        right_size = size - 1 - left_size
        for left in all_shapes(left_size):
            for right in all_shapes(right_size):
                yield Tree({}, _clone(left), _clone(right))


def _clone(tree: Optional[Tree]) -> Optional[Tree]:
    if tree is None:
        return None
    return Tree(dict(tree.bits), _clone(tree.left), _clone(tree.right))


def all_trees(max_size: int,
              tracks: Tuple[int, ...]) -> Iterator[Tree]:
    """All trees up to ``max_size`` nodes with all bit labelings of the
    given tracks.  Exponential; for the brute-force oracle only."""
    import itertools
    for size in range(1, max_size + 1):
        for shape in all_shapes(size):
            assert shape is not None
            nodes = shape.nodes()
            for bits in itertools.product(
                    [False, True], repeat=len(nodes) * len(tracks)):
                tree = _clone(shape)
                assert tree is not None
                flat = iter(bits)
                for node in tree.nodes():
                    for track in tracks:
                        node.bits[track] = next(flat)
                yield tree
