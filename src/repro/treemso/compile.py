"""Compilation of tree-logic formulas into tree automata.

The same reduction as :class:`repro.mso.compile.Compiler`, one level
up: atoms map to small hand-written bottom-up automata, connectives to
products, second-order quantifiers to projection + determinisation,
first-order quantifiers to the singleton-restricted projection — with
the eager first-order restriction applied at every atom, which is as
essential here as on strings.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.bdd.mtbdd import Mtbdd
from repro.errors import TranslationError
from repro.mso.ast import Var, VarKind
from repro.mso.compile import CompilationStats
from repro.automata.symbolic import delta_from_function
from repro.obs import trace as obs_trace
from repro.treemso import ast
from repro.treemso.automata import TreeDfa


class TreeCompiler:
    """Compiles tree-logic formulas to minimal tree automata."""

    def __init__(self, mgr: Optional[Mtbdd] = None,
                 minimize_during: bool = True) -> None:
        self.mgr = mgr if mgr is not None else Mtbdd()
        self.minimize_during = minimize_during
        self.stats = CompilationStats()
        self._tracks: Dict[Var, int] = {}
        self._memo: Dict[int, TreeDfa] = {}
        self._memo_keys: Dict[int, ast.TFormula] = {}

    # ------------------------------------------------------------------

    def track(self, var: Var) -> int:
        """The track of ``var``, allocated on first use."""
        found = self._tracks.get(var)
        if found is None:
            found = len(self._tracks)
            self._tracks[var] = found
        return found

    def tracks(self) -> Dict[Var, int]:
        """A copy of the variable-to-track map."""
        return dict(self._tracks)

    def compile(self, formula: ast.TFormula) -> TreeDfa:
        """Compile to a minimal automaton (free first-order variables
        singleton-restricted)."""
        with obs_trace.span("treemso.compile") as sp:
            result = self._compile(formula)
            for var in sorted(formula.free_vars(), key=lambda v: v.name):
                if var.kind is VarKind.FIRST:
                    result = self._intersect(
                        result, self._aut_singleton(self.track(var)))
            result = result.minimize()
            self.stats.capture_manager(self.mgr)
            if sp:
                sp.annotate(states=result.num_states,
                            nodes=result.bdd_node_count(),
                            max_states=self.stats.max_states,
                            max_nodes=self.stats.max_nodes)
            return result

    def is_valid(self, formula: ast.TFormula) -> bool:
        """Validity over all finite binary trees (including the empty
        tree when no free first-order variable needs a node)."""
        return self.compile(ast.TNot(formula)).is_empty()

    # ------------------------------------------------------------------

    def _compile(self, formula: ast.TFormula) -> TreeDfa:
        cached = self._memo.get(id(formula))
        if cached is not None:
            self.stats.formula_memo_hits += 1
            return cached
        result = self._compile_uncached(formula)
        if self.minimize_during:
            self.stats.minimizations += 1
            result = result.minimize()
        else:
            result = result.trim()
        self._record(result)
        self._memo[id(formula)] = result
        self._memo_keys[id(formula)] = formula
        self.stats.compiled_nodes += 1
        return result

    def _compile_uncached(self, formula: ast.TFormula) -> TreeDfa:
        if formula is ast.TTRUE:
            return self._aut_const(True)
        if formula is ast.TFALSE:
            return self._aut_const(False)
        if isinstance(formula, ast.TAtom):
            result = self._compile_atom(formula)
            for var in formula.vars:
                if var.kind is VarKind.FIRST:
                    result = result.product(
                        self._aut_singleton(self.track(var)),
                        lambda a, b: a and b)
            return result
        if isinstance(formula, ast.TNot):
            return self._compile(formula.inner).complement()
        if isinstance(formula, ast.TAnd):
            return self._intersect(self._compile(formula.left),
                                   self._compile(formula.right))
        if isinstance(formula, ast.TOr):
            return self._product(self._compile(formula.left),
                                 self._compile(formula.right),
                                 lambda a, b: a or b)
        if isinstance(formula, ast.TImplies):
            return self._product(self._compile(formula.left),
                                 self._compile(formula.right),
                                 lambda a, b: (not a) or b)
        if isinstance(formula, ast.TEx2):
            return self._project(self._compile(formula.body),
                                 self.track(formula.var))
        if isinstance(formula, ast.TAll2):
            inner = self._compile(formula.body).complement()
            return self._project(inner,
                                 self.track(formula.var)).complement()
        if isinstance(formula, ast.TEx1):
            track = self.track(formula.var)
            inner = self._intersect(self._compile(formula.body),
                                    self._aut_singleton(track))
            return self._project(inner, track)
        if isinstance(formula, ast.TAll1):
            track = self.track(formula.var)
            negated = self._compile(formula.body).complement()
            witness = self._intersect(negated,
                                      self._aut_singleton(track))
            return self._project(witness, track).complement()
        raise TranslationError(f"cannot compile tree formula "
                               f"{formula!r}")

    # ------------------------------------------------------------------
    # Operation wrappers
    # ------------------------------------------------------------------

    def _record(self, dfa: TreeDfa) -> TreeDfa:
        if dfa.num_states > self.stats.max_states:
            self.stats.max_states = dfa.num_states
        nodes = dfa.bdd_node_count()
        if nodes > self.stats.max_nodes:
            self.stats.max_nodes = nodes
        return dfa

    def _product(self, left: TreeDfa, right: TreeDfa,
                 accept: Callable[[bool, bool], bool]) -> TreeDfa:
        self.stats.products += 1
        with obs_trace.span("treemso.product", detail=True) as sp:
            result = self._record(left.product(right, accept))
            if sp:
                sp.annotate(left_states=left.num_states,
                            right_states=right.num_states,
                            states=result.num_states)
            return result

    def _intersect(self, left: TreeDfa, right: TreeDfa) -> TreeDfa:
        return self._product(left, right, lambda a, b: a and b)

    def _project(self, dfa: TreeDfa, track: int) -> TreeDfa:
        self.stats.projections += 1
        with obs_trace.span("treemso.project", detail=True,
                            track=track) as sp:
            result = self._record(dfa.project(track).determinize())
            if sp:
                sp.annotate(states=result.num_states)
            return result

    # ------------------------------------------------------------------
    # Base automata
    # ------------------------------------------------------------------

    def _dta(self, num_states: int, accepting, tracks,
             fn: Callable[[int, int, Dict[int, bool]], int],
             empty: int = 0) -> TreeDfa:
        delta = {}
        for ql in range(num_states):
            for qr in range(num_states):
                delta[(ql, qr)] = delta_from_function(
                    self.mgr, tracks,
                    lambda bits, l=ql, r=qr: fn(l, r, bits))
        return TreeDfa(self.mgr, num_states, empty,
                       frozenset(accepting), delta)

    def _aut_const(self, value: bool) -> TreeDfa:
        return self._dta(1, [0] if value else [], [],
                         lambda l, r, bits: 0)

    def _compile_atom(self, formula: ast.TAtom) -> TreeDfa:
        if isinstance(formula, ast.TMem):
            return self._aut_sub(self.track(formula.pos),
                                 self.track(formula.pset))
        if isinstance(formula, ast.TSub):
            return self._aut_sub(self.track(formula.left),
                                 self.track(formula.right))
        if isinstance(formula, ast.TEqS):
            return self._aut_eqs(self.track(formula.left),
                                 self.track(formula.right))
        if isinstance(formula, ast.TEmptyS):
            return self._aut_empty_set(self.track(formula.pset))
        if isinstance(formula, ast.TSingletonS):
            return self._aut_singleton(self.track(formula.pset))
        if isinstance(formula, ast.EqF):
            return self._aut_eqf(self.track(formula.left),
                                 self.track(formula.right))
        if isinstance(formula, ast.Root):
            return self._aut_root(self.track(formula.pos))
        if isinstance(formula, ast.Child0):
            return self._aut_child(self.track(formula.parent),
                                   self.track(formula.child), left=True)
        if isinstance(formula, ast.Child1):
            return self._aut_child(self.track(formula.parent),
                                   self.track(formula.child), left=False)
        if isinstance(formula, ast.Anc):
            return self._aut_anc(self.track(formula.above),
                                 self.track(formula.below))
        raise TranslationError(f"cannot compile tree atom {formula!r}")

    def _aut_sub(self, t_left: int, t_right: int) -> TreeDfa:
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            if l or r or (bits[t_left] and not bits[t_right]):
                return 1
            return 0
        return self._dta(2, [0], [t_left, t_right], fn)

    def _aut_eqs(self, t_left: int, t_right: int) -> TreeDfa:
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            if l or r or (bits[t_left] != bits[t_right]):
                return 1
            return 0
        return self._dta(2, [0], [t_left, t_right], fn)

    def _aut_empty_set(self, track: int) -> TreeDfa:
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            return 1 if (l or r or bits[track]) else 0
        return self._dta(2, [0], [track], fn)

    def _aut_singleton(self, track: int) -> TreeDfa:
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            return min(2, l + r + (1 if bits[track] else 0))
        return self._dta(3, [1], [track], fn)

    def _aut_eqf(self, t_left: int, t_right: int) -> TreeDfa:
        # 0 none, 1 matched pair seen, 2 sink
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            if l == 2 or r == 2 or (l == 1 and r == 1):
                return 2
            below = max(l, r)
            bx, by = bits[t_left], bits[t_right]
            if bx and by:
                return 1 if below == 0 else 2
            if bx or by:
                return 2
            return below
        return self._dta(3, [1], [t_left, t_right], fn)

    def _aut_root(self, track: int) -> TreeDfa:
        # 0 none, 1 bit at subtree root, 2 bit strictly inside, 3 sink
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            if l == 3 or r == 3:
                return 3
            inside = sum(1 for child in (l, r) if child in (1, 2))
            if bits[track]:
                return 1 if (l == 0 and r == 0) else 3
            if inside == 0:
                return 0
            if inside == 1:
                return 2
            return 3
        return self._dta(4, [1], [track], fn)

    def _aut_child(self, t_parent: int, t_child: int,
                   left: bool) -> TreeDfa:
        # 0 none, 1 child-bit at subtree root, 2 relation done, 3 sink
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            if l == 3 or r == 3:
                return 3
            bp, bc = bits[t_parent], bits[t_child]
            if bp and bc:
                return 3
            if bp:
                good = (l == 1 and r == 0) if left \
                    else (r == 1 and l == 0)
                return 2 if good else 3
            if bc:
                return 1 if (l == 0 and r == 0) else 3
            if l == 0 and r == 0:
                return 0
            if (l, r) in ((2, 0), (0, 2)):
                return 2
            return 3  # a dangling child-bit or two markers
        return self._dta(4, [2], [t_parent, t_child], fn)

    def _aut_anc(self, t_above: int, t_below: int) -> TreeDfa:
        # 0 none, 1 above-bit inside, 2 below-bit inside, 3 done, 4 sink
        def fn(l: int, r: int, bits: Dict[int, bool]) -> int:
            if l == 4 or r == 4:
                return 4
            ba, bb = bits[t_above], bits[t_below]
            if ba and bb:
                return 4
            if ba:
                if (l, r) in ((2, 0), (0, 2)):
                    return 3
                if l == 0 and r == 0:
                    return 1
                return 4
            if bb:
                return 2 if (l == 0 and r == 0) else 4
            if l == 0 and r == 0:
                return 0
            if (l, r) in ((1, 0), (0, 1)):
                return 1
            if (l, r) in ((2, 0), (0, 2)):
                return 2
            if (l, r) in ((3, 0), (0, 3)):
                return 3
            return 4
        return self._dta(5, [3], [t_above, t_below], fn)
