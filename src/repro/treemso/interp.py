"""Brute-force evaluation of tree-logic formulas (the test oracle).

Implements the semantics by definition over a concrete
:class:`Tree`: first-order variables take node objects, second-order
variables frozensets of nodes, quantifiers enumerate nodes and the
``2^n`` node subsets.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Optional, Union

from repro.errors import TranslationError
from repro.mso.ast import Var
from repro.treemso import ast
from repro.treemso.trees import Tree

Value = Union[Tree, FrozenSet[Tree]]


def tree_evaluate(formula: ast.TFormula, tree: Optional[Tree],
                  env: Dict[Var, Value]) -> bool:
    """Satisfaction of ``formula`` on ``tree`` (None = empty tree)."""
    nodes = tree.nodes() if tree is not None else []
    return _eval(formula, tree, nodes, env)


def _eval(formula, tree, nodes, env) -> bool:
    if formula is ast.TTRUE:
        return True
    if formula is ast.TFALSE:
        return False
    if isinstance(formula, ast.TMem):
        return env[formula.pos] in env[formula.pset]
    if isinstance(formula, ast.TSub):
        return env[formula.left] <= env[formula.right]
    if isinstance(formula, ast.TEqS):
        return env[formula.left] == env[formula.right]
    if isinstance(formula, ast.TEmptyS):
        return not env[formula.pset]
    if isinstance(formula, ast.TSingletonS):
        return len(env[formula.pset]) == 1
    if isinstance(formula, ast.EqF):
        return env[formula.left] is env[formula.right]
    if isinstance(formula, ast.Root):
        return env[formula.pos] is tree
    if isinstance(formula, ast.Child0):
        return env[formula.parent].left is env[formula.child]
    if isinstance(formula, ast.Child1):
        return env[formula.parent].right is env[formula.child]
    if isinstance(formula, ast.Anc):
        return _is_ancestor(env[formula.above], env[formula.below])
    if isinstance(formula, ast.TNot):
        return not _eval(formula.inner, tree, nodes, env)
    if isinstance(formula, ast.TAnd):
        return _eval(formula.left, tree, nodes, env) and \
            _eval(formula.right, tree, nodes, env)
    if isinstance(formula, ast.TOr):
        return _eval(formula.left, tree, nodes, env) or \
            _eval(formula.right, tree, nodes, env)
    if isinstance(formula, ast.TImplies):
        return (not _eval(formula.left, tree, nodes, env)) or \
            _eval(formula.right, tree, nodes, env)
    if isinstance(formula, ast.TEx1):
        return any(_eval(formula.body, tree, nodes,
                         {**env, formula.var: node})
                   for node in nodes)
    if isinstance(formula, ast.TAll1):
        return all(_eval(formula.body, tree, nodes,
                         {**env, formula.var: node})
                   for node in nodes)
    if isinstance(formula, (ast.TEx2, ast.TAll2)):
        universal = isinstance(formula, ast.TAll2)
        subsets = _subsets(nodes)
        results = (_eval(formula.body, tree, nodes,
                         {**env, formula.var: subset})
                   for subset in subsets)
        return all(results) if universal else any(results)
    raise TranslationError(f"unknown tree formula {formula!r}")


def _is_ancestor(above: Tree, below: Tree) -> bool:
    return above is not below and _in_subtree(above, below)


def _in_subtree(root: Tree, target: Tree) -> bool:
    for child in (root.left, root.right):
        if child is None:
            continue
        if child is target or _in_subtree(child, target):
            return True
    return False


def tree_with_assignment(tree: Optional[Tree],
                         env: Dict[Var, Value],
                         tracks: Dict[Var, int]) -> Optional[Tree]:
    """Bake an assignment into track bits for automaton runs."""
    if tree is None:
        return None
    extra: Dict[Tree, Dict[int, bool]] = {}
    for node in tree.nodes():
        bits: Dict[int, bool] = {}
        for var, track in tracks.items():
            value = env.get(var)
            if value is None:
                bits[track] = False
            elif var.kind.value == "first":
                bits[track] = value is node
            else:
                bits[track] = node in value  # type: ignore[operator]
        extra[node] = bits
    return tree.with_bits(extra)


def _subsets(nodes):
    for size in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, size):
            yield frozenset(combo)
