"""Pretty-printing of tree-logic formulas."""

from __future__ import annotations

from repro.errors import TranslationError
from repro.treemso import ast

_PREC_IMPLIES = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_UNARY = 4


def pretty_tree_formula(formula: ast.TFormula) -> str:
    """Render a tree-logic formula."""
    return _render(formula, 0)


def _parens(text: str, prec: int, context: int) -> str:
    return f"({text})" if prec < context else text


def _render(node: ast.TFormula, context: int) -> str:
    if node is ast.TTRUE:
        return "true"
    if node is ast.TFALSE:
        return "false"
    if isinstance(node, ast.TMem):
        return f"{node.pos!r} in {node.pset!r}"
    if isinstance(node, ast.TSub):
        return f"{node.left!r} sub {node.right!r}"
    if isinstance(node, (ast.TEqS, ast.EqF)):
        return f"{node.left!r} = {node.right!r}"
    if isinstance(node, ast.TEmptyS):
        return f"empty({node.pset!r})"
    if isinstance(node, ast.TSingletonS):
        return f"singleton({node.pset!r})"
    if isinstance(node, ast.Root):
        return f"root({node.pos!r})"
    if isinstance(node, ast.Child0):
        return f"{node.child!r} = left({node.parent!r})"
    if isinstance(node, ast.Child1):
        return f"{node.child!r} = right({node.parent!r})"
    if isinstance(node, ast.Anc):
        return f"{node.above!r} < {node.below!r}"
    if isinstance(node, ast.TNot):
        return _parens(f"~{_render(node.inner, _PREC_UNARY)}",
                       _PREC_UNARY, context)
    if isinstance(node, ast.TAnd):
        text = (f"{_render(node.left, _PREC_AND)} & "
                f"{_render(node.right, _PREC_AND)}")
        return _parens(text, _PREC_AND, context + 1)
    if isinstance(node, ast.TOr):
        text = (f"{_render(node.left, _PREC_OR)} | "
                f"{_render(node.right, _PREC_OR)}")
        return _parens(text, _PREC_OR, context + 1)
    if isinstance(node, ast.TImplies):
        text = (f"{_render(node.left, _PREC_IMPLIES + 1)} => "
                f"{_render(node.right, _PREC_IMPLIES)}")
        return _parens(text, _PREC_IMPLIES, context + 1)
    if isinstance(node, (ast.TEx1, ast.TEx2, ast.TAll1, ast.TAll2)):
        word = {ast.TEx1: "ex1", ast.TEx2: "ex2",
                ast.TAll1: "all1", ast.TAll2: "all2"}[type(node)]
        text = f"{word} {node.var!r}: {_render(node.body, 0)}"
        return _parens(text, 0, context)
    raise TranslationError(f"unknown tree formula {node!r}")
