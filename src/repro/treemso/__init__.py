"""Monadic second-order logic on finite binary trees (paper §7).

The paper's implementation handles lists because M2L on *strings* is
the decidable backbone; §7 answers "Can we include trees?" with: the
monadic second-order logic of trees is also decidable, the authors ran
"preliminary experiments with a decision procedure for monadic
second-order [logic] on trees", and found it "much more
computationally intensive than the string version".

This package is that preliminary experiment, reproduced: a decision
procedure for M2L over finite binary trees, built from bottom-up tree
automata whose transition functions are MTBDDs over variable tracks —
the exact analogue of the string engine in :mod:`repro.mso` /
:mod:`repro.automata.symbolic`.  The benchmark
``benchmarks/test_fig_trees.py`` compares the two engines on analogous
formulas and confirms the paper's assessment.

* :mod:`repro.treemso.trees` — finite binary trees with per-node track
  assignments, plus enumeration helpers for the test oracle;
* :mod:`repro.treemso.ast` — tree-logic formulas: membership and set
  atoms as on strings, with the positional atoms replaced by
  ``root``, left/right child, and ancestor;
* :mod:`repro.treemso.automata` — deterministic bottom-up tree
  automata with MTBDD transitions: product, complement, projection,
  determinisation, minimisation, emptiness and smallest-witness;
* :mod:`repro.treemso.compile` — formula -> minimal tree automaton,
  with the same eager first-order restriction as the string compiler;
* :mod:`repro.treemso.interp` — brute-force evaluation (test oracle).
"""

from repro.treemso.ast import (Anc, Child0, Child1, EqF, Root, TAll1,
                               TAll2, TEx1, TEx2, TFALSE, TTRUE)
from repro.treemso.compile import TreeCompiler
from repro.treemso.trees import Tree, all_trees
from repro.treemso.interp import tree_evaluate

__all__ = ["Anc", "Child0", "Child1", "EqF", "Root", "TAll1", "TAll2",
           "TEx1", "TEx2", "TFALSE", "TTRUE", "Tree", "TreeCompiler",
           "all_trees", "tree_evaluate"]
