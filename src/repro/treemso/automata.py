"""Bottom-up tree automata with MTBDD-encoded transitions.

The tree analogue of :mod:`repro.automata.symbolic`: a deterministic
bottom-up automaton assigns a state to every subtree — ``empty`` for
the absent subtree — via ``delta[(left_state, right_state)]``, an
MTBDD over the node's track bits whose leaves are target states; the
tree is accepted when the root's state is accepting.

Operations mirror the string engine: pairwise products, complement
(automata are complete), track projection to a nondeterministic
automaton, subset-construction determinisation, Moore minimisation
with hash-consed signatures, emptiness, and smallest accepted tree.
As the paper observed in its §7 experiments, everything is one
quadratic factor heavier than on strings — transitions take *two*
predecessor states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Hashable, List, Optional,
                    Set, Tuple)

from repro.bdd.mtbdd import Mtbdd
from repro.automata.symbolic import _fresh_key
from repro.treemso.trees import Tree


@dataclass
class TreeDfa:
    """A complete deterministic bottom-up tree automaton."""

    mgr: Mtbdd
    num_states: int
    #: the state of the absent subtree
    empty: int
    accepting: FrozenSet[int]
    #: ``delta[(ql, qr)]`` — MTBDD with integer state leaves
    delta: Dict[Tuple[int, int], int]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def value(self, tree: Optional[Tree]) -> int:
        """The state reached at (the root of) a subtree."""
        if tree is None:
            return self.empty
        left = self.value(tree.left)
        right = self.value(tree.right)
        result = self.mgr.evaluate(self.delta[(left, right)],
                                   tree.bits)
        return result  # type: ignore[return-value]

    def accepts(self, tree: Optional[Tree]) -> bool:
        """Membership (None is the empty tree)."""
        return self.value(tree) in self.accepting

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def complement(self) -> "TreeDfa":
        """Language complement."""
        return TreeDfa(self.mgr, self.num_states, self.empty,
                       frozenset(range(self.num_states)) - self.accepting,
                       self.delta)

    def product(self, other: "TreeDfa",
                accept: Callable[[bool, bool], bool]) -> "TreeDfa":
        """Reachable synchronous product."""
        if other.mgr is not self.mgr:
            raise ValueError("product requires a shared MTBDD manager")
        mgr = self.mgr
        pair_key = _fresh_key("tpair")
        rename_key = _fresh_key("tpair-rename")
        index: Dict[Tuple[int, int], int] = {}
        order: List[Tuple[int, int]] = []

        def state_of(pair: Hashable) -> int:
            found = index.get(pair)  # type: ignore[arg-type]
            if found is None:
                found = len(index)
                index[pair] = found  # type: ignore[index]
                order.append(pair)  # type: ignore[arg-type]
            return found

        state_of((self.empty, other.empty))
        delta: Dict[Tuple[int, int], int] = {}
        done = 0
        while done < len(order):
            done = len(order)
            snapshot = list(order)
            for li, (l1, l2) in enumerate(snapshot):
                for ri, (r1, r2) in enumerate(snapshot):
                    if (li, ri) in delta:
                        continue
                    combined = mgr.apply2(pair_key, lambda a, b: (a, b),
                                          self.delta[(l1, r1)],
                                          other.delta[(l2, r2)])
                    delta[(li, ri)] = mgr.map_leaves(rename_key,
                                                     state_of, combined)
        accepting = frozenset(
            i for i, (q1, q2) in enumerate(order)
            if accept(q1 in self.accepting, q2 in other.accepting))
        return TreeDfa(mgr, len(order), 0, accepting, delta)

    def intersect(self, other: "TreeDfa") -> "TreeDfa":
        """Language intersection."""
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "TreeDfa") -> "TreeDfa":
        """Language union."""
        return self.product(other, lambda a, b: a or b)

    # ------------------------------------------------------------------
    # Projection and determinisation
    # ------------------------------------------------------------------

    def project(self, track: int) -> "TreeNfa":
        """Erase a track (existential quantification)."""
        mgr = self.mgr
        lift = _fresh_key("tlift")
        union = _fresh_key("tunion")
        delta = {}
        for key, root in self.delta.items():
            lo = mgr.map_leaves(lift, lambda s: frozenset([s]),
                                mgr.restrict(root, {track: False}))
            hi = mgr.map_leaves(lift, lambda s: frozenset([s]),
                                mgr.restrict(root, {track: True}))
            delta[key] = mgr.apply2(union, lambda a, b: a | b, lo, hi)
        return TreeNfa(mgr, self.num_states, self.empty,
                       self.accepting, delta)

    # ------------------------------------------------------------------
    # Minimisation
    # ------------------------------------------------------------------

    def trim(self) -> "TreeDfa":
        """Restrict to states reachable from below."""
        reachable: Set[int] = {self.empty}
        changed = True
        while changed:
            changed = False
            for (ql, qr), root in self.delta.items():
                if ql in reachable and qr in reachable:
                    for target in self.mgr.leaves(root):
                        if target not in reachable:
                            reachable.add(target)  # type: ignore[arg-type]
                            changed = True
        if len(reachable) == self.num_states:
            return self
        remap = {old: new for new, old in enumerate(sorted(reachable))}
        rename = _fresh_key("ttrim")
        delta = {
            (remap[ql], remap[qr]): self.mgr.map_leaves(
                rename, lambda s: remap[s], root)
            for (ql, qr), root in self.delta.items()
            if ql in reachable and qr in reachable}
        return TreeDfa(self.mgr, len(reachable), remap[self.empty],
                       frozenset(remap[q] for q in self.accepting
                                 if q in reachable), delta)

    def minimize(self) -> "TreeDfa":
        """Moore refinement; contexts are (sibling state, side)."""
        dfa = self.trim()
        mgr = dfa.mgr
        block = [1 if q in dfa.accepting else 0
                 for q in range(dfa.num_states)]
        num_blocks = len(set(block))
        while True:
            sig_key = _fresh_key("tmoore")
            images = {
                key: mgr.map_leaves(sig_key, lambda s: block[s], root)
                for key, root in dfa.delta.items()}
            signatures = []
            for q in range(dfa.num_states):
                context = tuple(
                    (images[(q, p)], images[(p, q)])
                    for p in range(dfa.num_states))
                signatures.append((block[q], context))
            renumber: Dict[object, int] = {}
            new_block = []
            for signature in signatures:
                if signature not in renumber:
                    renumber[signature] = len(renumber)
                new_block.append(renumber[signature])
            stable = len(renumber) == num_blocks
            block = new_block
            num_blocks = len(renumber)
            if stable:
                break
        representative: Dict[int, int] = {}
        for q in range(dfa.num_states):
            representative.setdefault(block[q], q)
        rename = _fresh_key("tmoore-rename")
        delta = {}
        for bl in range(num_blocks):
            for br in range(num_blocks):
                root = dfa.delta[(representative[bl], representative[br])]
                delta[(bl, br)] = mgr.map_leaves(
                    rename, lambda s: block[s], root)
        return TreeDfa(mgr, num_blocks, block[dfa.empty],
                       frozenset(block[q] for q in dfa.accepting), delta)

    # ------------------------------------------------------------------
    # Decision queries
    # ------------------------------------------------------------------

    def smallest_accepted(self) -> Optional[Tuple[Optional[Tree]]]:
        """A smallest accepted tree, or None when the language is empty.

        The witness is wrapped in a 1-tuple because the empty tree
        (``None``) is itself a possible witness: ``None`` means "no
        tree accepted", ``(None,)`` means "the empty tree is
        accepted", ``(tree,)`` a non-empty witness.
        """
        infinite = 1 << 60
        cost: List[int] = [infinite] * self.num_states
        parent: List[Optional[Tuple[int, int, Dict[int, bool]]]] = \
            [None] * self.num_states
        cost[self.empty] = 0
        changed = True
        while changed:
            changed = False
            for (ql, qr), root in self.delta.items():
                if cost[ql] >= infinite or cost[qr] >= infinite:
                    continue
                for assignment, target in self.mgr.paths(root):
                    candidate = cost[ql] + cost[qr] + 1
                    if candidate < cost[target]:  # type: ignore[index]
                        cost[target] = candidate  # type: ignore[index]
                        parent[target] = \
                            (ql, qr, dict(assignment))  # type: ignore[index]
                        changed = True
        best = None
        for q in self.accepting:
            if cost[q] < infinite and (best is None
                                       or cost[q] < cost[best]):
                best = q
        if best is None:
            return None

        def build(state: int) -> Optional[Tree]:
            if state == self.empty and parent[state] is None:
                return None
            info = parent[state]
            assert info is not None
            ql, qr, bits = info
            return Tree(bits, build(ql), build(qr))

        return (build(best),)

    def is_empty(self) -> bool:
        """No tree (including the empty one) is accepted."""
        return self.smallest_accepted() is None

    def is_universal(self) -> bool:
        """Every tree is accepted."""
        return self.complement().is_empty()

    def bdd_node_count(self) -> int:
        """Distinct shared decision nodes across all transitions."""
        seen: Set[int] = set()
        count = 0
        stack = list(self.delta.values())
        while stack:
            f = stack.pop()
            if f in seen:
                continue
            seen.add(f)
            if not self.mgr.is_leaf(f):
                count += 1
                stack.append(self.mgr.low(f))
                stack.append(self.mgr.high(f))
        return count


@dataclass
class TreeNfa:
    """A nondeterministic bottom-up automaton (frozenset leaves)."""

    mgr: Mtbdd
    num_states: int
    empty: int
    accepting: FrozenSet[int]
    delta: Dict[Tuple[int, int], int]

    def determinize(self) -> TreeDfa:
        """Subset construction on the shared diagrams."""
        mgr = self.mgr
        union = _fresh_key("tdet-union")
        rename = _fresh_key("tdet-rename")
        bottom = mgr.leaf(frozenset())
        index: Dict[FrozenSet[int], int] = {}
        order: List[FrozenSet[int]] = []

        def state_of(subset: Hashable) -> int:
            found = index.get(subset)  # type: ignore[arg-type]
            if found is None:
                found = len(index)
                index[subset] = found  # type: ignore[index]
                order.append(subset)  # type: ignore[arg-type]
            return found

        state_of(frozenset([self.empty]))
        delta: Dict[Tuple[int, int], int] = {}
        done = 0
        while done < len(order):
            done = len(order)
            snapshot = list(order)
            for li, left in enumerate(snapshot):
                for ri, right in enumerate(snapshot):
                    if (li, ri) in delta:
                        continue
                    combined = bottom
                    for ql in left:
                        for qr in right:
                            combined = mgr.apply2(
                                union, lambda a, b: a | b,
                                combined, self.delta[(ql, qr)])
                    delta[(li, ri)] = mgr.map_leaves(rename, state_of,
                                                     combined)
        accepting = frozenset(i for i, subset in enumerate(order)
                              if subset & self.accepting)
        return TreeDfa(mgr, len(order), 0, accepting, delta)


def tree_delta_from_function(mgr: Mtbdd, tracks,
                             fn: Callable[[Dict[int, bool]], int]) -> int:
    """Build one transition MTBDD from an explicit bit function."""
    from repro.automata.symbolic import delta_from_function
    return delta_from_function(mgr, tracks, fn)
