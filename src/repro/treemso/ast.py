"""Abstract syntax of M2L on finite binary trees.

First-order variables denote tree nodes, second-order variables node
sets (both reuse :class:`repro.mso.ast.Var`).  The set atoms are the
same as on strings; the positional atoms are adapted to trees:

* ``Root(x)`` — x is the root;
* ``Child0(x, y)`` / ``Child1(x, y)`` — y is x's left / right child;
* ``Anc(x, y)`` — x is a proper ancestor of y;
* ``EqF(x, y)`` — node equality.

The string logic's ``Less`` (linear order) has no tree counterpart;
``Anc`` is the partial order that replaces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.mso.ast import Var, VarKind


@dataclass(frozen=True, eq=False)
class TFormula:
    """Base class of tree-logic formulas."""

    def children(self) -> Tuple["TFormula", ...]:
        return ()

    def size(self) -> int:
        """Number of distinct nodes (DAG-aware)."""
        count = 0
        for _ in self.iter_nodes():
            count += 1
        return count

    def iter_nodes(self):
        seen: set = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.children())

    def free_vars(self) -> frozenset:
        """Free variables (fresh-binder discipline, as on strings)."""
        used: set = set()
        bound: set = set()
        for node in self.iter_nodes():
            if isinstance(node, TAtom):
                used.update(node.vars)
            elif isinstance(node, _TQuant):
                bound.add(node.var)
        return frozenset(used - bound)


@dataclass(frozen=True, eq=False)
class _TConst(TFormula):
    value: bool


TTRUE = _TConst(True)
TFALSE = _TConst(False)


@dataclass(frozen=True, eq=False)
class TAtom(TFormula):
    """Base class of atoms."""

    @property
    def vars(self) -> Tuple[Var, ...]:
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class TMem(TAtom):
    """``pos ∈ pset``."""

    pos: Var
    pset: Var

    @property
    def vars(self):
        return (self.pos, self.pset)


@dataclass(frozen=True, eq=False)
class TSub(TAtom):
    """``left ⊆ right``."""

    left: Var
    right: Var

    @property
    def vars(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class TEqS(TAtom):
    """Set equality."""

    left: Var
    right: Var

    @property
    def vars(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class TEmptyS(TAtom):
    """``pset = ∅``."""

    pset: Var

    @property
    def vars(self):
        return (self.pset,)


@dataclass(frozen=True, eq=False)
class TSingletonS(TAtom):
    """``|pset| = 1`` — the first-order encoding constraint."""

    pset: Var

    @property
    def vars(self):
        return (self.pset,)


@dataclass(frozen=True, eq=False)
class EqF(TAtom):
    """Node equality."""

    left: Var
    right: Var

    @property
    def vars(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class Root(TAtom):
    """``pos`` is the root node."""

    pos: Var

    @property
    def vars(self):
        return (self.pos,)


@dataclass(frozen=True, eq=False)
class Child0(TAtom):
    """``child`` is the left child of ``parent``."""

    parent: Var
    child: Var

    @property
    def vars(self):
        return (self.parent, self.child)


@dataclass(frozen=True, eq=False)
class Child1(TAtom):
    """``child`` is the right child of ``parent``."""

    parent: Var
    child: Var

    @property
    def vars(self):
        return (self.parent, self.child)


@dataclass(frozen=True, eq=False)
class Anc(TAtom):
    """``above`` is a proper ancestor of ``below``."""

    above: Var
    below: Var

    @property
    def vars(self):
        return (self.above, self.below)


@dataclass(frozen=True, eq=False)
class TNot(TFormula):
    inner: TFormula

    def children(self):
        return (self.inner,)


@dataclass(frozen=True, eq=False)
class TAnd(TFormula):
    left: TFormula
    right: TFormula

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class TOr(TFormula):
    left: TFormula
    right: TFormula

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class TImplies(TFormula):
    left: TFormula
    right: TFormula

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True, eq=False)
class _TQuant(TFormula):
    var: Var
    body: TFormula

    def children(self):
        return (self.body,)


@dataclass(frozen=True, eq=False)
class TEx1(_TQuant):
    """Some node satisfies the body."""

    def __post_init__(self):
        if self.var.kind is not VarKind.FIRST:
            raise ValueError("TEx1 needs a first-order variable")


@dataclass(frozen=True, eq=False)
class TAll1(_TQuant):
    """All nodes satisfy the body."""

    def __post_init__(self):
        if self.var.kind is not VarKind.FIRST:
            raise ValueError("TAll1 needs a first-order variable")


@dataclass(frozen=True, eq=False)
class TEx2(_TQuant):
    """Some node set satisfies the body."""

    def __post_init__(self):
        if self.var.kind is not VarKind.SECOND:
            raise ValueError("TEx2 needs a second-order variable")


@dataclass(frozen=True, eq=False)
class TAll2(_TQuant):
    """All node sets satisfy the body."""

    def __post_init__(self):
        if self.var.kind is not VarKind.SECOND:
            raise ValueError("TAll2 needs a second-order variable")
